//! Atomic service counters and a fixed-bucket latency histogram, rendered
//! as a Prometheus-style `text/plain` exposition on `GET /metrics`.
//!
//! Everything is lock-free (`AtomicU64` with relaxed ordering — the counters
//! are statistics, not synchronization), so recording adds nanoseconds to
//! the request path. Quantiles are derived from the histogram's cumulative
//! counts: the reported value is the upper bound of the bucket containing
//! the target rank, i.e. an over-estimate by at most one bucket width.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::cache::CacheStats;

/// Upper bounds (µs) of the latency histogram buckets; a final overflow
/// bucket catches everything slower than the last bound.
pub const LATENCY_BOUNDS_MICROS: [u64; 14] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000,
];

/// The endpoints the service distinguishes in its counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /search`
    Search,
    /// `GET /suggest`
    Suggest,
    /// `GET /doctor`
    Doctor,
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// Anything else (404s, bad paths).
    Other,
}

impl Endpoint {
    /// Classifies a request path.
    pub fn of_path(path: &str) -> Endpoint {
        match path {
            "/search" => Endpoint::Search,
            "/suggest" => Endpoint::Suggest,
            "/doctor" => Endpoint::Doctor,
            "/healthz" => Endpoint::Healthz,
            "/metrics" => Endpoint::Metrics,
            _ => Endpoint::Other,
        }
    }

    const ALL: [Endpoint; 6] = [
        Endpoint::Search,
        Endpoint::Suggest,
        Endpoint::Doctor,
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Other,
    ];

    fn label(self) -> &'static str {
        match self {
            Endpoint::Search => "search",
            Endpoint::Suggest => "suggest",
            Endpoint::Doctor => "doctor",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            Endpoint::Search => 0,
            Endpoint::Suggest => 1,
            Endpoint::Doctor => 2,
            Endpoint::Healthz => 3,
            Endpoint::Metrics => 4,
            Endpoint::Other => 5,
        }
    }
}

/// Fixed-bucket latency histogram over microseconds.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BOUNDS_MICROS.len() + 1],
    sum: AtomicU64,
    count: AtomicU64,
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&self, micros: u64) {
        let idx = LATENCY_BOUNDS_MICROS
            .iter()
            .position(|&bound| micros <= bound)
            .unwrap_or(LATENCY_BOUNDS_MICROS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(micros, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (µs).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (0 < q ≤ 1) as the upper bound of the bucket holding
    /// the target rank. Observations past the last bound report that bound
    /// (the histogram cannot resolve further). Returns 0 with no data.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= target {
                return LATENCY_BOUNDS_MICROS
                    .get(i)
                    .copied()
                    .unwrap_or(LATENCY_BOUNDS_MICROS[LATENCY_BOUNDS_MICROS.len() - 1]);
            }
        }
        LATENCY_BOUNDS_MICROS[LATENCY_BOUNDS_MICROS.len() - 1]
    }
}

/// All service counters. Every field is monotonically non-decreasing except
/// `in_flight` (a gauge).
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests fully parsed and routed (rejected connections excluded).
    pub requests_total: AtomicU64,
    /// Per-endpoint request counts.
    pub by_endpoint: [AtomicU64; 6],
    /// Responses by status class.
    pub responses_2xx: AtomicU64,
    /// 4xx responses (bad query, unknown path).
    pub responses_4xx: AtomicU64,
    /// 5xx responses (overload inside a worker, deadline aborts).
    pub responses_5xx: AtomicU64,
    /// Connections rejected at admission (queue full) with 503.
    pub rejected_total: AtomicU64,
    /// Requests aborted because the per-request deadline expired.
    pub deadline_aborts_total: AtomicU64,
    /// Result-cache hits.
    pub cache_hits_total: AtomicU64,
    /// Result-cache misses.
    pub cache_misses_total: AtomicU64,
    /// Requests currently being processed by workers (gauge).
    pub in_flight: AtomicU64,
    /// End-to-end request latency (accept → response written), µs.
    pub latency: LatencyHistogram,
}

impl Metrics {
    /// Bumps the counter for one routed request on `endpoint`.
    pub fn record_request(&self, endpoint: Endpoint) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        self.by_endpoint[endpoint.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Classifies a response status into its class counter.
    pub fn record_status(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the Prometheus-style exposition, folding in cache occupancy
    /// and the index identity the service is bound to.
    pub fn render(&self, cache: CacheStats, index_identity: u64) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(1024);
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let _ = writeln!(out, "gks_requests_total {}", load(&self.requests_total));
        for endpoint in Endpoint::ALL {
            let _ = writeln!(
                out,
                "gks_requests{{endpoint=\"{}\"}} {}",
                endpoint.label(),
                load(&self.by_endpoint[endpoint.index()])
            );
        }
        let _ = writeln!(out, "gks_responses{{class=\"2xx\"}} {}", load(&self.responses_2xx));
        let _ = writeln!(out, "gks_responses{{class=\"4xx\"}} {}", load(&self.responses_4xx));
        let _ = writeln!(out, "gks_responses{{class=\"5xx\"}} {}", load(&self.responses_5xx));
        let _ = writeln!(out, "gks_rejected_total {}", load(&self.rejected_total));
        let _ = writeln!(out, "gks_deadline_aborts_total {}", load(&self.deadline_aborts_total));
        let _ = writeln!(out, "gks_cache_hits_total {}", load(&self.cache_hits_total));
        let _ = writeln!(out, "gks_cache_misses_total {}", load(&self.cache_misses_total));
        let _ = writeln!(out, "gks_cache_entries {}", cache.entries);
        let _ = writeln!(out, "gks_cache_bytes {}", cache.bytes);
        let _ = writeln!(out, "gks_cache_capacity_bytes {}", cache.capacity);
        let _ = writeln!(out, "gks_in_flight {}", load(&self.in_flight));
        for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
            let _ = writeln!(
                out,
                "gks_latency_micros{{quantile=\"{label}\"}} {}",
                self.latency.quantile(q)
            );
        }
        let _ = writeln!(out, "gks_latency_micros_sum {}", self.latency.sum());
        let _ = writeln!(out, "gks_latency_micros_count {}", self.latency.count());
        let _ = writeln!(out, "gks_index_identity {index_identity}");
        out
    }
}

/// Extracts the value of a metric line (`name value` or `name{…} value`)
/// from a rendered exposition. Used by the load generator and tests to read
/// hit rates back without a metrics client.
pub fn metric_value(exposition: &str, name: &str) -> Option<u64> {
    for line in exposition.lines() {
        let Some(rest) = line.strip_prefix(name) else {
            continue;
        };
        // Exact name match: next char must be a space (plain counter) only —
        // `gks_requests` must not match `gks_requests_total` or a labeled
        // variant unless the caller included the label block in `name`.
        if let Some(value) = rest.strip_prefix(' ') {
            return value.trim().parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = LatencyHistogram::default();
        for micros in [10, 20, 30, 40, 60, 80, 120, 300, 700, 1500] {
            h.record(micros);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 2860);
        // p50 → 5th observation (60µs) lands in the ≤100 bucket.
        assert_eq!(h.quantile(0.5), 100);
        // p99 → 10th observation (1500µs) lands in the ≤2500 bucket.
        assert_eq!(h.quantile(0.99), 2_500);
        assert_eq!(h.quantile(0.1), 50);
    }

    #[test]
    fn histogram_overflow_reports_last_bound() {
        let h = LatencyHistogram::default();
        h.record(10_000_000);
        assert_eq!(h.quantile(0.5), 1_000_000);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn render_and_parse_round_trip() {
        let m = Metrics::default();
        m.record_request(Endpoint::Search);
        m.record_request(Endpoint::Search);
        m.record_request(Endpoint::Healthz);
        m.record_status(200);
        m.record_status(400);
        m.cache_hits_total.fetch_add(3, Ordering::Relaxed);
        m.latency.record(120);
        let cache = CacheStats { entries: 2, bytes: 400, capacity: 1000 };
        let text = m.render(cache, 42);
        assert_eq!(metric_value(&text, "gks_requests_total"), Some(3));
        assert_eq!(metric_value(&text, "gks_requests{endpoint=\"search\"}"), Some(2));
        assert_eq!(metric_value(&text, "gks_responses{class=\"2xx\"}"), Some(1));
        assert_eq!(metric_value(&text, "gks_cache_hits_total"), Some(3));
        assert_eq!(metric_value(&text, "gks_cache_entries"), Some(2));
        assert_eq!(metric_value(&text, "gks_latency_micros_count"), Some(1));
        assert_eq!(metric_value(&text, "gks_index_identity"), Some(42));
        assert_eq!(metric_value(&text, "gks_nope"), None);
    }
}
