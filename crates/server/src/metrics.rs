//! Atomic service counters rendered as a Prometheus-style `text/plain`
//! exposition on `GET /metrics`.
//!
//! The latency histogram lives in `gks-trace` ([`Histogram`]) so the
//! end-to-end request histogram and the per-phase engine aggregates share
//! bucket semantics; this module re-exports the bucket bounds for backward
//! compatibility. Everything is lock-free (`AtomicU64` with relaxed ordering
//! — the counters are statistics, not synchronization), so recording adds
//! nanoseconds to the request path. Quantiles are derived from cumulative
//! bucket counts: the reported value is the upper bound of the bucket
//! containing the target rank, i.e. an over-estimate by at most one bucket
//! width. A histogram with **zero samples** never renders a bucket bound or
//! `NaN`: the legacy request-scale families (`gks_latency_micros`,
//! `gks_shard_fanout`, `gks_shard_straggler_micros`, the maintenance
//! histograms) keep their historical `-1` sentinel, while the per-phase and
//! cost families **omit** their quantile lines entirely and rely on the
//! always-present `_count` (plus `gks_phase_samples_total`) to distinguish
//! "no traffic" from "sub-50µs traffic" — see the wire-format note in
//! DESIGN.md.

use std::sync::atomic::{AtomicU64, Ordering};

use gks_core::CostLedger;
use gks_trace::SpanKind;
pub use gks_trace::{Histogram, LATENCY_BOUNDS_MICROS};

use crate::cache::CacheStats;
use crate::catalog::PHASE_COUNT;
use crate::topk::TopQueries;

/// The endpoints the service distinguishes in its counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /search`
    Search,
    /// `GET /suggest`
    Suggest,
    /// `GET /doctor`
    Doctor,
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// `GET /debug/traces`
    DebugTraces,
    /// `GET /debug/top`
    DebugTop,
    /// `POST /admin/reload`
    AdminReload,
    /// `POST /admin/compact`
    AdminCompact,
    /// Anything else (404s, bad paths).
    Other,
}

/// Number of distinct [`Endpoint`] variants.
const ENDPOINT_COUNT: usize = 10;

impl Endpoint {
    /// Classifies a request path.
    pub fn of_path(path: &str) -> Endpoint {
        match path {
            "/search" => Endpoint::Search,
            "/suggest" => Endpoint::Suggest,
            "/doctor" => Endpoint::Doctor,
            "/healthz" => Endpoint::Healthz,
            "/metrics" => Endpoint::Metrics,
            "/debug/traces" => Endpoint::DebugTraces,
            "/debug/top" => Endpoint::DebugTop,
            "/admin/reload" => Endpoint::AdminReload,
            "/admin/compact" => Endpoint::AdminCompact,
            _ => Endpoint::Other,
        }
    }

    const ALL: [Endpoint; ENDPOINT_COUNT] = [
        Endpoint::Search,
        Endpoint::Suggest,
        Endpoint::Doctor,
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::DebugTraces,
        Endpoint::DebugTop,
        Endpoint::AdminReload,
        Endpoint::AdminCompact,
        Endpoint::Other,
    ];

    fn label(self) -> &'static str {
        match self {
            Endpoint::Search => "search",
            Endpoint::Suggest => "suggest",
            Endpoint::Doctor => "doctor",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::DebugTraces => "debug_traces",
            Endpoint::DebugTop => "debug_top",
            Endpoint::AdminReload => "admin_reload",
            Endpoint::AdminCompact => "admin_compact",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            Endpoint::Search => 0,
            Endpoint::Suggest => 1,
            Endpoint::Doctor => 2,
            Endpoint::Healthz => 3,
            Endpoint::Metrics => 4,
            Endpoint::DebugTraces => 5,
            Endpoint::DebugTop => 6,
            Endpoint::AdminReload => 7,
            Endpoint::AdminCompact => 8,
            Endpoint::Other => 9,
        }
    }
}

/// All service counters. Every field is monotonically non-decreasing except
/// `in_flight` (a gauge).
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests fully parsed and routed (rejected connections excluded).
    pub requests_total: AtomicU64,
    /// Per-endpoint request counts.
    pub by_endpoint: [AtomicU64; ENDPOINT_COUNT],
    /// Responses by status class.
    pub responses_2xx: AtomicU64,
    /// 4xx responses (bad query, unknown path).
    pub responses_4xx: AtomicU64,
    /// 5xx responses (overload inside a worker, deadline aborts).
    pub responses_5xx: AtomicU64,
    /// Connections rejected at admission (queue full) with 503.
    pub rejected_total: AtomicU64,
    /// Requests aborted because the per-request deadline expired.
    pub deadline_aborts_total: AtomicU64,
    /// Result-cache hits.
    pub cache_hits_total: AtomicU64,
    /// Result-cache misses.
    pub cache_misses_total: AtomicU64,
    /// Queries slower than the slow-query threshold (logged in full).
    pub slow_queries_total: AtomicU64,
    /// Requests currently being processed by workers (gauge).
    pub in_flight: AtomicU64,
    /// End-to-end request latency (accept → response written), µs.
    pub latency: Histogram,
    /// Scatter width of sharded searches (shards fanned out per request).
    pub shard_fanout: Histogram,
    /// Straggler overhead per sharded search: slowest shard minus fastest
    /// shard, µs — the wall-clock cost of waiting for the last shard.
    pub shard_straggler_micros: Histogram,
    /// Scatters retried once because a reload sweep landed mid-flight.
    pub shard_retries_total: AtomicU64,
    /// Scatters abandoned (503) because the retry also raced a reload —
    /// mixed-generation answers are never merged.
    pub shard_mixed_generation_total: AtomicU64,
    /// Connections currently owned by the reactor (gauge; a socket being
    /// handled by a worker is counted by `in_flight` instead).
    pub conn_open: AtomicU64,
    /// Reactor-owned connections parked mid-request — reading a request
    /// that has started arriving, or flushing a response (gauge).
    pub conn_parked: AtomicU64,
    /// Fully-read requests waiting in the dispatch queue (gauge).
    pub conn_queue_depth: AtomicU64,
    /// Requests dispatched on a connection that had already served at
    /// least one response (keep-alive reuse).
    pub conn_keepalive_requests_total: AtomicU64,
    /// Connections evicted by the reactor: request deadline while reading
    /// (answered 408), idle timeout between requests, or a stalled flush.
    pub conn_evictions_total: AtomicU64,
    /// First byte of a request to worker dispatch, µs — the read-side wait
    /// the reactor absorbed on behalf of the worker pool.
    pub conn_accept_to_dispatch_micros: Histogram,
    /// Rolling top-K most-expensive-query table (`GET /debug/top?n=`).
    pub top_queries: TopQueries,
}

/// Point-in-time view of one catalog index for `/metrics` rendering —
/// produced by `ResidentIndex::metrics_view`, consumed by
/// [`Metrics::render`].
#[derive(Debug)]
pub struct IndexMetricsView<'a> {
    /// The index's route key (the `index="…"` label value).
    pub name: &'a str,
    /// Cache occupancy of this index's result cache.
    pub cache: CacheStats,
    /// Identity fingerprint of the currently resident engine generation
    /// (combined across shards for a sharded index).
    pub identity: u64,
    /// Number of shards backing this index (1 when unsharded).
    pub shard_count: usize,
    /// Queries routed to this index.
    pub requests_total: u64,
    /// Result-cache hits for this index.
    pub cache_hits_total: u64,
    /// Result-cache misses for this index.
    pub cache_misses_total: u64,
    /// Cache puts admitted by the TinyLFU gate under eviction pressure.
    pub cache_admitted_total: u64,
    /// Cache puts rejected by the TinyLFU gate.
    pub cache_rejected_total: u64,
    /// Completed hot-swap reloads of this index.
    pub reloads_total: u64,
    /// Delta shards currently serving (0 for non-manifest indexes).
    pub delta_shards: u64,
    /// Documents living in delta shards.
    pub delta_docs: u64,
    /// Seconds since the serving manifest generation was committed, or the
    /// `-1` sentinel for indexes without an update path.
    pub freshness_seconds: i64,
    /// Delta commits synced into the serving set.
    pub delta_commits_total: u64,
    /// Compactions completed.
    pub compactions_total: u64,
    /// Total wall-clock milliseconds spent compacting.
    pub compaction_millis_total: u64,
    /// Index-file bytes served straight from the mmap across all shard
    /// slots — zero for format-v2 (eager heap) indexes.
    pub bytes_mapped: u64,
    /// Milliseconds spent opening the shard files currently serving,
    /// summed across slots.
    pub open_millis: u64,
    /// Per-phase latency histograms, in `SpanKind::PHASES` order.
    pub phases: &'a [Histogram; PHASE_COUNT],
    /// Summed cost ledgers of this index's engine runs (cache hits do no
    /// engine work and are excluded; `per_keyword` is not aggregated).
    pub cost: CostLedger,
    /// Distribution of postings scanned per engine run.
    pub work_postings: &'a Histogram,
    /// Distribution of sweep advances per engine run.
    pub work_advances: &'a Histogram,
}

/// The quantiles `/metrics` reports for every histogram.
const QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")];

/// Appends one quantile line, rendering the zero-sample sentinel `-1`.
fn write_quantile(out: &mut String, name: &str, labels: &str, q_label: &str, value: Option<u64>) {
    use std::fmt::Write as _;
    match value {
        Some(v) => {
            let _ = writeln!(out, "{name}{{{labels}quantile=\"{q_label}\"}} {v}");
        }
        None => {
            let _ = writeln!(out, "{name}{{{labels}quantile=\"{q_label}\"}} -1");
        }
    }
}

/// Appends one labeled histogram as quantile lines plus `_sum`/`_count`.
/// Unlike the legacy `-1` sentinel, quantile lines are **omitted** entirely
/// at zero samples — the always-present `_count` (and, for engine phases,
/// `gks_phase_samples_total`) distinguishes "no traffic" from "fast
/// traffic" without a nonstandard negative sample (wire-format note in
/// DESIGN.md). `labels` must be a non-empty label block ending in `,`.
fn write_sampled_histogram(out: &mut String, name: &str, labels: &str, hist: &Histogram) {
    use std::fmt::Write as _;
    let count = hist.count();
    if count > 0 {
        for (q, label) in QUANTILES {
            write_quantile(out, name, labels, label, hist.quantile(q));
        }
    }
    let bare = labels.trim_end_matches(',');
    let _ = writeln!(out, "{name}_sum{{{bare}}} {}", hist.sum());
    let _ = writeln!(out, "{name}_count{{{bare}}} {count}");
}

impl Metrics {
    /// Bumps the counter for one routed request on `endpoint`.
    pub fn record_request(&self, endpoint: Endpoint) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        self.by_endpoint[endpoint.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Classifies a response status into its class counter.
    pub fn record_status(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the Prometheus-style exposition. Global lines aggregate over
    /// the whole catalog (cache occupancy sums across indexes;
    /// `gks_index_identity` reports the first — default — index, keeping the
    /// single-index exposition backward compatible); every `indexes` entry
    /// additionally gets an `index="…"`-labeled section with its own cache,
    /// reload, and per-phase stats. Process-global per-phase aggregates and
    /// span totals come from `gks-trace`.
    pub fn render(&self, indexes: &[IndexMetricsView<'_>]) -> String {
        use std::fmt::Write as _;
        let mut cache = CacheStats::default();
        for view in indexes {
            cache.entries += view.cache.entries;
            cache.bytes += view.cache.bytes;
            cache.capacity += view.cache.capacity;
        }
        let index_identity = indexes.first().map_or(0, |v| v.identity);
        let mut out = String::with_capacity(2048 + indexes.len() * 1024);
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let _ = writeln!(out, "gks_requests_total {}", load(&self.requests_total));
        for endpoint in Endpoint::ALL {
            let _ = writeln!(
                out,
                "gks_requests{{endpoint=\"{}\"}} {}",
                endpoint.label(),
                load(&self.by_endpoint[endpoint.index()])
            );
        }
        let _ = writeln!(out, "gks_responses{{class=\"2xx\"}} {}", load(&self.responses_2xx));
        let _ = writeln!(out, "gks_responses{{class=\"4xx\"}} {}", load(&self.responses_4xx));
        let _ = writeln!(out, "gks_responses{{class=\"5xx\"}} {}", load(&self.responses_5xx));
        let _ = writeln!(out, "gks_rejected_total {}", load(&self.rejected_total));
        let _ = writeln!(out, "gks_deadline_aborts_total {}", load(&self.deadline_aborts_total));
        let _ = writeln!(out, "gks_cache_hits_total {}", load(&self.cache_hits_total));
        let _ = writeln!(out, "gks_cache_misses_total {}", load(&self.cache_misses_total));
        let _ = writeln!(out, "gks_cache_entries {}", cache.entries);
        let _ = writeln!(out, "gks_cache_bytes {}", cache.bytes);
        let _ = writeln!(out, "gks_cache_capacity_bytes {}", cache.capacity);
        let _ = writeln!(out, "gks_slow_queries_total {}", load(&self.slow_queries_total));
        let _ = writeln!(out, "gks_in_flight {}", load(&self.in_flight));
        for (q, label) in QUANTILES {
            write_quantile(&mut out, "gks_latency_micros", "", label, self.latency.quantile(q));
        }
        let _ = writeln!(out, "gks_latency_micros_sum {}", self.latency.sum());
        let _ = writeln!(out, "gks_latency_micros_count {}", self.latency.count());
        // Scatter/gather fan-out stats for sharded indexes. Zero-sample
        // quantiles render the -1 sentinel, so an unsharded deployment
        // exposes the same line set with sentinel values.
        for (q, label) in QUANTILES {
            write_quantile(&mut out, "gks_shard_fanout", "", label, self.shard_fanout.quantile(q));
        }
        let _ = writeln!(out, "gks_shard_fanout_count {}", self.shard_fanout.count());
        for (q, label) in QUANTILES {
            write_quantile(
                &mut out,
                "gks_shard_straggler_micros",
                "",
                label,
                self.shard_straggler_micros.quantile(q),
            );
        }
        let _ =
            writeln!(out, "gks_shard_straggler_micros_sum {}", self.shard_straggler_micros.sum());
        let _ = writeln!(
            out,
            "gks_shard_straggler_micros_count {}",
            self.shard_straggler_micros.count()
        );
        let _ = writeln!(out, "gks_shard_retries_total {}", load(&self.shard_retries_total));
        let _ = writeln!(
            out,
            "gks_shard_mixed_generation_total {}",
            load(&self.shard_mixed_generation_total)
        );
        // Connection-layer stats from the reactor. The histogram follows
        // the sampled convention: quantile lines omitted at zero samples,
        // `_count` always present.
        let _ = writeln!(out, "gks_conn_open {}", load(&self.conn_open));
        let _ = writeln!(out, "gks_conn_parked {}", load(&self.conn_parked));
        let _ = writeln!(out, "gks_conn_queue_depth {}", load(&self.conn_queue_depth));
        let _ = writeln!(
            out,
            "gks_conn_keepalive_requests_total {}",
            load(&self.conn_keepalive_requests_total)
        );
        let _ = writeln!(out, "gks_conn_evictions_total {}", load(&self.conn_evictions_total));
        let dispatch = &self.conn_accept_to_dispatch_micros;
        if dispatch.count() > 0 {
            for (q, label) in QUANTILES {
                if let Some(v) = dispatch.quantile(q) {
                    let _ = writeln!(
                        out,
                        "gks_conn_accept_to_dispatch_micros{{quantile=\"{label}\"}} {v}"
                    );
                }
            }
        }
        let _ = writeln!(out, "gks_conn_accept_to_dispatch_micros_sum {}", dispatch.sum());
        let _ = writeln!(out, "gks_conn_accept_to_dispatch_micros_count {}", dispatch.count());
        // TinyLFU admission outcomes, summed across every index's cache.
        let admitted: u64 = indexes.iter().map(|v| v.cache_admitted_total).sum();
        let rejected: u64 = indexes.iter().map(|v| v.cache_rejected_total).sum();
        let _ = writeln!(out, "gks_cache_admitted_total {admitted}");
        let _ = writeln!(out, "gks_cache_rejected_total {rejected}");
        // Per-phase engine latency, aggregated by gks-trace across every
        // span of that kind recorded process-wide (CLI-triggered searches
        // included, though in the server they all come from requests).
        // Quantile lines are omitted at zero samples; the samples counter
        // below is the "did this phase run at all" signal.
        for kind in SpanKind::PHASES {
            let hist = gks_trace::histogram(kind);
            let labels = format!("phase=\"{}\",", kind.label());
            write_sampled_histogram(&mut out, "gks_phase_latency_micros", &labels, hist);
            let _ = writeln!(
                out,
                "gks_phase_samples_total{{phase=\"{}\"}} {}",
                kind.label(),
                hist.count()
            );
        }
        // Maintenance (update-path) latency: delta builds and compactions,
        // aggregated process-wide by gks-trace. Zero-sample quantiles render
        // the -1 sentinel on deployments with no update path.
        for (kind, name) in [
            (SpanKind::DeltaBuild, "gks_delta_build_micros"),
            (SpanKind::Compaction, "gks_compaction_micros"),
        ] {
            let hist = gks_trace::histogram(kind);
            for (q, label) in QUANTILES {
                write_quantile(&mut out, name, "", label, hist.quantile(q));
            }
            let _ = writeln!(out, "{name}_sum {}", hist.sum());
            let _ = writeln!(out, "{name}_count {}", hist.count());
        }
        // Process-global span totals: exact request accounting even under
        // trace head-sampling (sampled-out spans still count here).
        for kind in SpanKind::ALL {
            let _ = writeln!(
                out,
                "gks_trace_spans_total{{kind=\"{}\"}} {}",
                kind.label(),
                gks_trace::span_count(kind)
            );
        }
        let _ = writeln!(out, "gks_index_identity {index_identity}");
        // Per-index sections: one block per resident catalog index.
        for view in indexes {
            let _ = writeln!(
                out,
                "gks_index_requests_total{{index=\"{}\"}} {}",
                view.name, view.requests_total
            );
            let _ = writeln!(
                out,
                "gks_index_cache_hits_total{{index=\"{}\"}} {}",
                view.name, view.cache_hits_total
            );
            let _ = writeln!(
                out,
                "gks_index_cache_misses_total{{index=\"{}\"}} {}",
                view.name, view.cache_misses_total
            );
            let _ = writeln!(
                out,
                "gks_index_cache_entries{{index=\"{}\"}} {}",
                view.name, view.cache.entries
            );
            let _ = writeln!(
                out,
                "gks_index_cache_bytes{{index=\"{}\"}} {}",
                view.name, view.cache.bytes
            );
            let _ = writeln!(
                out,
                "gks_index_reloads_total{{index=\"{}\"}} {}",
                view.name, view.reloads_total
            );
            let _ =
                writeln!(out, "gks_index_identity{{index=\"{}\"}} {}", view.name, view.identity);
            let _ =
                writeln!(out, "gks_index_shards{{index=\"{}\"}} {}", view.name, view.shard_count);
            let _ = writeln!(
                out,
                "gks_index_cache_admitted_total{{index=\"{}\"}} {}",
                view.name, view.cache_admitted_total
            );
            let _ = writeln!(
                out,
                "gks_index_cache_rejected_total{{index=\"{}\"}} {}",
                view.name, view.cache_rejected_total
            );
            // Update-path gauges and counters. Non-manifest indexes expose
            // the same lines with zeros (and the -1 freshness sentinel) so
            // dashboards need no per-deployment templating.
            let _ =
                writeln!(out, "gks_delta_shards{{index=\"{}\"}} {}", view.name, view.delta_shards);
            let _ = writeln!(out, "gks_delta_docs{{index=\"{}\"}} {}", view.name, view.delta_docs);
            let _ = writeln!(
                out,
                "gks_index_freshness_seconds{{index=\"{}\"}} {}",
                view.name, view.freshness_seconds
            );
            let _ = writeln!(
                out,
                "gks_delta_commits_total{{index=\"{}\"}} {}",
                view.name, view.delta_commits_total
            );
            let _ = writeln!(
                out,
                "gks_compactions_total{{index=\"{}\"}} {}",
                view.name, view.compactions_total
            );
            let _ = writeln!(
                out,
                "gks_compaction_millis_total{{index=\"{}\"}} {}",
                view.name, view.compaction_millis_total
            );
            // Zero-copy tier gauges: how much of the index stays on the
            // mmap instead of the heap, and what opening the serving
            // shard files cost. A v2 (eager) index reports 0 mapped
            // bytes, so the ratio doubles as a format indicator.
            let _ = writeln!(
                out,
                "gks_index_bytes_mapped{{index=\"{}\"}} {}",
                view.name, view.bytes_mapped
            );
            let _ = writeln!(
                out,
                "gks_index_open_millis{{index=\"{}\"}} {}",
                view.name, view.open_millis
            );
            for (i, kind) in SpanKind::PHASES.iter().enumerate() {
                let hist = &view.phases[i];
                let labels = format!("index=\"{}\",phase=\"{}\",", view.name, kind.label());
                write_sampled_histogram(&mut out, "gks_index_phase_latency_micros", &labels, hist);
            }
            // Per-index cost accounting: total engine work (cache hits do
            // no engine work and are excluded) plus work-per-query
            // distributions, all pure counters — never wall-clock.
            for (name, v) in [
                ("gks_cost_postings_scanned_total", view.cost.postings_scanned),
                ("gks_cost_tombstone_masked_total", view.cost.tombstone_masked),
                ("gks_cost_heap_ops_total", view.cost.heap_ops),
                ("gks_cost_sweep_advances_total", view.cost.sweep_advances),
                ("gks_cost_rank_candidates_total", view.cost.rank_candidates),
                ("gks_cost_di_attrs_total", view.cost.di_attrs),
                ("gks_cost_result_bytes_total", view.cost.result_bytes),
            ] {
                let _ = writeln!(out, "{name}{{index=\"{}\"}} {v}", view.name);
            }
            let labels = format!("index=\"{}\",", view.name);
            write_sampled_histogram(
                &mut out,
                "gks_cost_postings_per_query",
                &labels,
                view.work_postings,
            );
            write_sampled_histogram(
                &mut out,
                "gks_cost_advances_per_query",
                &labels,
                view.work_advances,
            );
        }
        out
    }
}

/// Extracts the value of a metric line (`name value` or `name{…} value`)
/// from a rendered exposition. Used by the load generator and tests to read
/// hit rates back without a metrics client. Signed, because zero-sample
/// quantiles render the `-1` sentinel.
pub fn metric_value(exposition: &str, name: &str) -> Option<i64> {
    for line in exposition.lines() {
        let Some(rest) = line.strip_prefix(name) else {
            continue;
        };
        // Exact name match: next char must be a space (plain counter) only —
        // `gks_requests` must not match `gks_requests_total` or a labeled
        // variant unless the caller included the label block in `name`.
        if let Some(value) = rest.strip_prefix(' ') {
            return value.trim().parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_phases() -> [Histogram; PHASE_COUNT] {
        #[allow(clippy::declare_interior_mutable_const)]
        const EMPTY: Histogram = Histogram::new();
        [EMPTY; PHASE_COUNT]
    }

    #[test]
    fn render_and_parse_round_trip() {
        let m = Metrics::default();
        m.record_request(Endpoint::Search);
        m.record_request(Endpoint::Search);
        m.record_request(Endpoint::Healthz);
        m.record_status(200);
        m.record_status(400);
        m.cache_hits_total.fetch_add(3, Ordering::Relaxed);
        m.latency.record(120);
        let cache = CacheStats { entries: 2, bytes: 400, capacity: 1000 };
        let phases = empty_phases();
        phases[1].record(250); // postings
        let work_postings = Histogram::new();
        let work_advances = Histogram::new();
        work_postings.record(9);
        work_advances.record(31);
        let view = IndexMetricsView {
            name: "dblp",
            cache,
            identity: 42,
            shard_count: 2,
            requests_total: 2,
            cache_hits_total: 3,
            cache_misses_total: 1,
            cache_admitted_total: 5,
            cache_rejected_total: 4,
            reloads_total: 1,
            delta_shards: 2,
            delta_docs: 17,
            freshness_seconds: 3,
            delta_commits_total: 4,
            compactions_total: 1,
            compaction_millis_total: 250,
            bytes_mapped: 7340032,
            open_millis: 12,
            phases: &phases,
            cost: CostLedger {
                postings_scanned: 9,
                tombstone_masked: 2,
                heap_ops: 18,
                sweep_advances: 31,
                rank_candidates: 6,
                di_attrs: 4,
                result_bytes: 512,
                ..CostLedger::default()
            },
            work_postings: &work_postings,
            work_advances: &work_advances,
        };
        let text = m.render(&[view]);
        assert_eq!(metric_value(&text, "gks_requests_total"), Some(3));
        assert_eq!(metric_value(&text, "gks_requests{endpoint=\"search\"}"), Some(2));
        assert_eq!(metric_value(&text, "gks_responses{class=\"2xx\"}"), Some(1));
        assert_eq!(metric_value(&text, "gks_cache_hits_total"), Some(3));
        assert_eq!(metric_value(&text, "gks_cache_entries"), Some(2));
        assert_eq!(metric_value(&text, "gks_latency_micros_count"), Some(1));
        assert_eq!(metric_value(&text, "gks_index_identity"), Some(42));
        // Per-index section.
        assert_eq!(metric_value(&text, "gks_index_requests_total{index=\"dblp\"}"), Some(2));
        assert_eq!(metric_value(&text, "gks_index_cache_hits_total{index=\"dblp\"}"), Some(3));
        assert_eq!(metric_value(&text, "gks_index_cache_misses_total{index=\"dblp\"}"), Some(1));
        assert_eq!(metric_value(&text, "gks_index_reloads_total{index=\"dblp\"}"), Some(1));
        assert_eq!(metric_value(&text, "gks_index_identity{index=\"dblp\"}"), Some(42));
        assert_eq!(metric_value(&text, "gks_index_shards{index=\"dblp\"}"), Some(2));
        assert_eq!(metric_value(&text, "gks_cache_admitted_total"), Some(5));
        assert_eq!(metric_value(&text, "gks_cache_rejected_total"), Some(4));
        assert_eq!(metric_value(&text, "gks_index_cache_admitted_total{index=\"dblp\"}"), Some(5));
        // Update-path lines.
        assert_eq!(metric_value(&text, "gks_delta_shards{index=\"dblp\"}"), Some(2));
        assert_eq!(metric_value(&text, "gks_delta_docs{index=\"dblp\"}"), Some(17));
        assert_eq!(metric_value(&text, "gks_index_freshness_seconds{index=\"dblp\"}"), Some(3));
        assert_eq!(metric_value(&text, "gks_delta_commits_total{index=\"dblp\"}"), Some(4));
        assert_eq!(metric_value(&text, "gks_compactions_total{index=\"dblp\"}"), Some(1));
        assert_eq!(metric_value(&text, "gks_compaction_millis_total{index=\"dblp\"}"), Some(250));
        // Zero-copy tier gauges.
        assert_eq!(metric_value(&text, "gks_index_bytes_mapped{index=\"dblp\"}"), Some(7340032));
        assert_eq!(metric_value(&text, "gks_index_open_millis{index=\"dblp\"}"), Some(12));
        assert!(metric_value(&text, "gks_compaction_micros_count").is_some());
        assert!(metric_value(&text, "gks_delta_build_micros_count").is_some());
        assert_eq!(
            metric_value(
                &text,
                "gks_index_phase_latency_micros_count{index=\"dblp\",phase=\"postings\"}"
            ),
            Some(1)
        );
        // Cost families: per-index work totals and per-query distributions.
        assert_eq!(metric_value(&text, "gks_cost_postings_scanned_total{index=\"dblp\"}"), Some(9));
        assert_eq!(metric_value(&text, "gks_cost_tombstone_masked_total{index=\"dblp\"}"), Some(2));
        assert_eq!(metric_value(&text, "gks_cost_heap_ops_total{index=\"dblp\"}"), Some(18));
        assert_eq!(metric_value(&text, "gks_cost_sweep_advances_total{index=\"dblp\"}"), Some(31));
        assert_eq!(metric_value(&text, "gks_cost_rank_candidates_total{index=\"dblp\"}"), Some(6));
        assert_eq!(metric_value(&text, "gks_cost_di_attrs_total{index=\"dblp\"}"), Some(4));
        assert_eq!(metric_value(&text, "gks_cost_result_bytes_total{index=\"dblp\"}"), Some(512));
        assert_eq!(
            metric_value(&text, "gks_cost_postings_per_query_count{index=\"dblp\"}"),
            Some(1)
        );
        assert_eq!(
            metric_value(&text, "gks_cost_postings_per_query{index=\"dblp\",quantile=\"0.5\"}"),
            Some(10),
            "9 postings land in the ≤10 bucket"
        );
        assert_eq!(
            metric_value(&text, "gks_cost_advances_per_query_sum{index=\"dblp\"}"),
            Some(31)
        );
        assert_eq!(metric_value(&text, "gks_nope"), None);
    }

    #[test]
    fn multi_index_sections_and_cache_aggregation() {
        let m = Metrics::default();
        let phases_a = empty_phases();
        let phases_b = empty_phases();
        let empty_work = Histogram::new();
        let a = IndexMetricsView {
            name: "a",
            cache: CacheStats { entries: 1, bytes: 100, capacity: 500 },
            identity: 7,
            shard_count: 1,
            requests_total: 4,
            cache_hits_total: 2,
            cache_misses_total: 2,
            cache_admitted_total: 1,
            cache_rejected_total: 0,
            reloads_total: 0,
            delta_shards: 0,
            delta_docs: 0,
            freshness_seconds: -1,
            delta_commits_total: 0,
            compactions_total: 0,
            compaction_millis_total: 0,
            bytes_mapped: 0,
            open_millis: 0,
            phases: &phases_a,
            cost: CostLedger::default(),
            work_postings: &empty_work,
            work_advances: &empty_work,
        };
        let b = IndexMetricsView {
            name: "b",
            cache: CacheStats { entries: 2, bytes: 300, capacity: 500 },
            identity: 9,
            shard_count: 4,
            requests_total: 6,
            cache_hits_total: 1,
            cache_misses_total: 5,
            cache_admitted_total: 0,
            cache_rejected_total: 3,
            reloads_total: 2,
            delta_shards: 3,
            delta_docs: 9,
            freshness_seconds: 0,
            delta_commits_total: 5,
            compactions_total: 2,
            compaction_millis_total: 40,
            bytes_mapped: 0,
            open_millis: 3,
            phases: &phases_b,
            cost: CostLedger::default(),
            work_postings: &empty_work,
            work_advances: &empty_work,
        };
        let text = m.render(&[a, b]);
        // Globals aggregate the per-index caches; the bare identity is the
        // default (first) index's.
        assert_eq!(metric_value(&text, "gks_cache_entries"), Some(3));
        assert_eq!(metric_value(&text, "gks_cache_bytes"), Some(400));
        assert_eq!(metric_value(&text, "gks_cache_capacity_bytes"), Some(1000));
        assert_eq!(metric_value(&text, "gks_index_identity"), Some(7));
        assert_eq!(metric_value(&text, "gks_index_identity{index=\"a\"}"), Some(7));
        assert_eq!(metric_value(&text, "gks_index_identity{index=\"b\"}"), Some(9));
        assert_eq!(metric_value(&text, "gks_index_requests_total{index=\"b\"}"), Some(6));
        assert_eq!(metric_value(&text, "gks_index_reloads_total{index=\"b\"}"), Some(2));
        assert_eq!(metric_value(&text, "gks_index_shards{index=\"a\"}"), Some(1));
        assert_eq!(metric_value(&text, "gks_index_shards{index=\"b\"}"), Some(4));
        // Admission counters sum across the catalog.
        assert_eq!(metric_value(&text, "gks_cache_admitted_total"), Some(1));
        assert_eq!(metric_value(&text, "gks_cache_rejected_total"), Some(3));
    }

    #[test]
    fn zero_sample_quantiles_render_sentinel() {
        let m = Metrics::default();
        let text = m.render(&[]);
        // No latency samples recorded → every quantile is the -1 sentinel,
        // not a bucket bound and not NaN.
        assert_eq!(metric_value(&text, "gks_latency_micros{quantile=\"0.5\"}"), Some(-1));
        assert_eq!(metric_value(&text, "gks_latency_micros{quantile=\"0.99\"}"), Some(-1));
        assert!(!text.contains("NaN"));
        m.latency.record(70);
        let text = m.render(&[]);
        assert_eq!(metric_value(&text, "gks_latency_micros{quantile=\"0.5\"}"), Some(100));
    }

    #[test]
    fn per_phase_lines_are_exposed() {
        let m = Metrics::default();
        let text = m.render(&[]);
        // Phase quantile lines are *omitted* at zero samples (no `-1`
        // sentinel for this family); `_count` and the explicit samples
        // counter are always present. The global trace histograms are
        // process-wide shared state, so other tests may have recorded into
        // them — assert only the unconditional lines here.
        for phase in ["parse", "postings", "sweep", "rank", "di", "scatter", "gather"] {
            let count = format!("gks_phase_latency_micros_count{{phase=\"{phase}\"}}");
            assert!(metric_value(&text, &count).is_some(), "missing {count}");
            let samples = format!("gks_phase_samples_total{{phase=\"{phase}\"}}");
            assert!(metric_value(&text, &samples).is_some(), "missing {samples}");
        }
        // Shard fan-out lines exist even with zero samples (the -1 sentinel
        // pattern is kept for the legacy scatter/gather families).
        assert_eq!(metric_value(&text, "gks_shard_fanout{quantile=\"0.5\"}"), Some(-1));
        assert_eq!(metric_value(&text, "gks_shard_straggler_micros{quantile=\"0.99\"}"), Some(-1));
        assert_eq!(metric_value(&text, "gks_shard_retries_total"), Some(0));
        assert_eq!(metric_value(&text, "gks_shard_mixed_generation_total"), Some(0));
    }

    #[test]
    fn per_index_phase_quantiles_omitted_until_sampled() {
        let m = Metrics::default();
        let phases = empty_phases();
        let empty_work = Histogram::new();
        let mut view = IndexMetricsView {
            name: "dblp",
            cache: CacheStats { entries: 0, bytes: 0, capacity: 0 },
            identity: 1,
            shard_count: 1,
            requests_total: 0,
            cache_hits_total: 0,
            cache_misses_total: 0,
            cache_admitted_total: 0,
            cache_rejected_total: 0,
            reloads_total: 0,
            delta_shards: 0,
            delta_docs: 0,
            freshness_seconds: -1,
            delta_commits_total: 0,
            compactions_total: 0,
            compaction_millis_total: 0,
            bytes_mapped: 0,
            open_millis: 0,
            phases: &phases,
            cost: CostLedger::default(),
            work_postings: &empty_work,
            work_advances: &empty_work,
        };
        let text = m.render(std::slice::from_ref(&view));
        // Zero samples: no quantile lines, but _count and cost counters exist.
        assert!(
            !text.contains(
                "gks_index_phase_latency_micros{index=\"dblp\",phase=\"sweep\",quantile="
            ),
            "zero-sample per-index quantiles must be omitted:\n{text}"
        );
        assert_eq!(
            metric_value(
                &text,
                "gks_index_phase_latency_micros_count{index=\"dblp\",phase=\"sweep\"}"
            ),
            Some(0)
        );
        assert!(
            !text.contains("gks_cost_postings_per_query{index=\"dblp\",quantile="),
            "zero-sample work quantiles must be omitted:\n{text}"
        );
        // One sample: the quantile lines appear.
        let sampled = empty_phases();
        sampled[2].record(123); // sweep
        let work = Histogram::new();
        work.record(42);
        view.phases = &sampled;
        view.work_postings = &work;
        let text = m.render(std::slice::from_ref(&view));
        assert!(
            metric_value(
                &text,
                "gks_index_phase_latency_micros{index=\"dblp\",phase=\"sweep\",quantile=\"0.5\"}"
            )
            .is_some_and(|v| v > 0),
            "sampled per-index quantiles must appear:\n{text}"
        );
        assert!(
            metric_value(&text, "gks_cost_postings_per_query{index=\"dblp\",quantile=\"0.5\"}")
                .is_some(),
            "sampled work quantiles must appear:\n{text}"
        );
    }

    #[test]
    fn debug_traces_endpoint_classifies() {
        assert_eq!(Endpoint::of_path("/debug/traces"), Endpoint::DebugTraces);
        assert_eq!(Endpoint::of_path("/debug/top"), Endpoint::DebugTop);
        assert_eq!(Endpoint::of_path("/debug/other"), Endpoint::Other);
        assert_eq!(Endpoint::of_path("/admin/reload"), Endpoint::AdminReload);
        assert_eq!(Endpoint::of_path("/admin/compact"), Endpoint::AdminCompact);
    }
}
