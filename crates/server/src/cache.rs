//! Sharded LRU cache for serialized query responses.
//!
//! Keys are the normalized request form `(endpoint, query, s, limit)` built
//! by the router; values are the exact JSON bytes previously sent, shared as
//! `Arc<[u8]>` so a hit never copies the body. Because the wire format is
//! deterministic (`gks_core::wire` excludes timings), a cached body is
//! byte-identical to recomputation — the property test in
//! `tests/cache_props.rs` enforces this end to end.
//!
//! Capacity is accounted in **bytes** (key + value + bookkeeping overhead),
//! split evenly across shards. Each shard is an intrusive doubly-linked LRU
//! list over a slot vector, so `get`/`put`/evict are O(1). The cache is tied
//! to an **index identity** fingerprint at two levels: every entry is tagged
//! with the identity it was computed against, and a hit is returned only
//! when the tag matches the reader's identity ([`ResultCache::get_for`]) —
//! so a hot-swapped index can never serve stale bytes even while old-engine
//! requests are still in flight. [`ResultCache::ensure_identity`] is the
//! bulk complement: it drops every entry when the resident identity changes,
//! reclaiming memory that the per-entry tags would otherwise only retire
//! lazily through LRU pressure.
//!
//! **Frequency-sketch admission (TinyLFU).** With
//! [`ResultCache::with_admission`] each shard additionally keeps a 4-bit
//! count-min sketch ([`FrequencySketch`]) of key access frequencies. When a
//! put would force an eviction, the candidate is admitted only if its
//! estimated frequency is at least the LRU victim's — one-hit-wonder
//! responses (typical of a Zipf query tail) then never displace hot entries.
//! Admission is off by default (pure LRU, byte-identical to the historical
//! behavior); the [`ResultCache::admitted_total`] / [`rejected_total`]
//! counters make the gate's effect observable in `/metrics`.
//!
//! [`rejected_total`]: ResultCache::rejected_total

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Fixed per-entry bookkeeping charge added to `key.len() + value.len()`
/// when accounting capacity (map entry, slot, `Arc` header — an estimate,
/// deliberately conservative).
pub const ENTRY_OVERHEAD: usize = 96;

const NIL: usize = usize::MAX;

/// A 4-bit count-min sketch over key hashes — the frequency estimator
/// behind TinyLFU admission. Four hash functions index into a table of
/// 4-bit saturating counters (16 per `u64` word); when the total number of
/// increments reaches the sample size every counter is halved, aging out
/// stale popularity so the sketch tracks *recent* frequency.
#[derive(Debug)]
struct FrequencySketch {
    table: Vec<u64>,
    mask: u64,
    increments: u64,
    sample_size: u64,
}

impl FrequencySketch {
    /// A sketch sized for roughly `entries` resident keys.
    fn new(entries: usize) -> FrequencySketch {
        let words = entries.max(16).next_power_of_two();
        FrequencySketch {
            table: vec![0u64; words],
            mask: (words as u64) - 1,
            increments: 0,
            sample_size: (words as u64) * 10,
        }
    }

    /// The four (word, nibble) positions for `hash`, one per hash function.
    fn positions(&self, hash: u64) -> [(usize, u32); 4] {
        let mut out = [(0usize, 0u32); 4];
        let mut h = hash;
        for slot in &mut out {
            // SplitMix64-style remix per function: cheap, well distributed.
            h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = h;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            // Index stays in range: the table length is a power of two and
            // `mask` is length - 1.
            *slot = ((z & self.mask) as usize, ((z >> 32) & 0xf) as u32 * 4);
        }
        out
    }

    /// Bumps the 4-bit counters for `hash` (saturating at 15), halving the
    /// whole table when the sample window fills.
    fn increment(&mut self, hash: u64) {
        let mut bumped = false;
        for (word, shift) in self.positions(hash) {
            if let Some(cell) = self.table.get_mut(word) {
                let current = (*cell >> shift) & 0xf;
                if current < 15 {
                    *cell += 1u64 << shift;
                    bumped = true;
                }
            }
        }
        if bumped {
            self.increments += 1;
            if self.increments >= self.sample_size {
                self.halve();
            }
        }
    }

    /// Estimated access frequency of `hash`: the minimum of its counters.
    fn estimate(&self, hash: u64) -> u64 {
        let mut min = u64::MAX;
        for (word, shift) in self.positions(hash) {
            let cell = self.table.get(word).copied().unwrap_or(0);
            min = min.min((cell >> shift) & 0xf);
        }
        min
    }

    /// Halves every counter (the TinyLFU aging step).
    fn halve(&mut self) {
        for cell in &mut self.table {
            *cell = (*cell >> 1) & 0x7777_7777_7777_7777;
        }
        self.increments /= 2;
    }
}

/// Outcome of a [`Shard::put`] with respect to the admission gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Admission {
    /// Stored without the gate being consulted (no eviction pressure, or
    /// admission disabled).
    Stored,
    /// Under eviction pressure; the candidate beat the LRU victim's
    /// frequency and was stored.
    Admitted,
    /// Under eviction pressure; the candidate was colder than the LRU
    /// victim and was **not** stored.
    Rejected,
}

#[derive(Debug)]
struct Slot {
    key: String,
    value: Arc<[u8]>,
    /// Index identity the value was computed against; hits require an exact
    /// match with the reader's identity.
    identity: u64,
    charge: usize,
    prev: usize,
    next: usize,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<String, usize>,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    /// Most recently used slot index, or `NIL`.
    head: usize,
    /// Least recently used slot index, or `NIL`.
    tail: usize,
    bytes: usize,
    capacity: usize,
    /// TinyLFU admission sketch; `None` means pure LRU (the default).
    sketch: Option<FrequencySketch>,
}

impl Shard {
    fn new(capacity: usize, admission: bool) -> Shard {
        let sketch =
            admission.then(|| FrequencySketch::new(capacity / (ENTRY_OVERHEAD * 4).max(1)));
        Shard { head: NIL, tail: NIL, capacity, sketch, ..Shard::default() }
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = match &self.slots[idx] {
            Some(s) => (s.prev, s.next),
            None => return,
        };
        match prev {
            NIL => self.head = next,
            p => {
                if let Some(Some(s)) = self.slots.get_mut(p) {
                    s.next = next;
                }
            }
        }
        match next {
            NIL => self.tail = prev,
            n => {
                if let Some(Some(s)) = self.slots.get_mut(n) {
                    s.prev = prev;
                }
            }
        }
    }

    fn push_front(&mut self, idx: usize) {
        let old_head = self.head;
        if let Some(Some(s)) = self.slots.get_mut(idx) {
            s.prev = NIL;
            s.next = old_head;
        }
        match old_head {
            NIL => self.tail = idx,
            h => {
                if let Some(Some(s)) = self.slots.get_mut(h) {
                    s.prev = idx;
                }
            }
        }
        self.head = idx;
    }

    fn get(&mut self, key: &str, identity: u64) -> Option<Arc<[u8]>> {
        if let Some(sketch) = &mut self.sketch {
            sketch.increment(fnv1a(key.as_bytes()));
        }
        let idx = *self.map.get(key)?;
        let slot = self.slots.get(idx).and_then(|s| s.as_ref())?;
        if slot.identity != identity {
            // An entry from a different engine generation. Leave it in place
            // — it may still be valid for readers on that generation — but
            // never serve it across generations.
            return None;
        }
        let value = Arc::clone(&slot.value);
        self.detach(idx);
        self.push_front(idx);
        Some(value)
    }

    fn remove_slot(&mut self, idx: usize) {
        self.detach(idx);
        if let Some(slot) = self.slots.get_mut(idx).and_then(Option::take) {
            self.bytes = self.bytes.saturating_sub(slot.charge);
            self.map.remove(&slot.key);
            self.free.push(idx);
        }
    }

    fn evict_to_capacity(&mut self) {
        while self.bytes > self.capacity && self.tail != NIL {
            let victim = self.tail;
            self.remove_slot(victim);
        }
    }

    fn put(&mut self, key: String, value: Arc<[u8]>, identity: u64) -> Admission {
        let charge = key.len() + value.len() + ENTRY_OVERHEAD;
        if charge > self.capacity {
            return Admission::Stored; // would evict the whole shard for one oversized entry
        }
        let replacing = self.map.contains_key(&key);
        let mut outcome = Admission::Stored;
        if self.sketch.is_some() {
            let candidate_hash = fnv1a(key.as_bytes());
            if let Some(sketch) = &mut self.sketch {
                sketch.increment(candidate_hash);
            }
            // The gate only arbitrates *displacement*: a put that fits
            // without evicting (or replaces its own key) always proceeds.
            if !replacing && self.bytes + charge > self.capacity && self.tail != NIL {
                let victim_hash = self
                    .slots
                    .get(self.tail)
                    .and_then(|s| s.as_ref())
                    .map(|s| fnv1a(s.key.as_bytes()));
                if let (Some(sketch), Some(victim_hash)) = (self.sketch.as_ref(), victim_hash) {
                    if sketch.estimate(candidate_hash) < sketch.estimate(victim_hash) {
                        return Admission::Rejected;
                    }
                }
                outcome = Admission::Admitted;
            }
        }
        if replacing {
            if let Some(&idx) = self.map.get(&key) {
                self.remove_slot(idx); // replace: simplest way to re-account bytes
            }
        }
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        };
        self.slots[idx] =
            Some(Slot { key: key.clone(), value, identity, charge, prev: NIL, next: NIL });
        self.map.insert(key, idx);
        self.push_front(idx);
        self.bytes += charge;
        self.evict_to_capacity();
        outcome
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.bytes = 0;
    }

    /// Keys from most- to least-recently used (test/debug aid).
    #[cfg(test)]
    fn keys_mru_to_lru(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            match self.slots.get(cur).and_then(|s| s.as_ref()) {
                Some(s) => {
                    out.push(s.key.clone());
                    cur = s.next;
                }
                None => break,
            }
        }
        out
    }
}

/// Point-in-time occupancy of the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Live entries across all shards.
    pub entries: usize,
    /// Accounted bytes across all shards (keys + values + overhead).
    pub bytes: usize,
    /// Total capacity in bytes across all shards.
    pub capacity: usize,
}

/// A sharded, byte-capacity-bounded LRU cache of serialized responses,
/// optionally fronted by a TinyLFU admission gate.
#[derive(Debug)]
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    identity: AtomicU64,
    mask: u64,
    /// Puts admitted by the frequency gate under eviction pressure.
    admitted: AtomicU64,
    /// Puts rejected by the frequency gate (candidate colder than victim).
    rejected: AtomicU64,
}

fn lock_shard(m: &Mutex<Shard>) -> gks_trace::lockorder::Tracked<MutexGuard<'_, Shard>> {
    // A poisoned shard only means a panicking thread died mid-operation;
    // the shard data is a cache and safe to keep using (worst case: drop it).
    gks_trace::lockorder::track(
        "server/cache.shards",
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
    )
}

impl ResultCache {
    /// Creates a cache with `capacity_bytes` split over `shards` shards
    /// (rounded up to a power of two, minimum 1), bound to index `identity`.
    /// Pure LRU — no admission gate.
    pub fn new(capacity_bytes: usize, shards: usize, identity: u64) -> ResultCache {
        ResultCache::with_admission(capacity_bytes, shards, identity, false)
    }

    /// Like [`ResultCache::new`], with the TinyLFU frequency-sketch
    /// admission gate enabled when `admission` is set: under eviction
    /// pressure a new entry is stored only if its estimated access
    /// frequency is at least the LRU victim's.
    pub fn with_admission(
        capacity_bytes: usize,
        shards: usize,
        identity: u64,
        admission: bool,
    ) -> ResultCache {
        let shard_count = shards.max(1).next_power_of_two();
        let per_shard = (capacity_bytes / shard_count).max(ENTRY_OVERHEAD * 4);
        ResultCache {
            shards: (0..shard_count)
                .map(|_| Mutex::new(Shard::new(per_shard, admission)))
                .collect(),
            identity: AtomicU64::new(identity),
            mask: (shard_count as u64) - 1,
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Puts admitted by the frequency gate under eviction pressure (0 when
    /// admission is disabled).
    pub fn admitted_total(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Puts rejected by the frequency gate because the candidate was colder
    /// than the LRU victim (0 when admission is disabled).
    pub fn rejected_total(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    fn shard_for(&self, key: &str) -> &Mutex<Shard> {
        let h = fnv1a(key.as_bytes());
        // Index comes from a masked hash, always in range.
        &self.shards[(h & self.mask) as usize]
    }

    /// Looks up `key` against the cache's current identity, refreshing its
    /// recency on a hit.
    pub fn get(&self, key: &str) -> Option<Arc<[u8]>> {
        self.get_for(key, self.identity())
    }

    /// Looks up `key` for a reader pinned to `identity` (the engine
    /// generation its request snapshot holds). Returns a hit only when the
    /// entry was computed against that same identity — the load-bearing
    /// guarantee that a hot-swap can never surface stale bytes.
    pub fn get_for(&self, key: &str, identity: u64) -> Option<Arc<[u8]>> {
        lock_shard(self.shard_for(key)).get(key, identity)
    }

    /// Inserts `key → value` tagged with the cache's current identity,
    /// evicting least-recently-used entries from the target shard until it
    /// fits. Values larger than one shard's capacity are silently not
    /// cached.
    pub fn put(&self, key: String, value: Arc<[u8]>) {
        self.put_for(key, value, self.identity());
    }

    /// Inserts `key → value` tagged with the writer's engine-generation
    /// `identity`. A late writer on a superseded generation only inserts an
    /// entry current readers will ignore (and LRU pressure will retire).
    pub fn put_for(&self, key: String, value: Arc<[u8]>, identity: u64) {
        let outcome = lock_shard(self.shard_for(&key)).put(key, value, identity);
        match outcome {
            Admission::Stored => {}
            Admission::Admitted => {
                self.admitted.fetch_add(1, Ordering::Relaxed);
            }
            Admission::Rejected => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drops every entry.
    pub fn clear(&self) {
        for shard in &self.shards {
            lock_shard(shard).clear();
        }
    }

    /// The index identity this cache is currently valid for.
    pub fn identity(&self) -> u64 {
        self.identity.load(Ordering::Acquire)
    }

    /// Re-binds the cache to `identity`, clearing everything if it differs
    /// from the identity the cached entries were computed against. Cheap
    /// when the identity is unchanged (one atomic load).
    pub fn ensure_identity(&self, identity: u64) {
        if self.identity.load(Ordering::Acquire) == identity {
            return;
        }
        self.identity.store(identity, Ordering::Release);
        self.clear();
    }

    /// Current occupancy.
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats { entries: 0, bytes: 0, capacity: 0 };
        for shard in &self.shards {
            let s = lock_shard(shard);
            stats.entries += s.map.len();
            stats.bytes += s.bytes;
            stats.capacity += s.capacity;
        }
        stats
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

/// FNV-1a over `bytes` — stable, dependency-free shard selector.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_shard(capacity: usize) -> ResultCache {
        ResultCache::new(capacity, 1, 1)
    }

    fn val(n: usize) -> Arc<[u8]> {
        vec![0u8; n].into()
    }

    fn charge(key: &str, n: usize) -> usize {
        key.len() + n + ENTRY_OVERHEAD
    }

    #[test]
    fn hit_miss_and_recency() {
        let c = single_shard(10_000);
        assert!(c.get("a").is_none());
        c.put("a".into(), val(10));
        c.put("b".into(), val(10));
        assert!(c.get("a").is_some());
        let shard = lock_shard(&c.shards[0]);
        assert_eq!(shard.keys_mru_to_lru(), vec!["a", "b"], "get must refresh recency");
    }

    #[test]
    fn evicts_in_lru_order() {
        // Capacity for exactly three 1-byte entries.
        let cap = 3 * charge("k1", 1);
        let c = single_shard(cap);
        c.put("k1".into(), val(1));
        c.put("k2".into(), val(1));
        c.put("k3".into(), val(1));
        // Touch k1 so k2 becomes the LRU.
        assert!(c.get("k1").is_some());
        c.put("k4".into(), val(1));
        assert!(c.get("k2").is_none(), "k2 was least recently used");
        assert!(c.get("k1").is_some());
        assert!(c.get("k3").is_some());
        assert!(c.get("k4").is_some());
        assert_eq!(c.stats().entries, 3);
    }

    #[test]
    fn capacity_accounting_is_exact() {
        let c = single_shard(100_000);
        c.put("alpha".into(), val(100));
        c.put("beta".into(), val(200));
        let expect = charge("alpha", 100) + charge("beta", 200);
        assert_eq!(c.stats().bytes, expect);
        // Replacement re-accounts instead of double-counting.
        c.put("alpha".into(), val(50));
        let expect = charge("alpha", 50) + charge("beta", 200);
        assert_eq!(c.stats().bytes, expect);
        assert_eq!(c.stats().entries, 2);
        c.clear();
        assert_eq!(c.stats().bytes, 0);
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn oversized_value_is_not_cached() {
        let c = single_shard(ENTRY_OVERHEAD * 4);
        c.put("big".into(), val(ENTRY_OVERHEAD * 8));
        assert!(c.get("big").is_none());
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn eviction_stops_at_capacity() {
        let cap = 5 * charge("k00", 10);
        let c = single_shard(cap);
        for i in 0..50 {
            c.put(format!("k{i:02}"), val(10));
            assert!(c.stats().bytes <= cap, "over capacity after insert {i}");
        }
        assert_eq!(c.stats().entries, 5);
        // The five newest survive.
        for i in 45..50 {
            assert!(c.get(&format!("k{i:02}")).is_some(), "k{i} should be resident");
        }
    }

    #[test]
    fn identity_change_invalidates() {
        let c = ResultCache::new(100_000, 4, 7);
        c.put("q".into(), val(10));
        c.ensure_identity(7);
        assert!(c.get("q").is_some(), "same identity keeps entries");
        c.ensure_identity(8);
        assert!(c.get("q").is_none(), "new identity must clear");
        assert_eq!(c.identity(), 8);
    }

    #[test]
    fn entries_are_pinned_to_their_identity() {
        let c = ResultCache::new(100_000, 1, 7);
        c.put_for("q".into(), val(10), 7);
        assert!(c.get_for("q", 7).is_some());
        assert!(c.get_for("q", 8).is_none(), "a new generation must never see old bytes");
        // The mismatched read leaves the entry alone: generation-7 readers
        // still in flight keep their hit.
        assert!(c.get_for("q", 7).is_some());
        // A late put from a superseded generation is invisible to readers on
        // the current one.
        c.put_for("late".into(), val(10), 6);
        assert!(c.get_for("late", 7).is_none());
        assert!(c.get_for("late", 6).is_some());
    }

    #[test]
    fn admission_rejects_one_hit_wonders() {
        // Capacity for exactly three entries; admission on.
        let cap = 3 * charge("hot1", 1);
        let c = ResultCache::with_admission(cap, 1, 1, true);
        c.put("hot1".into(), val(1));
        c.put("hot2".into(), val(1));
        c.put("hot3".into(), val(1));
        // Build frequency for the resident entries.
        for _ in 0..8 {
            assert!(c.get("hot1").is_some());
            assert!(c.get("hot2").is_some());
            assert!(c.get("hot3").is_some());
        }
        // A cold candidate must not displace a hot victim…
        c.put("cold".into(), val(1));
        assert!(c.get("cold").is_none(), "cold candidate should be rejected");
        assert!(c.get("hot1").is_some(), "hot entries survive the cold put");
        assert_eq!(c.stats().entries, 3);
        assert!(c.rejected_total() >= 1);
        // …but a candidate as frequent as the victim is admitted.
        for _ in 0..8 {
            let _ = c.get("warm");
        }
        c.put("warm".into(), val(1));
        assert!(c.get("warm").is_some(), "frequent candidate should be admitted");
        assert!(c.admitted_total() >= 1);
    }

    #[test]
    fn admission_disabled_is_pure_lru() {
        let cap = 2 * charge("k1", 1);
        let c = single_shard(cap);
        c.put("k1".into(), val(1));
        for _ in 0..8 {
            assert!(c.get("k1").is_some());
        }
        c.put("k2".into(), val(1));
        c.put("k3".into(), val(1));
        // Pure LRU always admits: k3 displaced k1 despite k1's frequency.
        assert!(c.get("k3").is_some());
        assert_eq!(c.admitted_total(), 0);
        assert_eq!(c.rejected_total(), 0);
    }

    #[test]
    fn sketch_estimates_and_ages() {
        let mut s = FrequencySketch::new(64);
        let hot = fnv1a(b"hot");
        let cold = fnv1a(b"cold");
        for _ in 0..10 {
            s.increment(hot);
        }
        assert!(s.estimate(hot) >= 5, "hot key should accumulate frequency");
        assert!(s.estimate(hot) > s.estimate(cold));
        let before = s.estimate(hot);
        s.halve();
        assert!(s.estimate(hot) <= before / 2 + 1, "halving ages counters");
    }

    #[test]
    fn shards_round_up_to_power_of_two() {
        assert_eq!(ResultCache::new(1000, 3, 0).shard_count(), 4);
        assert_eq!(ResultCache::new(1000, 0, 0).shard_count(), 1);
        // Keys spread across shards.
        let c = ResultCache::new(1_000_000, 8, 0);
        for i in 0..256 {
            c.put(format!("key-{i}"), val(8));
        }
        let occupied = c.shards.iter().filter(|s| !lock_shard(s).map.is_empty()).count();
        assert!(occupied >= 4, "FNV should spread keys over shards, got {occupied}");
    }
}
