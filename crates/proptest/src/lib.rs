//! Offline stand-in for `proptest`.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! generate-only property-testing harness that is source-compatible with the
//! subset of proptest the GKS test suites use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`, doc comments,
//!   and `pat in strategy` arguments),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * the [`Strategy`] combinators `prop_map`, `prop_filter`,
//!   `prop_recursive`, `boxed`, tuples, integer ranges, and regex-like
//!   string strategies (`".{0,200}"`, char classes),
//! * `collection::{vec, hash_set}`, `sample::select`, [`prop_oneof!`],
//!   [`strategy::Just`].
//!
//! Differences from the real crate: no shrinking (a failing case reports its
//! inputs but is not minimized), no persistence of regressions, and the RNG
//! stream is a fixed deterministic function of the test's module path and
//! name, so failures reproduce across runs without a `proptest-regressions`
//! file.

pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy};
pub use test_runner::{Config as ProptestConfig, TestCaseError, TestRng};

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use crate::strategy::{SizeRange, Strategy};
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy for `HashSet<S::Value>` with a target size drawn from
    /// `size`. Gives up on growing the set after a bounded number of
    /// duplicate draws, like the real crate.
    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// See [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            let mut out = HashSet::with_capacity(n);
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 50 + 100 {
                out.insert(self.element.new_value(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Sampling strategies (subset of `proptest::sample`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding a uniformly chosen element of `options`.
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select of empty options");
        Select { options }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }
}

/// Alias module so `use proptest::prelude::*` followed by
/// `prop::collection::vec(..)` works, as with the real crate.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything a test module normally imports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines deterministic property tests; see the crate docs for the
/// differences from the real `proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config $cfg; $($rest)*);
    };
    (@with_config $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {case}/{}: {e}",
                            stringify!($name),
                            config.cases,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Fallible assertion usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fallible equality assertion usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "{}: `{:?}` == `{:?}`", format!($($fmt)+), left, right
        );
    }};
}

/// Fallible inequality assertion usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "{}: `{:?}` != `{:?}`", format!($($fmt)+), left, right
        );
    }};
}

/// Uniform choice between several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::Strategy::boxed($strat)),+
        ])
    };
}
