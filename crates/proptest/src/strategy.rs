//! Generate-only [`Strategy`] trait and the combinators the GKS test
//! suites use. No shrinking: `new_value` draws one value per case.

use crate::test_runner::TestRng;
use std::sync::Arc;

/// A recipe for generating values of `Self::Value` (subset of
/// `proptest::strategy::Strategy`, without shrinking).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`, retrying a bounded number of times.
    fn prop_filter<R, F>(self, whence: R, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence: whence.into(), pred }
    }

    /// Builds recursive values: `self` is the leaf strategy and `f` wraps an
    /// inner strategy into the next level. The shim expands exactly `depth`
    /// levels, relying on the size bounds inside `f` for termination (the
    /// `desired_size`/`expected_branch_size` hints are accepted but unused).
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = f(strat).boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(move |rng| self.new_value(rng)))
    }
}

/// Type-erased, cheaply-cloneable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.whence);
    }
}

/// Uniform choice between boxed strategies (backs [`crate::prop_oneof!`]).
#[derive(Debug, Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! of zero strategies");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len())].new_value(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Size specification for collection strategies (subset of
/// `proptest::collection::SizeRange`).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl SizeRange {
    pub(crate) fn sample(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo + 1 {
            self.lo
        } else {
            self.lo + rng.below(self.hi - self.lo)
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

// ---------------------------------------------------------------------------
// Regex-like string strategies: `".{0,200}"`, `"[a-z0-9]{1,8}"`, literals.
// ---------------------------------------------------------------------------

/// A `&str` pattern acts as a strategy for `String`, supporting the subset
/// of regex syntax the test suites use: `.`, character classes with ranges
/// and `\`-escapes, literal characters, and `{m,n}` / `{n}` quantifiers.
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (atom, lo, hi) in &atoms {
            let n = if hi <= lo {
                *lo
            } else {
                lo + rng.below(hi - lo + 1)
            };
            for _ in 0..n {
                out.push(atom.generate(rng));
            }
        }
        out
    }
}

#[derive(Debug, Clone)]
enum Atom {
    /// `.` — any printable char with occasional control/unicode spice.
    Dot,
    /// `[...]` — one of the listed chars.
    Class(Vec<char>),
    /// A literal character.
    Literal(char),
}

impl Atom {
    fn generate(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Dot => {
                // Mostly printable ASCII; ~10% of draws pull from a spice
                // set of control and non-ASCII chars to stress parsers.
                const SPICE: &[char] =
                    &['\t', '\n', '\r', '\u{0}', 'é', 'ß', '\u{4e2d}', '\u{1F600}', '\u{7f}'];
                if rng.below(10) == 0 {
                    SPICE[rng.below(SPICE.len())]
                } else {
                    char::from(b' ' + rng.below((b'~' - b' ' + 1) as usize) as u8)
                }
            }
            Atom::Class(chars) => chars[rng.below(chars.len())],
            Atom::Literal(c) => *c,
        }
    }
}

/// Parses a pattern into `(atom, min_reps, max_reps)` triples.
fn parse_pattern(pattern: &str) -> Vec<(Atom, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Dot
            }
            '[' => {
                i += 1;
                let mut members = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        unescape(chars.get(i).copied().unwrap_or('\\'))
                    } else {
                        chars[i]
                    };
                    // A `-` between two members denotes a range.
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let hi = if chars[i + 2] == '\\' {
                            i += 1;
                            unescape(chars.get(i + 2).copied().unwrap_or('\\'))
                        } else {
                            chars[i + 2]
                        };
                        for m in c..=hi {
                            members.push(m);
                        }
                        i += 3;
                    } else {
                        members.push(c);
                        i += 1;
                    }
                }
                i += 1; // closing ']'
                assert!(!members.is_empty(), "empty character class in {pattern:?}");
                Atom::Class(members)
            }
            '\\' => {
                i += 1;
                let c = unescape(chars.get(i).copied().unwrap_or('\\'));
                i += 1;
                Atom::Literal(c)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional {m,n} / {n} quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad quantifier"),
                    hi.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        } else if i < chars.len() && chars[i] == '*' {
            i += 1;
            (0, 16)
        } else if i < chars.len() && chars[i] == '+' {
            i += 1;
            (1, 16)
        } else if i < chars.len() && chars[i] == '?' {
            i += 1;
            (0, 1)
        } else {
            (1, 1)
        };
        atoms.push((atom, lo, hi));
    }
    atoms
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\u{0}',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::deterministic("ranges_and_tuples");
        let strat = (0u32..4, 10usize..=12);
        for _ in 0..200 {
            let (a, b) = strat.new_value(&mut rng);
            assert!(a < 4);
            assert!((10..=12).contains(&b));
        }
    }

    #[test]
    fn map_filter_recursive() {
        let mut rng = TestRng::deterministic("map_filter_recursive");
        let strat = (1u32..10).prop_map(|v| v * 2).prop_filter("even and > 2", |v| *v > 2);
        for _ in 0..100 {
            let v = strat.new_value(&mut rng);
            assert!(v % 2 == 0 && v > 2);
        }

        #[derive(Debug)]
        enum T {
            Leaf,
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        let tree = Just(()).prop_map(|_| T::Leaf).prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(T::Node)
        });
        for _ in 0..50 {
            assert!(depth(&tree.new_value(&mut rng)) <= 3);
        }
    }

    #[test]
    fn string_patterns() {
        let mut rng = TestRng::deterministic("string_patterns");
        for _ in 0..200 {
            let s = ".{0,200}".new_value(&mut rng);
            assert!(s.chars().count() <= 200);
            let t = "[a-c0-2]{1,5}".new_value(&mut rng);
            assert!((1..=5).contains(&t.chars().count()));
            assert!(t.chars().all(|c| "abc012".contains(c)));
        }
    }

    #[test]
    fn class_with_escapes() {
        let mut rng = TestRng::deterministic("class_with_escapes");
        for _ in 0..200 {
            let s = r#"[<>/="'a-z !\[\]\-?&;#x0-9]{0,20}"#.new_value(&mut rng);
            for c in s.chars() {
                assert!(
                    "<>/=\"' !?&;#x-[]".contains(c) || c.is_ascii_lowercase() || c.is_ascii_digit(),
                    "unexpected char {c:?}"
                );
            }
        }
    }
}
