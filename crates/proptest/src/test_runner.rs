//! Config, error type, and the deterministic RNG behind the shim.

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// A failed property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Deterministic xoshiro256++ RNG. Seeded from the test's fully qualified
/// name so each test gets an independent but reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the stream from an arbitrary string (FNV-1a into SplitMix64).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3])).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "TestRng::below(0)");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
