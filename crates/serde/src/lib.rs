//! Offline stand-in for the `serde` facade crate.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal shim: the `Serialize` / `Deserialize` *traits* exist as empty
//! markers and the derive macros expand to nothing. No code in this
//! workspace performs actual serde serialization (persistence uses the
//! hand-rolled binary codec in `gks-index::persist`), so the markers are
//! sufficient for every `#[derive(Serialize, Deserialize)]` in the tree.
//!
//! If real serialization is ever needed, replace this crate with the real
//! `serde` in `[workspace.dependencies]` — the API subset here is
//! source-compatible.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (lifetime elided: the shim
/// never drives deserialization, so the `'de` parameter is dropped).
pub trait Deserialize {}

impl<T: ?Sized> Serialize for T {}
impl<T: ?Sized> Deserialize for T {}

// The derive macros live in their own proc-macro crate, re-exported here
// exactly like the real `serde` does with `serde_derive`.
pub use serde_derive::{Deserialize, Serialize};
