//! Offline stand-in for `rand` 0.8.
//!
//! The build container has no crates.io access, so the workspace vendors the
//! subset of the `rand` API that `gks-datagen` and `gks-bench` use:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and float
//! ranges, and [`Rng::gen_bool`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic for a given seed on every platform, which is
//! all the synthetic-corpus generators require (they promise "same seed,
//! same corpus", not any particular stream).
//!
//! Note: streams differ from the real `rand::rngs::StdRng` (ChaCha12), so
//! swapping the real crate back in would change generated corpora. Every
//! consumer in this workspace treats corpora as opaque given a seed, so only
//! golden-value tests of specific generated text would notice.

/// Construction of a seeded generator (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256++ core state.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3])).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed, as recommended by the xoshiro
        // authors for filling initial state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Xoshiro256 { s: [next(), next(), next(), next()] }
    }
}

/// Named RNGs (subset of `rand::rngs`).
pub mod rngs {
    /// Stand-in for `rand::rngs::StdRng`; see the crate docs for the caveat
    /// that the stream differs from the real ChaCha12-based StdRng.
    pub type StdRng = super::Xoshiro256;
}

/// A range that [`Rng::gen_range`] can sample uniformly from (subset of
/// `rand::distributions::uniform::SampleRange`). Generic over the output
/// type, matching the real crate's shape so integer-literal inference works.
pub trait SampleRange<T> {
    /// Draws one uniform sample using `rng`.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

/// Raw 64-bit output, the only primitive the samplers need.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        Xoshiro256::next_u64(self)
    }
}

/// Types uniformly sampleable from a range (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut impl RngCore) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut impl RngCore) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut impl RngCore) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut impl RngCore) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open(lo: Self, hi: Self, rng: &mut impl RngCore) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut impl RngCore) -> Self {
        Self::sample_half_open(lo, hi + f64::EPSILON, rng)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open(lo: Self, hi: Self, rng: &mut impl RngCore) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        lo + unit * (hi - lo)
    }
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut impl RngCore) -> Self {
        Self::sample_half_open(lo, hi + f32::EPSILON, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Sampling helpers (subset of `rand::Rng`), blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..=9);
            assert!((3..=9).contains(&v));
            let f = rng.gen_range(-1.0..4.0);
            assert!((-1.0..4.0).contains(&f));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
