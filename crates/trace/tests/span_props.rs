//! Property tests for span nesting: arbitrary open/close sequences must
//! produce a well-formed tree that mirrors the execution shape exactly, and
//! the global per-kind aggregates must advance by precisely the durations
//! recorded in the emitted trace.
//!
//! The tracer's sinks are process-global, so every property here serializes
//! on one mutex and runs in this dedicated integration binary — no other
//! test shares the process, which makes aggregate *deltas* exact.

use gks_trace::{histogram, recent_traces, reset, set_enabled, span, SpanKind, SpanNode};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// A pure tree of span kinds — the shape we will execute and then expect
/// back from the tracer.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Shape {
    kind: SpanKind,
    children: Vec<Shape>,
}

fn arb_kind() -> impl Strategy<Value = SpanKind> {
    prop::sample::select(SpanKind::ALL.to_vec())
}

/// Arbitrary span trees up to depth 4 with ≤ 3 children per node. Kinds may
/// repeat anywhere (the tracer places no uniqueness constraints), which is
/// exactly what makes the aggregate-equality property interesting.
fn arb_shape() -> BoxedStrategy<Shape> {
    arb_kind().prop_map(|kind| Shape { kind, children: Vec::new() }).prop_recursive(
        4,
        24,
        3,
        |inner| {
            (arb_kind(), prop::collection::vec(inner, 0..3))
                .prop_map(|(kind, children)| Shape { kind, children })
        },
    )
}

/// Executes `shape` as nested RAII spans, strictly LIFO (children open and
/// close inside their parent's lifetime, in order).
fn execute(shape: &Shape) {
    let _guard = span(shape.kind);
    for child in &shape.children {
        execute(child);
    }
}

/// Does the completed node tree have the same kinds-and-structure as the
/// executed shape?
fn matches(node: &SpanNode, shape: &Shape) -> bool {
    node.kind == shape.kind
        && node.children.len() == shape.children.len()
        && node.children.iter().zip(&shape.children).all(|(n, s)| matches(n, s))
}

/// Spans of `kind` in the shape (what the aggregate count must grow by).
fn kind_count(shape: &Shape, kind: SpanKind) -> u64 {
    let own = u64::from(shape.kind == kind);
    own + shape.children.iter().map(|c| kind_count(c, kind)).sum::<u64>()
}

/// Child spans run inside their parent, so every node's duration must be at
/// least the sum of its children's durations (monotonic clock).
fn durations_nest(node: &SpanNode) -> bool {
    let child_sum: u64 = node.children.iter().map(|c| c.micros).sum();
    node.micros >= child_sum && node.children.iter().all(durations_nest)
}

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn tracer_session() -> MutexGuard<'static, ()> {
    let guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    reset();
    set_enabled(true);
    guard
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// One executed shape → one completed trace whose tree is structurally
    /// identical, with nesting-consistent durations and offsets.
    #[test]
    fn trace_tree_mirrors_execution(shape in arb_shape()) {
        let _session = tracer_session();
        execute(&shape);
        set_enabled(false);
        let traces = recent_traces(usize::MAX);
        prop_assert_eq!(traces.len(), 1, "exactly one root span → one trace");
        let root = &traces[0].root;
        prop_assert!(matches(root, &shape), "tree shape {root:?} != executed {shape:?}");
        prop_assert!(durations_nest(root), "child durations exceed parent in {root:?}");
        prop_assert_eq!(root.offset_micros, 0, "root starts at offset 0");
    }

    /// The global per-kind aggregates advance by exactly the durations the
    /// trace records: count delta = number of spans of that kind executed,
    /// sum delta = sum of those spans' durations in the emitted tree.
    #[test]
    fn aggregates_equal_trace_sums(shapes in prop::collection::vec(arb_shape(), 1..4)) {
        let _session = tracer_session();
        let before: Vec<(u64, u64)> =
            SpanKind::ALL.iter().map(|&k| (histogram(k).count(), histogram(k).sum())).collect();
        for shape in &shapes {
            execute(shape);
        }
        set_enabled(false);
        let traces = recent_traces(usize::MAX);
        prop_assert_eq!(traces.len(), shapes.len());
        for (i, &kind) in SpanKind::ALL.iter().enumerate() {
            let count_delta = histogram(kind).count() - before[i].0;
            let sum_delta = histogram(kind).sum() - before[i].1;
            let expected_count: u64 = shapes.iter().map(|s| kind_count(s, kind)).sum();
            let expected_sum: u64 = traces.iter().map(|t| t.root.kind_micros(kind)).sum();
            prop_assert_eq!(count_delta, expected_count, "count delta for {}", kind.label());
            prop_assert_eq!(sum_delta, expected_sum, "sum delta for {}", kind.label());
        }
    }

    /// Spans opened while tracing is disabled leave no trace even when other
    /// spans are being recorded around them.
    #[test]
    fn disabled_spans_are_invisible(shape in arb_shape()) {
        let _session = tracer_session();
        set_enabled(false);
        execute(&shape);
        prop_assert!(recent_traces(usize::MAX).is_empty());
        for kind in SpanKind::ALL {
            prop_assert_eq!(histogram(kind).count(), 0);
        }
    }
}
