//! Exercises the debug-build lock-order registry end to end: consistent
//! orders stay quiet, an injected inversion panics with both stacks, and
//! the condvar handoff in [`Tracked::wait`] releases the registry entry.
//!
//! All tests in this file run in one process against one global registry,
//! so every test uses its own lock names — edges recorded by one test must
//! not be able to interact with another's.

#![cfg(debug_assertions)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use gks_trace::lockorder::{acquired, acquisition_count, observed_edge_count, track};

#[test]
fn consistent_order_is_quiet() {
    let before = acquisition_count();
    for _ in 0..3 {
        let outer = acquired("lo-quiet.outer");
        let inner = acquired("lo-quiet.inner");
        drop(inner);
        drop(outer);
    }
    assert!(acquisition_count() >= before + 6, "acquisitions must be counted");
    assert!(observed_edge_count() >= 1, "the outer->inner pair must be on record");
}

#[test]
fn injected_inversion_panics_with_both_stacks() {
    // Establish a -> b on record.
    {
        let a = acquired("lo-inv.a");
        let b = acquired("lo-inv.b");
        drop(b);
        drop(a);
    }
    // Now take them in the reverse order: the registry must refuse.
    let result = catch_unwind(AssertUnwindSafe(|| {
        let b = acquired("lo-inv.b");
        let a = acquired("lo-inv.a");
        drop(a);
        drop(b);
    }));
    let panic = result.expect_err("reversed acquisition order must panic");
    let message = panic
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .expect("panic payload must be a string");
    assert!(message.contains("lock-order inversion"), "got: {message}");
    assert!(message.contains("lo-inv.a") && message.contains("lo-inv.b"), "got: {message}");
    assert!(
        message.contains("this thread's stack") && message.contains("first observed with stack"),
        "report must carry both acquisition stacks; got: {message}"
    );
}

#[test]
fn transitive_inversion_is_caught() {
    // a -> b and b -> c on record; then c ... a must close the cycle even
    // though the pair (c, a) was never directly observed before.
    {
        let a = acquired("lo-trans.a");
        let b = acquired("lo-trans.b");
        drop(b);
        drop(a);
    }
    {
        let b = acquired("lo-trans.b");
        let c = acquired("lo-trans.c");
        drop(c);
        drop(b);
    }
    let result = catch_unwind(AssertUnwindSafe(|| {
        let c = acquired("lo-trans.c");
        let a = acquired("lo-trans.a");
        drop(a);
        drop(c);
    }));
    let message = result
        .expect_err("transitively inverted order must panic")
        .downcast_ref::<String>()
        .cloned()
        .expect("panic payload must be a String");
    assert!(message.contains("cycle:"), "report must show the cycle path; got: {message}");
    assert!(message.contains("lo-trans.b"), "cycle must pass through b; got: {message}");
}

#[test]
fn wait_releases_the_registry_entry_while_parked() {
    let pair = Arc::new((Mutex::new(false), Condvar::new()));
    let waiter = {
        let pair = Arc::clone(&pair);
        std::thread::spawn(move || {
            let (m, cv) = &*pair;
            let mut g = track("lo-wait.m", m.lock().expect("fresh mutex"));
            while !**g {
                g = g.wait(cv);
            }
            assert_eq!(g.lock_name(), "lo-wait.m", "identity survives the handoff");
        })
    };
    std::thread::sleep(Duration::from_millis(20));
    {
        let (m, cv) = &*pair;
        let mut g = track("lo-wait.m", m.lock().expect("waiter is parked, not holding"));
        **g = true;
        drop(g);
        cv.notify_one();
    }
    waiter.join().expect("waiter must wake and exit cleanly");
}

#[test]
fn instrumented_server_locks_register_real_acquisitions() {
    // Drive the actual instrumented code paths rather than raw names:
    // the trace ring and a server queue both go through track().
    let before = acquisition_count();
    gks_trace::reset();
    let _ = gks_trace::recent_traces(4);
    assert!(
        acquisition_count() > before,
        "trace ring operations must register with the lock-order registry"
    );
}
