//! A lock-free fixed-bucket latency histogram over microseconds.
//!
//! Shared by the per-span-kind aggregates in this crate and by the server's
//! request-latency metrics (`gks-server` re-uses it so `/metrics` reports
//! engine phases and end-to-end latency with identical bucket semantics).
//! All counters are `AtomicU64` with relaxed ordering — they are statistics,
//! not synchronization — so recording adds nanoseconds to the hot path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bounds (µs) of the histogram buckets; a final overflow bucket
/// catches everything slower than the last bound. The sub-50µs bounds exist
/// for the engine-phase aggregates — individual phases of a warm query run
/// in single-digit microseconds, which request-scale buckets would flatten
/// into one bin.
pub const LATENCY_BOUNDS_MICROS: [u64; 18] = [
    5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
    500_000, 1_000_000, 2_500_000,
];

/// Fixed-bucket latency histogram. Quantiles are derived from cumulative
/// bucket counts: the reported value is the upper bound of the bucket
/// containing the target rank, i.e. an over-estimate by at most one bucket
/// width.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; LATENCY_BOUNDS_MICROS.len() + 1],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// An empty histogram (const so it can back `static` aggregates).
    pub const fn new() -> Histogram {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; LATENCY_BOUNDS_MICROS.len() + 1],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, micros: u64) {
        let idx = LATENCY_BOUNDS_MICROS
            .iter()
            .position(|&bound| micros <= bound)
            .unwrap_or(LATENCY_BOUNDS_MICROS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(micros, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (µs).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (0 < q ≤ 1) as the upper bound of the bucket holding
    /// the target rank. Observations past the last bound report that bound
    /// (the histogram cannot resolve further). Returns `None` with no data —
    /// callers must render an explicit sentinel rather than a bucket bound
    /// (the `/metrics` exposition emits `-1`).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= target {
                return Some(
                    LATENCY_BOUNDS_MICROS
                        .get(i)
                        .copied()
                        .unwrap_or(LATENCY_BOUNDS_MICROS[LATENCY_BOUNDS_MICROS.len() - 1]),
                );
            }
        }
        Some(LATENCY_BOUNDS_MICROS[LATENCY_BOUNDS_MICROS.len() - 1])
    }

    /// Zeroes every counter (used by benchmarks between measurement runs;
    /// concurrent recorders may land observations mid-reset, which is
    /// acceptable for statistics).
    pub fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_bracket_observations() {
        let h = Histogram::new();
        for micros in [10, 20, 30, 40, 60, 80, 120, 300, 700, 1500] {
            h.record(micros);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 2860);
        // p50 → 5th observation (60µs) lands in the ≤100 bucket.
        assert_eq!(h.quantile(0.5), Some(100));
        // p99 → 10th observation (1500µs) lands in the ≤2500 bucket.
        assert_eq!(h.quantile(0.99), Some(2_500));
        assert_eq!(h.quantile(0.1), Some(10));
    }

    #[test]
    fn overflow_reports_last_bound() {
        let h = Histogram::new();
        h.record(10_000_000);
        assert_eq!(h.quantile(0.5), Some(2_500_000));
    }

    #[test]
    fn empty_histogram_has_no_quantile() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None, "zero samples must not report a bucket bound");
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.record(42);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.quantile(0.5), None);
    }
}
