//! A lock-free fixed-bucket latency histogram over microseconds.
//!
//! Shared by the per-span-kind aggregates in this crate and by the server's
//! request-latency metrics (`gks-server` re-uses it so `/metrics` reports
//! engine phases and end-to-end latency with identical bucket semantics).
//! All counters are `AtomicU64` with relaxed ordering — they are statistics,
//! not synchronization — so recording adds nanoseconds to the hot path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bounds (µs) of the histogram buckets; a final overflow bucket
/// catches everything slower than the last bound. The sub-50µs bounds exist
/// for the engine-phase aggregates — individual phases of a warm query run
/// in single-digit microseconds, which request-scale buckets would flatten
/// into one bin.
pub const LATENCY_BOUNDS_MICROS: [u64; 18] = [
    5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
    500_000, 1_000_000, 2_500_000,
];

/// Fixed-bucket latency histogram. Quantiles are derived from cumulative
/// bucket counts: the reported value is the upper bound of the bucket
/// containing the target rank, i.e. an over-estimate by at most one bucket
/// width.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; LATENCY_BOUNDS_MICROS.len() + 1],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// An empty histogram (const so it can back `static` aggregates).
    pub const fn new() -> Histogram {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; LATENCY_BOUNDS_MICROS.len() + 1],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, micros: u64) {
        let idx = LATENCY_BOUNDS_MICROS
            .iter()
            .position(|&bound| micros <= bound)
            .unwrap_or(LATENCY_BOUNDS_MICROS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        // The sum is the one counter extreme observations can overflow;
        // saturate rather than wrap so long-lived aggregates stay ordered.
        saturating_fetch_add(&self.sum, micros);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds `other` into `self`, bucket by bucket — merging per-thread (or
    /// per-shard) histograms into one aggregate view. Both histograms may be
    /// live; each counter is read once with relaxed ordering, so the merge
    /// is a statistical snapshot, not a linearized one. All additions
    /// saturate.
    pub fn merge(&self, other: &Histogram) {
        for (into, from) in self.buckets.iter().zip(&other.buckets) {
            saturating_fetch_add(into, from.load(Ordering::Relaxed));
        }
        saturating_fetch_add(&self.sum, other.sum());
        saturating_fetch_add(&self.count, other.count());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (µs).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (0 < q ≤ 1) as the upper bound of the bucket holding
    /// the target rank. Observations past the last bound report that bound
    /// (the histogram cannot resolve further). Returns `None` with no data —
    /// callers must render an explicit sentinel rather than a bucket bound
    /// (the `/metrics` exposition emits `-1`).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= target {
                return Some(
                    LATENCY_BOUNDS_MICROS
                        .get(i)
                        .copied()
                        .unwrap_or(LATENCY_BOUNDS_MICROS[LATENCY_BOUNDS_MICROS.len() - 1]),
                );
            }
        }
        Some(LATENCY_BOUNDS_MICROS[LATENCY_BOUNDS_MICROS.len() - 1])
    }

    /// Zeroes every counter (used by benchmarks between measurement runs;
    /// concurrent recorders may land observations mid-reset, which is
    /// acceptable for statistics).
    pub fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// `cell += v`, saturating at `u64::MAX` instead of wrapping. A CAS loop,
/// but contention-free in practice (statistics counters, relaxed ordering).
fn saturating_fetch_add(cell: &AtomicU64, v: u64) {
    let _ =
        cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| Some(cur.saturating_add(v)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_bracket_observations() {
        let h = Histogram::new();
        for micros in [10, 20, 30, 40, 60, 80, 120, 300, 700, 1500] {
            h.record(micros);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 2860);
        // p50 → 5th observation (60µs) lands in the ≤100 bucket.
        assert_eq!(h.quantile(0.5), Some(100));
        // p99 → 10th observation (1500µs) lands in the ≤2500 bucket.
        assert_eq!(h.quantile(0.99), Some(2_500));
        assert_eq!(h.quantile(0.1), Some(10));
    }

    #[test]
    fn overflow_reports_last_bound() {
        let h = Histogram::new();
        h.record(10_000_000);
        assert_eq!(h.quantile(0.5), Some(2_500_000));
    }

    #[test]
    fn empty_histogram_has_no_quantile() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None, "zero samples must not report a bucket bound");
    }

    #[test]
    fn boundary_values_land_in_their_bucket() {
        // A value exactly on a bound belongs to that bucket (`<=`), so a
        // one-observation histogram reports the bound itself at any
        // quantile; one past the bound falls into the next bucket.
        for &bound in &LATENCY_BOUNDS_MICROS {
            let h = Histogram::new();
            h.record(bound);
            assert_eq!(h.quantile(0.5), Some(bound), "on-bound value for {bound}");
            assert_eq!(h.quantile(1.0), Some(bound));
            let h2 = Histogram::new();
            h2.record(bound + 1);
            let next = LATENCY_BOUNDS_MICROS
                .iter()
                .copied()
                .find(|&b| b > bound)
                .unwrap_or(LATENCY_BOUNDS_MICROS[LATENCY_BOUNDS_MICROS.len() - 1]);
            assert_eq!(h2.quantile(0.5), Some(next), "past-bound value for {bound}");
        }
        // Zero belongs to the very first bucket.
        let h = Histogram::new();
        h.record(0);
        assert_eq!(h.quantile(0.5), Some(LATENCY_BOUNDS_MICROS[0]));
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX, "sum pins at the ceiling");
        assert_eq!(h.count(), 2, "counts are unaffected");
        assert_eq!(h.quantile(0.5), Some(2_500_000), "overflow bucket still reports");
        // Merging a saturated histogram saturates too.
        let other = Histogram::new();
        other.record(1);
        other.merge(&h);
        assert_eq!(other.sum(), u64::MAX);
        assert_eq!(other.count(), 3);
    }

    #[test]
    fn merge_combines_per_thread_histograms() {
        let a = Histogram::new();
        let b = Histogram::new();
        let combined = Histogram::new();
        for micros in [10, 20, 30, 40, 60] {
            a.record(micros);
            combined.record(micros);
        }
        for micros in [80, 120, 300, 700, 1500] {
            b.record(micros);
            combined.record(micros);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.sum(), combined.sum());
        for q in [0.1, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(a.quantile(q), combined.quantile(q), "q={q}");
        }
        // Merging an empty histogram is the identity.
        let before = (a.count(), a.sum(), a.quantile(0.5));
        a.merge(&Histogram::new());
        assert_eq!((a.count(), a.sum(), a.quantile(0.5)), before);
        // Merging *into* an empty histogram copies the distribution.
        let fresh = Histogram::new();
        fresh.merge(&combined);
        assert_eq!(fresh.count(), combined.count());
        assert_eq!(fresh.quantile(0.99), combined.quantile(0.99));
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.record(42);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.quantile(0.5), None);
    }
}
