//! # gks-trace — end-to-end query tracing for the GKS pipeline
//!
//! The paper's evaluation (§7) attributes latency to distinct pipeline
//! stages — postings lookup, the sweep that finds nodes with ≥ s keywords,
//! potential-flow ranking, DI mining. This crate makes that attribution a
//! runtime facility instead of a one-off experiment: lightweight **spans**
//! wrap each stage, nest into per-query trees via a thread-local stack, and
//! feed two global sinks:
//!
//! * **per-kind aggregation** — a lock-free [`Histogram`] per [`SpanKind`],
//!   from which `/metrics` derives per-phase latency percentiles;
//! * **a bounded ring buffer** of recent completed traces, dumped by
//!   `GET /debug/traces` and mined by the slow-query log.
//!
//! Design constraints, in order:
//!
//! 1. **Near-zero cost when disabled.** [`span`] checks one relaxed atomic;
//!    when tracing is off it only captures the start instant (which callers
//!    need anyway for their own counters, e.g. `SearchTrace`) and touches no
//!    shared or thread-local state. Drop is a branch.
//! 2. **No locks on the hot path when enabled.** Open/close touch only the
//!    thread-local stack and relaxed atomics; the ring-buffer mutex is taken
//!    once per *completed trace* (i.e. once per query), not per span.
//! 3. **Std-only.** No external crates; the workspace builds offline.
//!
//! Spans are strictly RAII and thread-local: a [`Span`] must be dropped on
//! the thread that opened it (Rust's scoping makes this automatic for the
//! engine's straight-line pipeline). When the outermost span of a thread
//! closes, the assembled tree becomes a [`CompletedTrace`]: it is pushed to
//! the ring, and stashed in a thread-local slot that [`take_last_trace`]
//! drains — that is how the server attaches a `Server-Timing` header and a
//! slow-query log entry to the request that produced the trace.

pub mod hist;
pub mod lockorder;
pub mod tree;

pub use hist::{Histogram, LATENCY_BOUNDS_MICROS};
pub use tree::{CompletedTrace, SpanNode};

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The pipeline stages the tracer distinguishes. Labels (see
/// [`SpanKind::label`]) are part of the wire format: `/metrics` phase
/// labels, `/debug/traces` JSON, `Server-Timing` entries, and the query log
/// all use them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One whole request as the server sees it (root span per query).
    Request,
    /// Opening a persisted index (`GksIndex::load`).
    IndexOpen,
    /// One engine search call end to end (root when no request wraps it).
    Search,
    /// Query parsing and keyword normalization.
    Parse,
    /// Posting-list fetch plus the k-way merge into `SL`.
    Postings,
    /// Sliding-window candidates, LCE derivation, and the statistics sweep.
    Sweep,
    /// Hit assembly, SLCA-style pruning, and the final sort.
    Rank,
    /// Deeper-Analytical-Insight mining over a response.
    Di,
    /// Response-body serialization (the wire JSON rendering).
    Render,
    /// Parallel fan-out of one search across index shards; carries one
    /// child subtree per shard (captured on the shard's worker thread).
    Scatter,
    /// Merging per-shard answers into one ranked response: re-sort by
    /// potential flow, Dewey tie-break, top-k re-truncation, DI union.
    Gather,
    /// Building and committing one incremental delta: corpus scan, change
    /// detection, delta-shard build, manifest epoch bump.
    DeltaBuild,
    /// Folding accumulated deltas and tombstones back into base shards.
    Compaction,
}

impl SpanKind {
    /// Every kind, in display order.
    pub const ALL: [SpanKind; 13] = [
        SpanKind::Request,
        SpanKind::IndexOpen,
        SpanKind::Search,
        SpanKind::Parse,
        SpanKind::Postings,
        SpanKind::Sweep,
        SpanKind::Rank,
        SpanKind::Di,
        SpanKind::Render,
        SpanKind::Scatter,
        SpanKind::Gather,
        SpanKind::DeltaBuild,
        SpanKind::Compaction,
    ];

    /// The engine phases the acceptance criteria require `/metrics` to
    /// expose percentiles for (a subset of [`SpanKind::ALL`]). `scatter`
    /// and `gather` only occur on sharded indexes; unsharded ones keep a
    /// zero-sample (`-1` sentinel) quantile for them.
    pub const PHASES: [SpanKind; 7] = [
        SpanKind::Parse,
        SpanKind::Postings,
        SpanKind::Sweep,
        SpanKind::Rank,
        SpanKind::Di,
        SpanKind::Scatter,
        SpanKind::Gather,
    ];

    /// The stable wire label of this kind.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::IndexOpen => "index_open",
            SpanKind::Search => "search",
            SpanKind::Parse => "parse",
            SpanKind::Postings => "postings",
            SpanKind::Sweep => "sweep",
            SpanKind::Rank => "rank",
            SpanKind::Di => "di",
            SpanKind::Render => "render",
            SpanKind::Scatter => "scatter",
            SpanKind::Gather => "gather",
            SpanKind::DeltaBuild => "delta_build",
            SpanKind::Compaction => "compaction",
        }
    }

    /// The inverse of [`SpanKind::label`].
    pub fn from_label(label: &str) -> Option<SpanKind> {
        SpanKind::ALL.iter().copied().find(|k| k.label() == label)
    }

    fn index(self) -> usize {
        match self {
            SpanKind::Request => 0,
            SpanKind::IndexOpen => 1,
            SpanKind::Search => 2,
            SpanKind::Parse => 3,
            SpanKind::Postings => 4,
            SpanKind::Sweep => 5,
            SpanKind::Rank => 6,
            SpanKind::Di => 7,
            SpanKind::Render => 8,
            SpanKind::Scatter => 9,
            SpanKind::Gather => 10,
            SpanKind::DeltaBuild => 11,
            SpanKind::Compaction => 12,
        }
    }
}

const KIND_COUNT: usize = SpanKind::ALL.len();

/// Default capacity of the completed-trace ring buffer.
pub const DEFAULT_RING_CAPACITY: usize = 128;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(0);
static RING_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);
static RING: Mutex<VecDeque<CompletedTrace>> = Mutex::new(VecDeque::new());

/// Head-sampling rate: a root span is *sampled* when its arrival number is a
/// multiple of this value (1 = keep every trace). Children inherit the root's
/// decision, so a trace is always kept or dropped whole.
static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(1);
/// Arrival counter for root spans, used only for the sampling decision.
static SAMPLE_SEQ: AtomicU64 = AtomicU64::new(0);

struct SpanCounts {
    by_kind: [AtomicU64; KIND_COUNT],
}

/// Per-kind span totals, bumped on every span close while tracing is enabled
/// — including spans in sampled-out traces. This is what keeps aggregate
/// request accounting exact under head-sampling.
static SPAN_COUNTS: SpanCounts = {
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);
    SpanCounts { by_kind: [ZERO; KIND_COUNT] }
};

struct Aggregates {
    by_kind: [Histogram; KIND_COUNT],
}

static AGGREGATES: Aggregates = {
    #[allow(clippy::declare_interior_mutable_const)]
    const EMPTY: Histogram = Histogram::new();
    Aggregates { by_kind: [EMPTY; KIND_COUNT] }
};

struct OpenSpan {
    kind: SpanKind,
    started: Instant,
    offset_micros: u64,
    children: Vec<SpanNode>,
    /// Whether this span's trace survives head-sampling. Decided once at the
    /// root and inherited by every descendant.
    sampled: bool,
    label: Option<Box<str>>,
    /// Work counters annotated while the span was open (see [`annotate`]).
    counters: Vec<(&'static str, u64)>,
}

thread_local! {
    static STACK: RefCell<Vec<OpenSpan>> = const { RefCell::new(Vec::new()) };
    static LAST: RefCell<Option<CompletedTrace>> = const { RefCell::new(None) };
}

/// Turns span recording on or off process-wide. Spans already open keep
/// recording; spans opened while disabled stay no-ops even if tracing is
/// re-enabled before they close.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span recording is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Sets head-sampling to keep 1-in-`every` root spans (0 and 1 both mean
/// "keep everything"). Sampled-out traces skip the histogram, ring-buffer,
/// and last-trace sinks, but every span still bumps its [`span_count`] — so
/// aggregate counts remain exact while per-trace detail is thinned.
pub fn set_sample_every(every: u64) {
    SAMPLE_EVERY.store(every.max(1), Ordering::Relaxed);
}

/// The current head-sampling rate (1 = keep every trace).
pub fn sample_every() -> u64 {
    SAMPLE_EVERY.load(Ordering::Relaxed)
}

/// Total spans of `kind` closed while tracing was enabled, including spans
/// whose trace was sampled out. Cleared by [`reset`].
pub fn span_count(kind: SpanKind) -> u64 {
    SPAN_COUNTS.by_kind[kind.index()].load(Ordering::Relaxed)
}

/// Sets the capacity of the completed-trace ring buffer (minimum 1). The
/// ring is trimmed immediately if it is over the new capacity.
pub fn set_ring_capacity(capacity: usize) {
    let capacity = capacity.max(1);
    RING_CAPACITY.store(capacity, Ordering::Relaxed);
    let mut ring = lock_ring();
    while ring.len() > capacity {
        ring.pop_front();
    }
}

/// The global aggregate histogram for one span kind.
pub fn histogram(kind: SpanKind) -> &'static Histogram {
    &AGGREGATES.by_kind[kind.index()]
}

/// The most recent `n` completed traces, oldest first.
pub fn recent_traces(n: usize) -> Vec<CompletedTrace> {
    let ring = lock_ring();
    let skip = ring.len().saturating_sub(n);
    ring.iter().skip(skip).cloned().collect()
}

/// Takes the last trace completed **on this thread**, if any. The slot is
/// cleared both by this call and whenever a new root span opens, so a
/// request handler that opens a root span and drains this afterwards cannot
/// observe a stale trace from an earlier request on the same worker thread.
pub fn take_last_trace() -> Option<CompletedTrace> {
    LAST.with(|last| last.borrow_mut().take())
}

/// Clears every global sink: aggregates, span counts, ring buffer, and the
/// sequence and sampling counters (the sampling *rate* is kept). Benchmarks
/// call this between measurement runs so per-phase percentiles describe
/// exactly one run. Thread-local stacks are untouched (spans still open will
/// complete normally).
pub fn reset() {
    for kind in SpanKind::ALL {
        histogram(kind).reset();
    }
    for counter in &SPAN_COUNTS.by_kind {
        counter.store(0, Ordering::Relaxed);
    }
    lock_ring().clear();
    SEQ.store(0, Ordering::Relaxed);
    SAMPLE_SEQ.store(0, Ordering::Relaxed);
}

fn lock_ring() -> lockorder::Tracked<std::sync::MutexGuard<'static, VecDeque<CompletedTrace>>> {
    // A panic while holding this mutex can only come from allocation
    // failure; recover the data rather than poisoning every later query.
    lockorder::track(
        "trace/lib.RING",
        RING.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
    )
}

fn micros_u64(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// An open span. Created by [`span`]; closing happens on drop. The start
/// instant is captured even when tracing is disabled so callers can reuse it
/// for their own counters via [`Span::elapsed_micros`] — this is what lets
/// `SearchTrace` keep its per-stage timings without a second clock read.
#[derive(Debug)]
pub struct Span {
    started: Instant,
    recording: bool,
}

/// Opens a span of `kind` on this thread. When tracing is enabled the span
/// joins the thread's span stack (nesting under any span already open);
/// when disabled this is one relaxed atomic load plus a clock read.
pub fn span(kind: SpanKind) -> Span {
    open_span(kind, None)
}

/// Like [`span`], but tags the span with a label (e.g. the catalog index
/// name on a request root). The label travels into the trace tree and its
/// JSON/text renderings.
pub fn span_labeled(kind: SpanKind, label: &str) -> Span {
    open_span(kind, Some(label))
}

fn open_span(kind: SpanKind, label: Option<&str>) -> Span {
    let started = Instant::now();
    if !ENABLED.load(Ordering::Relaxed) {
        return Span { started, recording: false };
    }
    STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let (offset_micros, sampled) = match stack.first() {
            Some(root) => (micros_u64(root.started.elapsed()), root.sampled),
            None => {
                // A new root span invalidates the thread's last-trace slot:
                // whatever completes next belongs to this root. The root also
                // makes the trace's sampling decision.
                LAST.with(|last| last.borrow_mut().take());
                let every = SAMPLE_EVERY.load(Ordering::Relaxed).max(1);
                (0, SAMPLE_SEQ.fetch_add(1, Ordering::Relaxed).is_multiple_of(every))
            }
        };
        let label = if sampled { label.map(Box::from) } else { None };
        stack.push(OpenSpan {
            kind,
            started,
            offset_micros,
            children: Vec::new(),
            sampled,
            label,
            counters: Vec::new(),
        });
    });
    Span { started, recording: true }
}

/// Adds a work counter to the innermost span open on this thread: spans
/// carry *counters*, not just durations. Repeated keys accumulate, so a
/// stage recorded in pieces still reports one total. A no-op when tracing
/// is disabled, no span is open, or the current trace is sampled out —
/// callers annotate unconditionally and pay one relaxed load on the cold
/// path. Keys must be static identifiers (they are emitted unescaped into
/// the trace JSON).
pub fn annotate(key: &'static str, value: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let Some(open) = stack.last_mut() else {
            return;
        };
        if !open.sampled {
            return;
        }
        match open.counters.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v += value,
            None => open.counters.push((key, value)),
        }
    });
}

impl Span {
    /// Microseconds since this span was opened (valid whether or not
    /// tracing is enabled).
    pub fn elapsed_micros(&self) -> u64 {
        micros_u64(self.started.elapsed())
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.recording {
            return;
        }
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let Some(open) = stack.pop() else {
                return; // stack cleared mid-span (e.g. by a test); drop quietly
            };
            SPAN_COUNTS.by_kind[open.kind.index()].fetch_add(1, Ordering::Relaxed);
            if !open.sampled {
                // Sampled-out: the count above is the only footprint. No
                // histogram sample, no tree node, no ring entry — and since
                // descendants inherited the decision, none of them pushed a
                // child node either.
                return;
            }
            let micros = micros_u64(open.started.elapsed());
            AGGREGATES.by_kind[open.kind.index()].record(micros);
            let node = SpanNode {
                kind: open.kind,
                label: open.label,
                offset_micros: open.offset_micros,
                micros,
                counters: open.counters,
                children: open.children,
            };
            match stack.last_mut() {
                Some(parent) => parent.children.push(node),
                None => complete_trace(node),
            }
        });
    }
}

/// Result of [`capture`]: the closure's output, its wall-clock duration,
/// and the span subtree recorded while it ran.
#[derive(Debug)]
pub struct Captured<T> {
    /// The closure's return value.
    pub output: T,
    /// Wall-clock duration of the closure, in µs (valid even when tracing
    /// is disabled).
    pub micros: u64,
    /// The recorded subtree, rooted at the captured span. `None` when
    /// tracing was disabled or the capture was not sampled.
    pub node: Option<SpanNode>,
}

/// Whether the innermost span open on this thread belongs to a trace that
/// survived head-sampling (`false` when tracing is disabled or no span is
/// open). Scatter fan-out passes this to [`capture`] on each shard worker
/// so per-shard subtrees follow the request root's sampling decision.
pub fn current_sampled() -> bool {
    if !ENABLED.load(Ordering::Relaxed) {
        return false;
    }
    STACK.with(|stack| stack.borrow().last().is_some_and(|s| s.sampled))
}

/// Runs `f` on the current thread under a span of `kind` whose subtree is
/// **returned** instead of completing a trace — the cross-thread half of
/// scatter/gather tracing. Intended for fresh worker threads with no span
/// open: spans `f` opens nest under the captured span with offsets relative
/// to the capture start, and the finished subtree never touches the ring
/// buffer or last-trace slot of the worker thread. The caller grafts it
/// onto the request trace with [`attach`]. Span counts and aggregate
/// histograms are still fed exactly as for ordinary spans.
pub fn capture<T>(
    kind: SpanKind,
    label: &str,
    sampled: bool,
    f: impl FnOnce() -> T,
) -> Captured<T> {
    let started = Instant::now();
    if !ENABLED.load(Ordering::Relaxed) {
        let output = f();
        return Captured { output, micros: micros_u64(started.elapsed()), node: None };
    }
    let depth = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let label = if sampled {
            Some(Box::from(label))
        } else {
            None
        };
        stack.push(OpenSpan {
            kind,
            started,
            offset_micros: 0,
            children: Vec::new(),
            sampled,
            label,
            counters: Vec::new(),
        });
        stack.len()
    });
    let output = f();
    let micros = micros_u64(started.elapsed());
    let node = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        if stack.len() != depth {
            // A span leaked inside `f` (or the stack was cleared); abandon
            // the capture rather than pop someone else's span.
            return None;
        }
        let open = stack.pop()?;
        SPAN_COUNTS.by_kind[open.kind.index()].fetch_add(1, Ordering::Relaxed);
        if !open.sampled {
            return None;
        }
        AGGREGATES.by_kind[open.kind.index()].record(micros);
        Some(SpanNode {
            kind: open.kind,
            label: open.label,
            offset_micros: 0,
            micros,
            counters: open.counters,
            children: open.children,
        })
    });
    Captured { output, micros, node }
}

/// Attaches a subtree recorded by [`capture`] on another thread as a child
/// of the innermost span open on this thread. Offsets inside the subtree
/// (relative to the capture start) are shifted by the open span's own start
/// offset, placing the grafted spans at approximately the right point on
/// the request timeline. No-op when tracing is disabled, no span is open,
/// or the current trace is sampled out.
pub fn attach(node: SpanNode) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let Some(parent) = stack.last_mut() else {
            return;
        };
        if !parent.sampled {
            return;
        }
        let mut node = node;
        node.shift_offsets(parent.offset_micros);
        parent.children.push(node);
    });
}

fn complete_trace(root: SpanNode) {
    let seq = SEQ.fetch_add(1, Ordering::Relaxed) + 1;
    let trace = CompletedTrace { seq, root };
    LAST.with(|last| *last.borrow_mut() = Some(trace.clone()));
    let capacity = RING_CAPACITY.load(Ordering::Relaxed).max(1);
    let mut ring = lock_ring();
    while ring.len() >= capacity {
        ring.pop_front();
    }
    ring.push_back(trace);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// Tests in this module mutate global tracer state; serialize them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn exclusive() -> MutexGuard<'static, ()> {
        let guard = TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        set_enabled(false);
        set_sample_every(1);
        reset();
        set_ring_capacity(DEFAULT_RING_CAPACITY);
        guard
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _x = exclusive();
        {
            let s = span(SpanKind::Search);
            assert!(s.elapsed_micros() < 1_000_000, "clock still works while disabled");
        }
        assert_eq!(histogram(SpanKind::Search).count(), 0);
        assert!(recent_traces(10).is_empty());
        assert!(take_last_trace().is_none());
    }

    #[test]
    fn nested_spans_build_a_tree() {
        let _x = exclusive();
        set_enabled(true);
        {
            let _root = span(SpanKind::Request);
            {
                let _search = span(SpanKind::Search);
                let _postings = span(SpanKind::Postings);
            }
            let _di = span(SpanKind::Di);
        }
        set_enabled(false);
        let trace = take_last_trace().expect("a completed trace");
        assert_eq!(trace.root.kind, SpanKind::Request);
        assert_eq!(trace.root.children.len(), 2);
        // Drop order: postings closes before search; both nest under request.
        assert_eq!(trace.root.children[0].kind, SpanKind::Search);
        assert_eq!(trace.root.children[0].children[0].kind, SpanKind::Postings);
        assert_eq!(trace.root.children[1].kind, SpanKind::Di);
        assert_eq!(histogram(SpanKind::Request).count(), 1);
        assert_eq!(histogram(SpanKind::Postings).count(), 1);
        let ring = recent_traces(10);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring[0], trace);
    }

    #[test]
    fn ring_is_bounded_and_ordered() {
        let _x = exclusive();
        set_enabled(true);
        set_ring_capacity(3);
        for _ in 0..5 {
            let _s = span(SpanKind::Search);
        }
        set_enabled(false);
        let traces = recent_traces(10);
        assert_eq!(traces.len(), 3, "capacity bounds the ring");
        let seqs: Vec<u64> = traces.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5], "oldest first, newest kept");
        assert_eq!(recent_traces(2).len(), 2, "n limits the dump");
        assert_eq!(recent_traces(2)[0].seq, 4);
    }

    #[test]
    fn new_root_clears_stale_last_trace() {
        let _x = exclusive();
        set_enabled(true);
        {
            let _a = span(SpanKind::Search);
        }
        // A stale trace sits in the slot now. Opening a new root clears it
        // even if that root records nothing noteworthy and tracing is then
        // turned off before completion is read.
        {
            let _b = span(SpanKind::Request);
            assert!(LAST.with(|l| l.borrow().is_none()), "opening a root span must clear the slot");
        }
        set_enabled(false);
        let t = take_last_trace().expect("trace from the second root");
        assert_eq!(t.root.kind, SpanKind::Request);
    }

    #[test]
    fn head_sampling_keeps_one_in_n_but_counts_everything() {
        let _x = exclusive();
        set_enabled(true);
        set_sample_every(3);
        for _ in 0..7 {
            let _root = span(SpanKind::Request);
            let _child = span(SpanKind::Search);
        }
        set_enabled(false);
        // Roots 1, 4, and 7 (arrival numbers 0, 3, 6) survive sampling.
        let traces = recent_traces(10);
        assert_eq!(traces.len(), 3, "1-in-3 sampling keeps 3 of 7 traces");
        assert_eq!(histogram(SpanKind::Request).count(), 3);
        assert_eq!(histogram(SpanKind::Search).count(), 3);
        // Aggregate span counts stay exact: every request is counted even
        // when its trace was sampled out.
        assert_eq!(span_count(SpanKind::Request), 7);
        assert_eq!(span_count(SpanKind::Search), 7);
        for trace in traces {
            assert_eq!(trace.root.span_count(), 2, "sampled traces are kept whole");
        }
    }

    #[test]
    fn sampled_out_root_leaves_no_last_trace() {
        let _x = exclusive();
        set_enabled(true);
        set_sample_every(2);
        {
            let _kept = span(SpanKind::Request); // arrival 0: sampled
        }
        assert!(take_last_trace().is_some());
        {
            let _dropped = span(SpanKind::Request); // arrival 1: sampled out
        }
        set_enabled(false);
        assert!(take_last_trace().is_none(), "sampled-out trace must not fill the slot");
        assert_eq!(span_count(SpanKind::Request), 2);
    }

    #[test]
    fn span_labels_reach_the_trace_tree() {
        let _x = exclusive();
        set_enabled(true);
        {
            let _root = span_labeled(SpanKind::Request, "dblp");
            let _child = span(SpanKind::Search);
        }
        set_enabled(false);
        let trace = take_last_trace().expect("a completed trace");
        assert_eq!(trace.root.label.as_deref(), Some("dblp"));
        assert_eq!(trace.root.children[0].label, None, "unlabeled spans stay unlabeled");
    }

    #[test]
    fn captured_subtrees_attach_under_the_open_span() {
        let _x = exclusive();
        set_enabled(true);
        {
            let _root = span(SpanKind::Request);
            let sampled = current_sampled();
            assert!(sampled, "sample_every=1 keeps every trace");
            let scatter = span(SpanKind::Scatter);
            let cap = std::thread::scope(|scope| {
                scope
                    .spawn(|| {
                        capture(SpanKind::Search, "shard-1", sampled, || {
                            let _p = span(SpanKind::Postings);
                            42
                        })
                    })
                    .join()
                    .expect("shard worker")
            });
            assert_eq!(cap.output, 42);
            let node = cap.node.expect("sampled capture records a subtree");
            assert_eq!(node.kind, SpanKind::Search);
            assert_eq!(node.label.as_deref(), Some("shard-1"));
            assert_eq!(node.children[0].kind, SpanKind::Postings);
            attach(node);
            drop(scatter);
        }
        set_enabled(false);
        let trace = take_last_trace().expect("a completed trace");
        let scatter = &trace.root.children[0];
        assert_eq!(scatter.kind, SpanKind::Scatter);
        assert_eq!(scatter.children.len(), 1, "the captured subtree is grafted on");
        assert_eq!(scatter.children[0].kind, SpanKind::Search);
        assert_eq!(scatter.children[0].children[0].kind, SpanKind::Postings);
        assert_eq!(histogram(SpanKind::Search).count(), 1, "captures feed the aggregates");
        assert_eq!(span_count(SpanKind::Search), 1);
        assert!(recent_traces(10).len() == 1, "the worker thread completed no trace of its own");
    }

    #[test]
    fn unsampled_capture_counts_but_records_nothing() {
        let _x = exclusive();
        set_enabled(true);
        let cap = capture(SpanKind::Search, "shard-0", false, || 7);
        assert_eq!(cap.output, 7);
        assert!(cap.node.is_none(), "unsampled capture yields no subtree");
        set_enabled(false);
        assert_eq!(span_count(SpanKind::Search), 1, "counts stay exact");
        assert_eq!(histogram(SpanKind::Search).count(), 0);
        assert!(take_last_trace().is_none());
    }

    #[test]
    fn disabled_capture_still_times_the_closure() {
        let _x = exclusive();
        let cap = capture(SpanKind::Search, "shard-0", true, || "ok");
        assert_eq!(cap.output, "ok");
        assert!(cap.node.is_none());
        assert!(cap.micros < 1_000_000, "duration is measured even when disabled");
        assert_eq!(span_count(SpanKind::Search), 0);
    }

    #[test]
    fn annotations_land_on_the_innermost_span_and_accumulate() {
        let _x = exclusive();
        // Disabled: a pure no-op.
        annotate("postings_scanned", 5);
        set_enabled(true);
        {
            let _root = span(SpanKind::Request);
            {
                let _postings = span(SpanKind::Postings);
                annotate("postings_scanned", 3);
                annotate("postings_scanned", 4);
                annotate("heap_ops", 14);
            }
            annotate("rank_candidates", 2); // lands on the request span
        }
        set_enabled(false);
        let trace = take_last_trace().expect("a completed trace");
        assert_eq!(trace.root.counters, vec![("rank_candidates", 2)]);
        let postings = &trace.root.children[0];
        assert_eq!(postings.kind, SpanKind::Postings);
        assert_eq!(postings.counters, vec![("postings_scanned", 7), ("heap_ops", 14)]);
    }

    #[test]
    fn sampled_out_spans_ignore_annotations() {
        let _x = exclusive();
        set_enabled(true);
        set_sample_every(2);
        {
            let _kept = span(SpanKind::Request); // arrival 0: sampled
            annotate("postings_scanned", 1);
        }
        assert_eq!(take_last_trace().unwrap().root.counters, vec![("postings_scanned", 1)]);
        {
            let _dropped = span(SpanKind::Request); // arrival 1: sampled out
            annotate("postings_scanned", 1); // must not panic or leak
        }
        set_enabled(false);
        assert!(take_last_trace().is_none());
    }

    #[test]
    fn attach_shifts_offsets_by_the_parent_start() {
        let mut node = SpanNode {
            kind: SpanKind::Search,
            label: None,
            offset_micros: 5,
            micros: 10,
            counters: Vec::new(),
            children: vec![SpanNode {
                kind: SpanKind::Postings,
                label: None,
                offset_micros: 7,
                micros: 2,
                counters: Vec::new(),
                children: Vec::new(),
            }],
        };
        node.shift_offsets(100);
        assert_eq!(node.offset_micros, 105);
        assert_eq!(node.children[0].offset_micros, 107);
    }

    #[test]
    fn labels_round_trip() {
        for kind in SpanKind::ALL {
            assert_eq!(SpanKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(SpanKind::from_label("nope"), None);
    }
}
