//! Completed span trees: the shape a trace takes once every span in it has
//! closed, plus deterministic JSON and human-readable text renderings.
//!
//! JSON emission is hand-rolled (the workspace's `serde` is an offline
//! marker shim): span kinds are a closed set of identifier labels and the
//! timing fields are unsigned integers, so only the optional free-form span
//! label (an index name, typically) needs escaping — a minimal local escaper
//! handles it, since this crate sits below `gks-core` and cannot borrow its
//! JSON helpers. Field order is fixed and the label is emitted only when
//! present, making the output deterministic for a given tree — the
//! `/debug/traces` endpoint and the slow-query log rely on that.

use std::fmt::Write as _;

use crate::SpanKind;

/// One completed span: its kind, when it started relative to the root of
/// its trace, how long it ran, and the spans completed underneath it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// What pipeline stage this span measured.
    pub kind: SpanKind,
    /// Optional free-form tag (the catalog index name on request roots).
    pub label: Option<Box<str>>,
    /// Start offset from the root span's start, in µs.
    pub offset_micros: u64,
    /// Wall-clock duration, in µs.
    pub micros: u64,
    /// Work counters annotated onto the span (see [`crate::annotate`]), in
    /// annotation order. Empty for purely timed spans — and omitted from
    /// the JSON rendering then, so counter-free trees keep their exact
    /// historical shape.
    pub counters: Vec<(&'static str, u64)>,
    /// Child spans, in completion order.
    pub children: Vec<SpanNode>,
}

/// Appends `s` as a JSON string literal, escaping quotes, backslashes, and
/// control characters.
fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl SpanNode {
    /// Appends this node (and its subtree) as a JSON object. The `label`
    /// field appears only when set, so unlabeled trees keep their exact
    /// historical shape.
    pub fn write_json(&self, out: &mut String) {
        let _ = write!(out, "{{\"kind\":\"{}\",", self.kind.label());
        if let Some(label) = &self.label {
            out.push_str("\"label\":");
            push_escaped(out, label);
            out.push(',');
        }
        let _ = write!(out, "\"offset_micros\":{},\"micros\":{},", self.offset_micros, self.micros);
        if !self.counters.is_empty() {
            out.push_str("\"counters\":{");
            for (i, (key, value)) in self.counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                // Counter keys are static identifiers; no escaping needed.
                let _ = write!(out, "\"{key}\":{value}");
            }
            out.push_str("},");
        }
        out.push_str("\"children\":[");
        for (i, child) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            child.write_json(out);
        }
        out.push_str("]}");
    }

    /// Sum of durations of every span of `kind` in this subtree (the node
    /// itself included).
    pub fn kind_micros(&self, kind: SpanKind) -> u64 {
        let own = if self.kind == kind { self.micros } else { 0 };
        own + self.children.iter().map(|c| c.kind_micros(kind)).sum::<u64>()
    }

    /// Number of spans in this subtree (the node itself included).
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(SpanNode::span_count).sum::<usize>()
    }

    /// Shifts every start offset in this subtree forward by `base` µs —
    /// used when a subtree captured on another thread (offsets relative to
    /// its own capture start) is grafted onto a request trace.
    pub fn shift_offsets(&mut self, base: u64) {
        self.offset_micros = self.offset_micros.saturating_add(base);
        for child in &mut self.children {
            child.shift_offsets(base);
        }
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        match &self.label {
            Some(label) => {
                let _ = write!(
                    out,
                    "{}[{label}] {}µs @{}µs",
                    self.kind.label(),
                    self.micros,
                    self.offset_micros
                );
            }
            None => {
                let _ = write!(
                    out,
                    "{} {}µs @{}µs",
                    self.kind.label(),
                    self.micros,
                    self.offset_micros
                );
            }
        }
        for (key, value) in &self.counters {
            let _ = write!(out, " {key}={value}");
        }
        out.push('\n');
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }
}

/// A finished trace: the root span tree plus a global sequence number
/// (monotonically increasing across the process, so ring-buffer dumps have a
/// stable order even after wrap-around).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedTrace {
    /// Process-wide completion sequence number (1-based).
    pub seq: u64,
    /// The root span and everything nested under it.
    pub root: SpanNode,
}

impl CompletedTrace {
    /// Total wall-clock duration of the trace (the root span's duration).
    pub fn total_micros(&self) -> u64 {
        self.root.micros
    }

    /// Per-kind duration totals over the whole tree, in [`SpanKind::ALL`]
    /// order, skipping kinds that never occurred.
    pub fn phase_micros(&self) -> Vec<(SpanKind, u64)> {
        SpanKind::ALL
            .iter()
            .filter_map(|&kind| {
                let micros = self.root.kind_micros(kind);
                (self.root.has_kind(kind)).then_some((kind, micros))
            })
            .collect()
    }

    /// Appends this trace as a JSON object
    /// (`{"seq":…,"micros":…,"root":{…}}`).
    pub fn write_json(&self, out: &mut String) {
        let _ = write!(out, "{{\"seq\":{},\"micros\":{},\"root\":", self.seq, self.total_micros());
        self.root.write_json(out);
        out.push('}');
    }

    /// Renders the span tree as indented text, one span per line — the
    /// `gks search --trace` output.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace #{} ({}µs, {} spans)",
            self.seq,
            self.total_micros(),
            self.root.span_count()
        );
        self.root.render_into(&mut out, 1);
        out
    }
}

impl SpanNode {
    /// Whether any span of `kind` occurs in this subtree.
    pub fn has_kind(&self, kind: SpanKind) -> bool {
        self.kind == kind || self.children.iter().any(|c| c.has_kind(kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CompletedTrace {
        CompletedTrace {
            seq: 7,
            root: SpanNode {
                kind: SpanKind::Request,
                label: None,
                offset_micros: 0,
                micros: 100,
                counters: Vec::new(),
                children: vec![
                    SpanNode {
                        kind: SpanKind::Search,
                        label: None,
                        offset_micros: 5,
                        micros: 80,
                        counters: Vec::new(),
                        children: vec![SpanNode {
                            kind: SpanKind::Postings,
                            label: None,
                            offset_micros: 10,
                            micros: 30,
                            counters: Vec::new(),
                            children: Vec::new(),
                        }],
                    },
                    SpanNode {
                        kind: SpanKind::Di,
                        label: None,
                        offset_micros: 90,
                        micros: 9,
                        counters: Vec::new(),
                        children: Vec::new(),
                    },
                ],
            },
        }
    }

    #[test]
    fn json_shape_is_deterministic() {
        let mut out = String::new();
        sample().write_json(&mut out);
        assert_eq!(
            out,
            "{\"seq\":7,\"micros\":100,\"root\":{\"kind\":\"request\",\"offset_micros\":0,\
             \"micros\":100,\"children\":[{\"kind\":\"search\",\"offset_micros\":5,\"micros\":80,\
             \"children\":[{\"kind\":\"postings\",\"offset_micros\":10,\"micros\":30,\
             \"children\":[]}]},{\"kind\":\"di\",\"offset_micros\":90,\"micros\":9,\
             \"children\":[]}]}}"
        );
    }

    #[test]
    fn labels_are_emitted_and_escaped() {
        let node = SpanNode {
            kind: SpanKind::Request,
            label: Some(r#"ix "a"\b"#.into()),
            offset_micros: 0,
            micros: 5,
            counters: Vec::new(),
            children: Vec::new(),
        };
        let mut out = String::new();
        node.write_json(&mut out);
        assert_eq!(
            out,
            "{\"kind\":\"request\",\"label\":\"ix \\\"a\\\"\\\\b\",\
             \"offset_micros\":0,\"micros\":5,\"children\":[]}"
        );
        let trace = CompletedTrace { seq: 1, root: node };
        assert!(trace.render_text().contains("request[ix \"a\"\\b] 5µs"));
    }

    #[test]
    fn counters_are_emitted_only_when_present() {
        let node = SpanNode {
            kind: SpanKind::Postings,
            label: None,
            offset_micros: 1,
            micros: 9,
            counters: vec![("postings_scanned", 42), ("heap_ops", 84)],
            children: Vec::new(),
        };
        let mut out = String::new();
        node.write_json(&mut out);
        assert_eq!(
            out,
            "{\"kind\":\"postings\",\"offset_micros\":1,\"micros\":9,\
             \"counters\":{\"postings_scanned\":42,\"heap_ops\":84},\"children\":[]}"
        );
        let trace = CompletedTrace { seq: 1, root: node };
        assert!(trace.render_text().contains("postings_scanned=42"), "{}", trace.render_text());
    }

    #[test]
    fn phase_totals_and_counts() {
        let t = sample();
        assert_eq!(t.total_micros(), 100);
        assert_eq!(t.root.span_count(), 4);
        let phases = t.phase_micros();
        assert!(phases.contains(&(SpanKind::Search, 80)));
        assert!(phases.contains(&(SpanKind::Di, 9)));
        assert!(!phases.iter().any(|(k, _)| *k == SpanKind::Rank), "absent kinds are skipped");
    }

    #[test]
    fn text_rendering_is_indented() {
        let text = sample().render_text();
        assert!(text.starts_with("trace #7 (100µs, 4 spans)"), "{text}");
        assert!(text.contains("\n  request 100µs @0µs"), "{text}");
        assert!(text.contains("\n      postings 30µs @10µs"), "{text}");
    }
}
