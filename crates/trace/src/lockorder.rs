//! Debug-build lock-order registry: a runtime deadlock detector.
//!
//! The static pass (`cargo xtask analyze`) proves ordering facts about the
//! *source*; this module watches the *execution*. Every instrumented lock
//! acquisition pushes a `&'static str` lock name onto a thread-local stack
//! and records the ordered pairs it observes (`A` held while acquiring
//! `B` ⇒ edge `A → B`) in a global table. If a new acquisition would close
//! a cycle in that table, the registry panics immediately — with **both**
//! stacks: the current thread's acquisition stack and the stack recorded
//! when the conflicting order was first observed. Every existing
//! concurrency test thereby doubles as a deadlock detector.
//!
//! Names are shared with the static analyzer's lock identities
//! (`server/pool.state`, `trace/lib.RING`, …), so a dynamic report and a
//! `lock-order` diagnostic point at the same thing.
//!
//! Costs and caveats:
//!
//! * Everything is `#[cfg(debug_assertions)]`; release builds compile the
//!   registry down to nothing (the [`Tracked`] wrapper keeps only its
//!   guard, [`acquired`] returns an inert token).
//! * Sharded locks share one name, and re-acquiring the *same* name is
//!   never an edge — a self-deadlock on one mutex is loud on its own,
//!   while two shards of one cache are legitimately taken in sequence.
//! * A thread parked in [`Tracked::wait`] hands its guard to the condvar;
//!   the registry pops the name for the wait and re-pushes it on wakeup,
//!   mirroring what the lock actually does.

use std::ops::{Deref, DerefMut};
use std::sync::{Condvar, MutexGuard};

#[cfg(debug_assertions)]
mod registry {
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, PoisonError};

    /// One observed acquisition order, with the stack that first saw it.
    struct Edge {
        from: &'static str,
        to: &'static str,
        /// The observing thread's held stack at first observation,
        /// including `to` (the acquisition that created the edge).
        stack: Vec<&'static str>,
    }

    /// All observed edges. Linear scans are fine: the set is tiny (one
    /// entry per ordered lock pair ever seen) and only grows on *new*
    /// pairs.
    static EDGES: Mutex<Vec<Edge>> = Mutex::new(Vec::new());
    /// Total registered acquisitions, so tests can assert the registry
    /// actually ran.
    static ACQUISITIONS: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        /// This thread's stack of held lock names.
        static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    pub(super) fn register(name: &'static str) {
        ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
        let outers: Vec<&'static str> = HELD.with(|h| h.borrow().clone());
        if !outers.is_empty() {
            let mut current_stack = outers.clone();
            current_stack.push(name);
            let mut edges = EDGES.lock().unwrap_or_else(PoisonError::into_inner);
            for &outer in &outers {
                if outer == name || edges.iter().any(|e| e.from == outer && e.to == name) {
                    continue;
                }
                // Would `outer -> name` close a cycle? Only if `outer` is
                // already reachable *from* `name`.
                if let Some(path) = path_between(&edges, name, outer) {
                    let witness = edges
                        .iter()
                        .find(|e| e.from == path[0] && e.to == path[1])
                        .map(|e| e.stack.clone())
                        .unwrap_or_default();
                    let mut cycle: Vec<&str> = vec![outer];
                    cycle.extend(path.iter().copied());
                    // The panic is this detector's entire output channel
                    // (debug builds only; see lint-allow.toml).
                    panic!(
                        "lock-order inversion: acquiring {name:?} while holding {outers:?} \
                         would establish {outer:?} -> {name:?}, but the reverse order is \
                         already on record; cycle: {cycle:?}; this thread's stack: \
                         {current_stack:?}; conflicting order first observed with stack: \
                         {witness:?}"
                    );
                }
                edges.push(Edge { from: outer, to: name, stack: current_stack.clone() });
            }
        }
        HELD.with(|h| h.borrow_mut().push(name));
    }

    /// Shortest edge path from `from` to `to`, if one exists (BFS).
    fn path_between(
        edges: &[Edge],
        from: &'static str,
        to: &'static str,
    ) -> Option<Vec<&'static str>> {
        let mut frontier: Vec<Vec<&'static str>> = vec![vec![from]];
        let mut seen: Vec<&'static str> = vec![from];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for path in frontier {
                let tail = *path.last()?;
                for e in edges.iter().filter(|e| e.from == tail) {
                    if e.to == to {
                        let mut full = path.clone();
                        full.push(e.to);
                        return Some(full);
                    }
                    if !seen.contains(&e.to) {
                        seen.push(e.to);
                        let mut longer = path.clone();
                        longer.push(e.to);
                        next.push(longer);
                    }
                }
            }
            frontier = next;
        }
        None
    }

    pub(super) fn release(name: &'static str) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            // Pop the *last* matching name: guards may drop out of LIFO
            // order, and nested same-name holds must unwind innermost
            // first.
            if let Some(pos) = held.iter().rposition(|n| *n == name) {
                held.remove(pos);
            }
        });
    }

    pub(super) fn acquisition_count() -> u64 {
        ACQUISITIONS.load(Ordering::Relaxed)
    }

    pub(super) fn edge_count() -> usize {
        EDGES.lock().unwrap_or_else(PoisonError::into_inner).len()
    }
}

/// RAII token for one registered acquisition. Dropping it pops the name
/// from this thread's held stack. In release builds this is an inert
/// wrapper around the name.
#[derive(Debug)]
pub struct HeldLock {
    name: &'static str,
}

impl HeldLock {
    /// The lock name this token represents.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for HeldLock {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        registry::release(self.name);
    }
}

/// Registers an acquisition of `name` on this thread and returns the RAII
/// token holding it. Panics (debug builds only) if the acquisition closes
/// a cycle in the observed-order table — see the module docs for the
/// report format. Use this directly when a guard type cannot be wrapped;
/// otherwise prefer [`track`].
pub fn acquired(name: &'static str) -> HeldLock {
    #[cfg(debug_assertions)]
    registry::register(name);
    HeldLock { name }
}

/// Total acquisitions registered so far (0 in release builds). Lets
/// concurrency tests assert the registry was actually exercised.
pub fn acquisition_count() -> u64 {
    #[cfg(debug_assertions)]
    {
        registry::acquisition_count()
    }
    #[cfg(not(debug_assertions))]
    {
        0
    }
}

/// Number of distinct ordered lock pairs observed so far (0 in release
/// builds).
pub fn observed_edge_count() -> usize {
    #[cfg(debug_assertions)]
    {
        registry::edge_count()
    }
    #[cfg(not(debug_assertions))]
    {
        0
    }
}

/// A guard bundled with its registry token: derefs to the guard, releases
/// the registry entry when dropped. Wrap any guard with [`track`].
pub struct Tracked<G> {
    guard: G,
    held: HeldLock,
}

impl<G> Tracked<G> {
    /// The registered lock name.
    pub fn lock_name(&self) -> &'static str {
        self.held.name()
    }
}

impl<G> Deref for Tracked<G> {
    type Target = G;

    fn deref(&self) -> &G {
        &self.guard
    }
}

impl<G> DerefMut for Tracked<G> {
    fn deref_mut(&mut self) -> &mut G {
        &mut self.guard
    }
}

impl<G> std::fmt::Debug for Tracked<G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracked")
            .field("lock", &self.held.name())
            .finish_non_exhaustive()
    }
}

/// Wraps an already-acquired guard, registering the acquisition under
/// `name`. The registry entry lives exactly as long as the guard.
pub fn track<G>(name: &'static str, guard: G) -> Tracked<G> {
    let held = acquired(name);
    Tracked { guard, held }
}

impl<'a, T> Tracked<MutexGuard<'a, T>> {
    /// Waits on `condvar`, releasing and re-acquiring both the mutex and
    /// its registry entry (a parked thread does not hold the lock, and
    /// the registry mirrors that). Poisoning is recovered, matching the
    /// workspace idiom.
    pub fn wait(self, condvar: &Condvar) -> Tracked<MutexGuard<'a, T>> {
        let Tracked { guard, held } = self;
        let name = held.name();
        drop(held);
        let guard = condvar.wait(guard).unwrap_or_else(std::sync::PoisonError::into_inner);
        track(name, guard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_push_and_pop_without_incident() {
        let before = acquisition_count();
        let a = acquired("lockorder-unit.a");
        let b = acquired("lockorder-unit.b");
        drop(b);
        drop(a);
        // Same order again: consistent, must not panic.
        let a = acquired("lockorder-unit.a");
        let b = acquired("lockorder-unit.b");
        drop(a); // out-of-LIFO drop is fine
        drop(b);
        assert!(acquisition_count() >= before + 4);
    }

    #[test]
    fn tracked_derefs_to_guard() {
        let m = std::sync::Mutex::new(41_u32);
        let mut g = track("lockorder-unit.tracked", m.lock().expect("fresh mutex"));
        **g += 1;
        assert_eq!(**g, 42);
        assert_eq!(g.lock_name(), "lockorder-unit.tracked");
    }

    #[test]
    fn same_name_nesting_is_not_an_edge() {
        let outer = acquired("lockorder-unit.same");
        let inner = acquired("lockorder-unit.same");
        drop(inner);
        drop(outer);
    }
}
