//! Property tests for the text pipeline.

use gks_text::{stem, tokenize, Analyzer};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The Porter stemmer never panics, never grows a word, and keeps the
    /// alphabet: lowercase ASCII in → lowercase ASCII out.
    #[test]
    fn stem_shrinks_and_stays_ascii(word in "[a-z]{1,24}") {
        let out = stem(&word);
        prop_assert!(out.len() <= word.len(), "{word} -> {out}");
        prop_assert!(!out.is_empty());
        prop_assert!(out.bytes().all(|b| b.is_ascii_lowercase()));
    }

    /// Non-ASCII and mixed inputs pass through unchanged (the stemmer only
    /// touches pure lowercase ASCII words).
    #[test]
    fn stem_passes_through_non_ascii(word in "[a-z0-9éü]{1,12}") {
        if !word.bytes().all(|b| b.is_ascii_lowercase()) {
            prop_assert_eq!(stem(&word), word);
        }
    }

    /// Tokenization never panics and produces lower-case alphanumeric
    /// tokens only.
    #[test]
    fn tokenize_output_is_clean(text in ".{0,80}") {
        for tok in tokenize(&text) {
            prop_assert!(!tok.is_empty());
            prop_assert!(tok.chars().all(char::is_alphanumeric), "{tok:?}");
            prop_assert_eq!(tok.to_lowercase(), tok.clone());
        }
    }

    /// Analyzer output is a subset-in-order of the tokenizer output after
    /// stemming — stop-word removal only deletes, never reorders.
    #[test]
    fn analyzer_preserves_order(text in "[a-zA-Z ,.;]{0,80}") {
        let analyzer = Analyzer::default();
        let analyzed = analyzer.analyze(&text);
        let all_stemmed: Vec<String> = tokenize(&text).iter().map(|t| stem(t)).collect();
        // `analyzed` must be a subsequence of `all_stemmed`.
        let mut it = all_stemmed.iter();
        for term in &analyzed {
            prop_assert!(
                it.any(|t| t == term),
                "{term:?} out of order: {analyzed:?} vs {all_stemmed:?}"
            );
        }
    }

    /// Normalizing a term twice is a no-op (queries can be re-normalized
    /// safely).
    #[test]
    fn normalize_term_idempotent_on_survivors(word in "[a-zA-Z]{1,16}") {
        let analyzer = Analyzer::default();
        if let Some(once) = analyzer.normalize_term(&word) {
            if let Some(twice) = analyzer.normalize_term(&once) {
                // Stemming may shrink again (Porter is not idempotent for
                // every word), but the result must be stable from there.
                let thrice = analyzer.normalize_term(&twice);
                prop_assert_eq!(thrice.as_deref(), Some(twice.as_str()));
            }
        }
    }
}
