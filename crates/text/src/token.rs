//! Tokenizer: splits raw text into lower-cased alphanumeric terms.
//!
//! A token is a maximal run of alphanumeric characters; everything else
//! (whitespace, punctuation, symbols) is a separator. Tokens are lower-cased
//! as they are produced. This matches how the paper's prototype treats the
//! text of a text node that "comprises multiple keywords" (§2.4).

/// Calls `f` once per token, in order. Tokens are lower-cased.
///
/// The callback form avoids allocating a `Vec` for the common one-token case
/// in the indexer's inner loop.
pub fn tokenize_into(text: &str, mut f: impl FnMut(&str)) {
    let mut buf = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() {
            // Lower-casing may expand a char (e.g. 'İ'); extend handles it.
            buf.extend(c.to_lowercase());
        } else if !buf.is_empty() {
            f(&buf);
            buf.clear();
        }
    }
    if !buf.is_empty() {
        f(&buf);
    }
}

/// Returns all tokens of `text`, lower-cased, in order.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    tokenize_into(text, |t| out.push(t.to_string()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        assert_eq!(
            tokenize("Third-Generation Database System Manifesto!"),
            vec!["third", "generation", "database", "system", "manifesto"]
        );
    }

    #[test]
    fn lowercases() {
        assert_eq!(tokenize("SIGMOD Record"), vec!["sigmod", "record"]);
    }

    #[test]
    fn keeps_digits_and_mixed_tokens() {
        assert_eq!(tokenize("year 2001, vldb99"), vec!["year", "2001", "vldb99"]);
    }

    #[test]
    fn empty_and_separator_only_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("  ,;--  ").is_empty());
    }

    #[test]
    fn unicode_terms_survive() {
        assert_eq!(tokenize("Müller's Straße"), vec!["müller", "s", "straße"]);
    }

    #[test]
    fn token_boundaries_at_string_edges() {
        assert_eq!(tokenize("a b"), vec!["a", "b"]);
        assert_eq!(tokenize("a"), vec!["a"]);
        assert_eq!(tokenize(" a "), vec!["a"]);
    }
}
