//! The Porter stemming algorithm (M. F. Porter, "An algorithm for suffix
//! stripping", *Program* 14(3), 1980).
//!
//! This is a faithful implementation of the original 1980 algorithm (not the
//! later "Porter2"/Snowball revision): five steps of suffix rewriting guarded
//! by the *measure* `m` of the stem — the number of vowel-consonant sequences
//! `[C](VC)^m[V]`. Words of one or two letters, and words containing
//! non-ASCII-alphabetic characters, are returned unchanged; the tokenizer has
//! already lower-cased its input.

/// Stems one lower-case word.
pub fn stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_string();
    }
    let mut s = Stemmer { b: word.as_bytes().to_vec() };
    s.step1a();
    s.step1b();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5a();
    s.step5b();
    // The buffer is ASCII throughout (the rewrite steps only ever shorten
    // the word or write ASCII letters); degrade lossily rather than panic
    // if that invariant is ever broken.
    String::from_utf8(s.b).unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned())
}

struct Stemmer {
    b: Vec<u8>,
}

impl Stemmer {
    /// Is `b[i]` a consonant? `y` is a consonant at position 0 or after a
    /// vowel, and a vowel after a consonant ("toy" vs "syzygy").
    fn is_cons(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => i == 0 || !self.is_cons(i - 1),
            _ => true,
        }
    }

    /// The measure of `b[..len]`: the number of VC sequences in
    /// `[C](VC)^m[V]`.
    fn measure(&self, len: usize) -> usize {
        let mut m = 0;
        let mut i = 0;
        // Skip the optional leading consonant run.
        while i < len && self.is_cons(i) {
            i += 1;
        }
        loop {
            // Vowel run.
            while i < len && !self.is_cons(i) {
                i += 1;
            }
            if i == len {
                return m;
            }
            // Consonant run completes one VC.
            while i < len && self.is_cons(i) {
                i += 1;
            }
            m += 1;
        }
    }

    /// Does `b[..len]` contain a vowel?
    fn has_vowel(&self, len: usize) -> bool {
        (0..len).any(|i| !self.is_cons(i))
    }

    /// Does `b[..len]` end with a double consonant?
    fn ends_double_cons(&self, len: usize) -> bool {
        len >= 2 && self.b[len - 1] == self.b[len - 2] && self.is_cons(len - 1)
    }

    /// Does `b[..len]` end consonant–vowel–consonant, where the final
    /// consonant is not `w`, `x` or `y`? (The `*o` condition of the paper.)
    fn ends_cvc(&self, len: usize) -> bool {
        if len < 3 || !self.is_cons(len - 1) || self.is_cons(len - 2) || !self.is_cons(len - 3) {
            return false;
        }
        !matches!(self.b[len - 1], b'w' | b'x' | b'y')
    }

    fn ends_with(&self, suffix: &[u8]) -> bool {
        self.b.len() >= suffix.len() && self.b[self.b.len() - suffix.len()..] == *suffix
    }

    /// Length of the stem left when `suffix` is removed.
    fn stem_len(&self, suffix: &[u8]) -> usize {
        self.b.len() - suffix.len()
    }

    /// Replaces a matched `suffix` with `rep`.
    fn set(&mut self, suffix: &[u8], rep: &[u8]) {
        let at = self.stem_len(suffix);
        self.b.truncate(at);
        self.b.extend_from_slice(rep);
    }

    /// `(m > threshold) suffix -> rep`; returns whether the suffix matched
    /// (regardless of whether the guard allowed the rewrite), so rule lists
    /// can stop at the first matching suffix, as the paper specifies.
    fn rule(&mut self, suffix: &[u8], rep: &[u8], min_m: usize) -> bool {
        if !self.ends_with(suffix) {
            return false;
        }
        if self.measure(self.stem_len(suffix)) > min_m {
            self.set(suffix, rep);
        }
        true
    }

    /// Step 1a: plurals. `sses -> ss`, `ies -> i`, `ss -> ss`, `s -> `.
    fn step1a(&mut self) {
        if self.ends_with(b"sses") {
            self.set(b"sses", b"ss");
        } else if self.ends_with(b"ies") {
            self.set(b"ies", b"i");
        } else if !self.ends_with(b"ss") && self.ends_with(b"s") {
            self.set(b"s", b"");
        }
    }

    /// Step 1b: `-ed` / `-ing`, with the restore pass (`at -> ate`, undouble,
    /// `-e` after a short stem).
    fn step1b(&mut self) {
        if self.ends_with(b"eed") {
            if self.measure(self.stem_len(b"eed")) > 0 {
                self.set(b"eed", b"ee");
            }
            return;
        }
        let stripped = if self.ends_with(b"ed") && self.has_vowel(self.stem_len(b"ed")) {
            self.set(b"ed", b"");
            true
        } else if self.ends_with(b"ing") && self.has_vowel(self.stem_len(b"ing")) {
            self.set(b"ing", b"");
            true
        } else {
            false
        };
        if !stripped {
            return;
        }
        if self.ends_with(b"at") {
            self.set(b"at", b"ate");
        } else if self.ends_with(b"bl") {
            self.set(b"bl", b"ble");
        } else if self.ends_with(b"iz") {
            self.set(b"iz", b"ize");
        } else if self.ends_double_cons(self.b.len())
            && !matches!(self.b[self.b.len() - 1], b'l' | b's' | b'z')
        {
            self.b.pop();
        } else if self.measure(self.b.len()) == 1 && self.ends_cvc(self.b.len()) {
            self.b.push(b'e');
        }
    }

    /// Step 1c: terminal `y -> i` when the stem contains a vowel.
    fn step1c(&mut self) {
        if self.ends_with(b"y") && self.has_vowel(self.stem_len(b"y")) {
            let last = self.b.len() - 1;
            self.b[last] = b'i';
        }
    }

    /// Step 2: double-suffix reduction (guard `m > 0`). Rules are keyed by
    /// the penultimate letter in the paper; a first-match scan is equivalent
    /// because the suffixes keyed to one letter are mutually exclusive.
    fn step2(&mut self) {
        const RULES: &[(&[u8], &[u8])] = &[
            (b"ational", b"ate"),
            (b"tional", b"tion"),
            (b"enci", b"ence"),
            (b"anci", b"ance"),
            (b"izer", b"ize"),
            (b"abli", b"able"),
            (b"alli", b"al"),
            (b"entli", b"ent"),
            (b"eli", b"e"),
            (b"ousli", b"ous"),
            (b"ization", b"ize"),
            (b"ation", b"ate"),
            (b"ator", b"ate"),
            (b"alism", b"al"),
            (b"iveness", b"ive"),
            (b"fulness", b"ful"),
            (b"ousness", b"ous"),
            (b"aliti", b"al"),
            (b"iviti", b"ive"),
            (b"biliti", b"ble"),
        ];
        for (suffix, rep) in RULES {
            if self.rule(suffix, rep, 0) {
                return;
            }
        }
    }

    /// Step 3: `-ic-`, `-ful`, `-ness` family (guard `m > 0`).
    fn step3(&mut self) {
        const RULES: &[(&[u8], &[u8])] = &[
            (b"icate", b"ic"),
            (b"ative", b""),
            (b"alize", b"al"),
            (b"iciti", b"ic"),
            (b"ical", b"ic"),
            (b"ful", b""),
            (b"ness", b""),
        ];
        for (suffix, rep) in RULES {
            if self.rule(suffix, rep, 0) {
                return;
            }
        }
    }

    /// Step 4: strip residual suffixes when `m > 1`. `-ion` additionally
    /// requires the stem to end in `s` or `t`.
    fn step4(&mut self) {
        const RULES: &[&[u8]] = &[
            b"al", b"ance", b"ence", b"er", b"ic", b"able", b"ible", b"ant", b"ement", b"ment",
            b"ent",
        ];
        for suffix in RULES {
            if self.ends_with(suffix) {
                if self.measure(self.stem_len(suffix)) > 1 {
                    self.set(suffix, b"");
                }
                return;
            }
        }
        if self.ends_with(b"ion") {
            let at = self.stem_len(b"ion");
            if at >= 1 && matches!(self.b[at - 1], b's' | b't') && self.measure(at) > 1 {
                self.set(b"ion", b"");
            }
            return;
        }
        const TAIL: &[&[u8]] = &[b"ou", b"ism", b"ate", b"iti", b"ous", b"ive", b"ize"];
        for suffix in TAIL {
            if self.ends_with(suffix) {
                if self.measure(self.stem_len(suffix)) > 1 {
                    self.set(suffix, b"");
                }
                return;
            }
        }
    }

    /// Step 5a: drop a terminal `e` when `m > 1`, or when `m == 1` and the
    /// stem does not end CVC.
    fn step5a(&mut self) {
        if !self.ends_with(b"e") {
            return;
        }
        let at = self.stem_len(b"e");
        let m = self.measure(at);
        if m > 1 || (m == 1 && !self.ends_cvc(at)) {
            self.b.pop();
        }
    }

    /// Step 5b: undouble a terminal `ll` when `m > 1`.
    fn step5b(&mut self) {
        if self.measure(self.b.len()) > 1
            && self.ends_double_cons(self.b.len())
            && self.b[self.b.len() - 1] == b'l'
        {
            self.b.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::stem;

    /// Asserts a batch of (input, expected) vectors.
    fn check(vectors: &[(&str, &str)]) {
        for (input, expected) in vectors {
            assert_eq!(&stem(input), expected, "stem({input:?})");
        }
    }

    #[test]
    fn step1a_plurals() {
        check(&[
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
        ]);
    }

    #[test]
    fn step1b_ed_ing() {
        check(&[
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
        ]);
    }

    #[test]
    fn step1c_y_to_i() {
        check(&[("happy", "happi"), ("sky", "sky")]);
    }

    #[test]
    fn step2_double_suffixes() {
        check(&[
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("digitizer", "digit"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
        ]);
    }

    #[test]
    fn step3() {
        check(&[
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
        ]);
    }

    #[test]
    fn step4() {
        check(&[
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
        ]);
    }

    #[test]
    fn step5() {
        check(&[
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ]);
    }

    #[test]
    fn full_pipeline_classics() {
        check(&[
            ("generalizations", "gener"),
            ("oscillators", "oscil"),
            ("databases", "databas"),
            ("computers", "comput"),
            ("searching", "search"),
            ("argued", "argu"),
        ]);
    }

    #[test]
    fn short_and_non_ascii_words_unchanged() {
        check(&[("a", "a"), ("is", "is"), ("müller", "müller"), ("año", "año")]);
    }

    #[test]
    fn numbers_pass_through() {
        check(&[("2001", "2001"), ("vldb99", "vldb99")]);
    }
}
