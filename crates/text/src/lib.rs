//! Text analysis pipeline for GKS.
//!
//! The GKS indexing engine creates "a separate index entry … for each of the
//! keywords after stop words removal and stemming" (paper §2.4). This crate
//! provides the three stages of that pipeline:
//!
//! * [`tokenize`] — splits raw text-node content into lower-cased alphanumeric
//!   terms;
//! * [`stopwords`] — the classical English stop-word list used to drop
//!   non-discriminating terms;
//! * [`stem`] — a faithful implementation of the Porter stemming algorithm
//!   (Porter, 1980), the stemmer of choice of the era's XML keyword search
//!   prototypes;
//! * [`Analyzer`] — the composed pipeline with a configurable policy, used by
//!   both the indexer and the query parser so that query terms and indexed
//!   terms always normalize identically.

pub mod porter;
pub mod stopwords;
pub mod token;

pub use porter::stem;
pub use token::{tokenize, tokenize_into};

/// Configuration of the analysis pipeline.
///
/// Defaults mirror the paper: lower-casing, stop-word removal, Porter
/// stemming. Phrase keywords (quoted multi-word author names such as
/// `"Peter Buneman"` in the paper's queries) are handled one level up, by the
/// query parser; the analyzer always works term-by-term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzerOptions {
    /// Drop terms found in the stop-word list.
    pub remove_stopwords: bool,
    /// Apply the Porter stemmer to each surviving term.
    pub stem: bool,
    /// Drop terms shorter than this many bytes *after* normalization.
    pub min_term_len: usize,
}

impl Default for AnalyzerOptions {
    fn default() -> Self {
        AnalyzerOptions { remove_stopwords: true, stem: true, min_term_len: 1 }
    }
}

/// The composed tokenize → stop → stem pipeline.
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    options: AnalyzerOptions,
}

impl Analyzer {
    /// Creates an analyzer with the given options.
    pub fn new(options: AnalyzerOptions) -> Self {
        Analyzer { options }
    }

    /// The options this analyzer was built with.
    pub fn options(&self) -> &AnalyzerOptions {
        &self.options
    }

    /// Normalizes a single already-isolated term (e.g. an XML element name or
    /// one word of a phrase keyword). Returns `None` if the term is filtered
    /// out by the stop list or the length threshold.
    pub fn normalize_term(&self, term: &str) -> Option<String> {
        let lowered = term.to_lowercase();
        let cleaned: String = lowered.chars().filter(|c| c.is_alphanumeric()).collect();
        if cleaned.is_empty() {
            return None;
        }
        if self.options.remove_stopwords && stopwords::is_stopword(&cleaned) {
            return None;
        }
        let out = if self.options.stem {
            stem(&cleaned)
        } else {
            cleaned
        };
        (out.len() >= self.options.min_term_len).then_some(out)
    }

    /// Runs the full pipeline over free text, returning the surviving terms
    /// in document order (duplicates preserved — the indexer decides whether
    /// to dedup per node).
    pub fn analyze(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        self.analyze_into(text, &mut out);
        out
    }

    /// Like [`Self::analyze`] but pushes into the caller's buffer, per the
    /// "workhorse collection" idiom — the indexer calls this once per text
    /// node.
    pub fn analyze_into(&self, text: &str, out: &mut Vec<String>) {
        tokenize_into(text, |tok| {
            if self.options.remove_stopwords && stopwords::is_stopword(tok) {
                return;
            }
            let term = if self.options.stem {
                stem(tok)
            } else {
                tok.to_string()
            };
            if term.len() >= self.options.min_term_len {
                out.push(term);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pipeline_stops_and_stems() {
        let a = Analyzer::default();
        assert_eq!(
            a.analyze("The Databases are searched by the students"),
            vec!["databas", "search", "student"]
        );
    }

    #[test]
    fn pipeline_without_stemming() {
        let a = Analyzer::new(AnalyzerOptions { stem: false, ..Default::default() });
        assert_eq!(a.analyze("Efficient Keyword Search"), vec!["efficient", "keyword", "search"]);
    }

    #[test]
    fn pipeline_without_stopword_removal_keeps_the() {
        let a = Analyzer::new(AnalyzerOptions { remove_stopwords: false, ..Default::default() });
        assert!(a.analyze("the cat").contains(&"the".to_string()));
    }

    #[test]
    fn normalize_term_strips_punctuation_and_case() {
        let a = Analyzer::default();
        assert_eq!(a.normalize_term("Buneman,").as_deref(), Some("buneman"));
        assert_eq!(a.normalize_term("2001").as_deref(), Some("2001"));
        assert_eq!(a.normalize_term("the"), None);
        assert_eq!(a.normalize_term("—"), None);
    }

    #[test]
    fn numbers_and_mixed_tokens_survive() {
        let a = Analyzer::default();
        assert_eq!(a.analyze("SIGMOD 2001 vldb99"), vec!["sigmod", "2001", "vldb99"]);
    }

    #[test]
    fn min_len_filter_applies_after_stemming() {
        let a = Analyzer::new(AnalyzerOptions { min_term_len: 5, ..Default::default() });
        // "databases" stems to "databas" (7 chars, kept); "cats" stems to
        // "cat" (3 chars, dropped).
        assert_eq!(a.analyze("databases cats"), vec!["databas"]);
    }

    #[test]
    fn query_and_index_normalization_agree() {
        // The indexer analyzes text nodes; the query parser normalizes each
        // query keyword. The two must meet on the same form.
        let a = Analyzer::default();
        let indexed = a.analyze("Relational Databases");
        let q1 = a.normalize_term("relational").unwrap();
        let q2 = a.normalize_term("Databases").unwrap();
        assert!(indexed.contains(&q1));
        assert!(indexed.contains(&q2));
    }
}
