//! English stop-word list.
//!
//! The classical IR stop list (articles, pronouns, auxiliaries, common
//! prepositions). The paper removes stop words before indexing text-node
//! keywords (§2.4); the same list is applied to query keywords so the two
//! sides agree.

/// Stop words, sorted, lower-case. Binary-searched by [`is_stopword`].
static STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "ought",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "with",
    "would",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// Returns `true` iff `term` (already lower-cased) is a stop word.
pub fn is_stopword(term: &str) -> bool {
    STOPWORDS.binary_search(&term).is_ok()
}

/// The number of stop words in the list (exposed for documentation/tests).
pub fn len() -> usize {
    STOPWORDS.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_deduped() {
        // binary_search correctness depends on this.
        for w in STOPWORDS.windows(2) {
            assert!(w[0] < w[1], "{} >= {}", w[0], w[1]);
        }
    }

    #[test]
    fn common_words_are_stopped() {
        for w in ["the", "a", "and", "of", "is", "with"] {
            assert!(is_stopword(w), "{w} should be a stop word");
        }
    }

    #[test]
    fn content_words_pass() {
        for w in ["database", "keyword", "xml", "buneman", "2001", ""] {
            assert!(!is_stopword(w), "{w} should not be a stop word");
        }
    }
}
