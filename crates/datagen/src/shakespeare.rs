//! Synthetic Shakespeare plays ("Plays" in Table 4, "distributed over
//! multiple files").
//!
//! `<PLAY>` → `<TITLE>`, `<PERSONAE>` → `<PERSONA>*`, `<ACT>*` →
//! `<TITLE>`, `<SCENE>*` → `<TITLE>`, `<SPEECH>*` → `<SPEAKER>`, `<LINE>*`.

use gks_xml::Writer;
use rand::Rng as _;

use crate::pools::{pick, FILLER_WORDS, LAST_NAMES, PLAY_TITLES};

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of plays (each a `<PLAY>` element; use
    /// [`generate_files`] for one file per play).
    pub plays: usize,
    /// Acts per play.
    pub acts: usize,
    /// Scenes per act.
    pub scenes: usize,
    /// Speeches per scene.
    pub speeches: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config { plays: 3, acts: 3, scenes: 3, speeches: 6 }
    }
}

/// Generator output.
#[derive(Debug, Clone)]
pub struct Output {
    /// A single document wrapping all plays (`<PLAYS>` root).
    pub xml: String,
    /// Speaker names used.
    pub speakers: Vec<String>,
    /// Play titles used.
    pub titles: Vec<String>,
}

/// Generates all plays into one document.
pub fn generate(config: &Config, seed: u64) -> Output {
    let files = generate_files(config, seed);
    let mut w = Writer::new();
    w.start("PLAYS", &[]).expect("writer");
    let mut xml = w_into_string(w);
    let mut speakers = Vec::new();
    let mut titles = Vec::new();
    for f in files {
        xml.push_str(&f.xml);
        speakers.extend(f.speakers);
        titles.extend(f.titles);
    }
    xml.push_str("</PLAYS>");
    speakers.sort();
    speakers.dedup();
    Output { xml, speakers, titles }
}

// Writer has no "leave open" mode; emit the prefix manually.
fn w_into_string(_w: Writer) -> String {
    "<PLAYS>".to_string()
}

/// Generates one document per play (the paper's plays "are distributed over
/// multiple files").
pub fn generate_files(config: &Config, seed: u64) -> Vec<Output> {
    let mut rng = crate::rng(seed);
    let mut out = Vec::with_capacity(config.plays);
    for p in 0..config.plays {
        let base = PLAY_TITLES[p % PLAY_TITLES.len()];
        let title = if p < PLAY_TITLES.len() {
            base.to_string()
        } else {
            format!("{base} Part {}", p / PLAY_TITLES.len() + 1)
        };
        let mut speakers: Vec<String> = (0..rng.gen_range(4..=8))
            .map(|_| pick(&mut rng, LAST_NAMES).to_uppercase())
            .collect();
        speakers.sort();
        speakers.dedup();

        let mut w = Writer::new();
        w.start("PLAY", &[]).expect("writer");
        w.element_text("TITLE", &[], &title).expect("writer");
        w.start("PERSONAE", &[]).expect("writer");
        for s in &speakers {
            w.element_text("PERSONA", &[], s).expect("writer");
        }
        w.end().expect("writer");
        for a in 0..config.acts.max(1) {
            w.start("ACT", &[]).expect("writer");
            w.element_text("TITLE", &[], &format!("ACT {}", a + 1)).expect("writer");
            for s in 0..config.scenes.max(1) {
                w.start("SCENE", &[]).expect("writer");
                w.element_text("TITLE", &[], &format!("SCENE {}", s + 1)).expect("writer");
                for _ in 0..config.speeches.max(1) {
                    w.start("SPEECH", &[]).expect("writer");
                    let speaker = &speakers[rng.gen_range(0..speakers.len())];
                    w.element_text("SPEAKER", &[], speaker).expect("writer");
                    for _ in 0..rng.gen_range(1..=4) {
                        let line = format!(
                            "the {} of {} speaks to the {}",
                            pick(&mut rng, FILLER_WORDS),
                            pick(&mut rng, FILLER_WORDS),
                            pick(&mut rng, FILLER_WORDS),
                        );
                        w.element_text("LINE", &[], &line).expect("writer");
                    }
                    w.end().expect("writer"); // SPEECH
                }
                w.end().expect("writer"); // SCENE
            }
            w.end().expect("writer"); // ACT
        }
        w.end().expect("writer"); // PLAY
        out.push(Output {
            xml: w.finish().expect("balanced"),
            speakers: speakers.clone(),
            titles: vec![title],
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gks_xml::Document;

    #[test]
    fn single_document_wraps_all_plays() {
        let out = generate(&Config::default(), 23);
        let doc = Document::parse(&out.xml).unwrap();
        assert_eq!(doc.root().name(), "PLAYS");
        assert_eq!(doc.root().element_children().len(), 3);
    }

    #[test]
    fn per_file_structure() {
        let files = generate_files(&Config { plays: 2, ..Default::default() }, 23);
        assert_eq!(files.len(), 2);
        for f in files {
            let doc = Document::parse(&f.xml).unwrap();
            assert_eq!(doc.root().name(), "PLAY");
            assert!(doc.root().find_all("SPEECH").count() >= 9);
            // Every SPEAKER is in the manifest.
            for sp in doc.root().find_all("SPEAKER") {
                assert!(f.speakers.contains(&sp.text()), "{}", sp.text());
            }
        }
    }
}
