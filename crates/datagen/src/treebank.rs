//! Synthetic TreeBank: deep, irregular parse trees.
//!
//! The real TreeBank's distinguishing feature in Table 4 is its depth (36
//! vs ≤ 8 for everything else) and irregular recursive structure. The
//! generator emits `<FILE>` → `<EMPTY>` (sentence) → recursive phrase
//! elements (`S`, `NP`, `VP`, …) bottoming out in word leaves, with a
//! configurable maximum depth the recursion actually reaches.

use gks_xml::Writer;
use rand::Rng as _;

use crate::pools::{pick, FILLER_WORDS, TREEBANK_LABELS};

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of sentences.
    pub sentences: usize,
    /// Maximum recursion depth of a sentence's parse tree.
    pub max_depth: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config { sentences: 10, max_depth: 30 }
    }
}

/// Generator output.
#[derive(Debug, Clone)]
pub struct Output {
    /// The document.
    pub xml: String,
    /// All leaf words in order.
    pub words: Vec<String>,
}

/// Generates a TreeBank-like document.
pub fn generate(config: &Config, seed: u64) -> Output {
    let mut rng = crate::rng(seed);
    let mut w = Writer::new();
    let mut words = Vec::new();
    w.start("FILE", &[]).expect("writer");
    for s in 0..config.sentences {
        w.start("EMPTY", &[]).expect("writer");
        // Force one deep spine per sentence so max depth is actually hit,
        // plus bushier random structure around it.
        let deep = s % 2 == 0;
        grow(&mut w, &mut rng, config.max_depth.max(2), deep, &mut words);
        w.end().expect("writer");
    }
    w.end().expect("writer");
    Output { xml: w.finish().expect("balanced"), words }
}

fn grow(w: &mut Writer, rng: &mut crate::Rng, budget: usize, spine: bool, words: &mut Vec<String>) {
    let label = pick(rng, TREEBANK_LABELS);
    w.start(label, &[]).expect("writer");
    if budget <= 1 {
        let word = pick(rng, FILLER_WORDS).to_string();
        w.text(&word).expect("writer");
        words.push(word);
    } else {
        let children = if spine { 1 } else { rng.gen_range(1..=3) };
        for c in 0..children {
            // The spine child keeps recursing to full depth; others shrink
            // fast, giving the irregular look of parse trees.
            let child_budget = if spine && c == 0 {
                budget - 1
            } else {
                rng.gen_range(1..=(budget / 2).max(1))
            };
            if child_budget <= 1 && rng.gen_bool(0.5) {
                let word = pick(rng, FILLER_WORDS).to_string();
                w.element_text(pick(rng, TREEBANK_LABELS), &[], &word).expect("writer");
                words.push(word);
            } else {
                grow(w, rng, child_budget, spine && c == 0, words);
            }
        }
    }
    w.end().expect("writer");
}

#[cfg(test)]
mod tests {
    use super::*;
    use gks_xml::{Document, Node};

    fn depth_of(node: &Node) -> usize {
        1 + node.element_children().iter().map(|c| depth_of(c)).max().unwrap_or(0)
    }

    #[test]
    fn trees_reach_configured_depth() {
        let out = generate(&Config { sentences: 4, max_depth: 20 }, 13);
        let doc = Document::parse(&out.xml).unwrap();
        let d = depth_of(doc.root());
        assert!(d >= 20, "depth {d} < 20");
    }

    #[test]
    fn words_manifest_matches_leaves() {
        let out = generate(&Config { sentences: 3, max_depth: 8 }, 13);
        let doc = Document::parse(&out.xml).unwrap();
        let text = doc.root().text();
        for word in &out.words {
            assert!(text.contains(word.as_str()));
        }
        assert!(!out.words.is_empty());
    }
}
