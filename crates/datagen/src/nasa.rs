//! Synthetic NASA astronomy dataset (used in §7.1.2's response-time
//! experiments: average keyword depth ~6.7–6.9).
//!
//! `<datasets>` → `<dataset subject>` → `<title>`, `<altname>*`,
//! `<author>*` (→ `<initial>`, `<lastName>`), `<keywords>` → `<keyword>*`,
//! `<history>` → `<creator>` → `<name>`, `<date>`; `<tableHead>` →
//! `<tableLinks>` → `<tableLink>*` — deliberately nested so text keywords
//! sit 5–7 levels deep.

use gks_xml::Writer;
use rand::Rng as _;

use crate::pools::{pick, title, FIRST_NAMES, LAST_NAMES, TOPIC_KEYWORDS};

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of `<dataset>` records.
    pub datasets: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config { datasets: 20 }
    }
}

/// Generator output.
#[derive(Debug, Clone)]
pub struct Output {
    /// The document.
    pub xml: String,
    /// Author last names planted.
    pub last_names: Vec<String>,
    /// Dataset titles.
    pub titles: Vec<String>,
}

/// Generates a NASA-like document.
pub fn generate(config: &Config, seed: u64) -> Output {
    let mut rng = crate::rng(seed);
    let mut w = Writer::new();
    w.start("datasets", &[]).expect("writer");
    let mut last_names = Vec::new();
    let mut titles = Vec::new();
    for i in 0..config.datasets {
        let n_title_words = rng.gen_range(4..=8);
        let t = title(&mut rng, n_title_words);
        w.start("dataset", &[("subject", "astronomy")]).expect("writer");
        w.element_text("title", &[], &t).expect("writer");
        for a in 0..rng.gen_range(0..=2) {
            w.element_text("altname", &[("type", "ADC")], &format!("ADC {i}-{a}"))
                .expect("writer");
        }
        for _ in 0..rng.gen_range(1..=4) {
            let first = pick(&mut rng, FIRST_NAMES);
            let last = pick(&mut rng, LAST_NAMES).to_string();
            w.start("author", &[]).expect("writer");
            w.element_text("initial", &[], &first[..1]).expect("writer");
            w.element_text("lastName", &[], &last).expect("writer");
            w.end().expect("writer");
            last_names.push(last);
        }
        w.start("keywords", &[("parentListURL", "http://example/kw")]).expect("writer");
        for _ in 0..rng.gen_range(2..=5) {
            w.element_text("keyword", &[], pick(&mut rng, TOPIC_KEYWORDS)).expect("writer");
        }
        w.end().expect("writer"); // keywords
        w.start("history", &[]).expect("writer");
        w.start("creator", &[]).expect("writer");
        w.element_text("name", &[], pick(&mut rng, LAST_NAMES)).expect("writer");
        w.element_text("date", &[], &format!("{}-01-01", rng.gen_range(1970..=2000)))
            .expect("writer");
        w.end().expect("writer"); // creator
        w.start("ingest", &[]).expect("writer");
        w.start("creator", &[]).expect("writer");
        w.element_text("name", &[], pick(&mut rng, LAST_NAMES)).expect("writer");
        w.end().expect("writer");
        w.element_text("date", &[], &format!("{}-06-15", rng.gen_range(2000..=2015)))
            .expect("writer");
        w.end().expect("writer"); // ingest
        w.end().expect("writer"); // history
        w.start("tableHead", &[]).expect("writer");
        w.start("tableLinks", &[]).expect("writer");
        for l in 0..rng.gen_range(1..=3) {
            w.element_text("tableLink", &[("href", &format!("tbl-{i}-{l}"))], "table")
                .expect("writer");
        }
        w.end().expect("writer"); // tableLinks
        w.end().expect("writer"); // tableHead
        w.end().expect("writer"); // dataset
        titles.push(t);
    }
    w.end().expect("writer");
    Output { xml: w.finish().expect("balanced"), last_names, titles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gks_xml::Document;

    #[test]
    fn structure_matches_nasa_shape() {
        let out = generate(&Config { datasets: 6 }, 17);
        let doc = Document::parse(&out.xml).unwrap();
        assert_eq!(doc.root().name(), "datasets");
        for ds in doc.root().element_children() {
            assert_eq!(ds.name(), "dataset");
            assert!(ds.child_element("title").is_some());
            assert!(ds.find_all("lastName").count() >= 1);
            assert!(ds.child_element("history").is_some());
        }
        assert_eq!(out.titles.len(), 6);
    }

    #[test]
    fn keywords_nested_several_levels() {
        let out = generate(&Config { datasets: 2 }, 17);
        // creator names sit at datasets/dataset/history/creator/name.
        let doc = Document::parse(&out.xml).unwrap();
        let ds = &doc.root().element_children()[0];
        let name = ds
            .child_element("history")
            .and_then(|h| h.child_element("creator"))
            .and_then(|c| c.child_element("name"));
        assert!(name.is_some());
    }
}
