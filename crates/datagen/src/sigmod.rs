//! Synthetic SIGMOD Record.
//!
//! `<SigmodRecord>` → `<issue>` (volume, number) → `<articles>` →
//! `<article>` → `<title>`, `<initPage>`, `<endPage>`, `<authors>` →
//! `<author>*`. The §7.2 discussion hinges on this shape: `<articles>` and
//! `<authors>` are connecting nodes, and single-author articles fail the
//! entity rule.

use gks_xml::Writer;
use rand::Rng as _;

use crate::pools::{person, title};

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of issues.
    pub issues: usize,
    /// Articles per issue (upper bound; actual count is 2..=max).
    pub max_articles_per_issue: usize,
    /// Probability of a single-author article.
    pub single_author_prob: f64,
}

impl Default for Config {
    fn default() -> Self {
        Config { issues: 10, max_articles_per_issue: 8, single_author_prob: 0.3 }
    }
}

/// Generator output.
#[derive(Debug, Clone)]
pub struct Output {
    /// The document.
    pub xml: String,
    /// Author lists per article, in document order.
    pub article_authors: Vec<Vec<String>>,
    /// Article titles, in document order.
    pub titles: Vec<String>,
}

/// Generates a SIGMOD-Record-like document.
pub fn generate(config: &Config, seed: u64) -> Output {
    let mut rng = crate::rng(seed);
    let mut w = Writer::new();
    w.start("SigmodRecord", &[]).expect("writer");
    let mut article_authors = Vec::new();
    let mut titles = Vec::new();
    for v in 0..config.issues {
        w.start("issue", &[]).expect("writer");
        w.element_text("volume", &[], &(11 + v).to_string()).expect("writer");
        w.element_text("number", &[], &(1 + v % 4).to_string()).expect("writer");
        w.start("articles", &[]).expect("writer");
        let n_articles = rng.gen_range(2..=config.max_articles_per_issue.max(2));
        let mut page = 1u32;
        for _ in 0..n_articles {
            let n_title_words = rng.gen_range(3..=8);
            let t = title(&mut rng, n_title_words);
            let n_authors = if rng.gen_bool(config.single_author_prob) {
                1
            } else {
                rng.gen_range(2..=5)
            };
            let mut authors = Vec::with_capacity(n_authors);
            while authors.len() < n_authors {
                let p = person(&mut rng);
                if !authors.contains(&p) {
                    authors.push(p);
                }
            }
            let len = rng.gen_range(6..=24);
            w.start("article", &[]).expect("writer");
            w.element_text("title", &[], &t).expect("writer");
            w.element_text("initPage", &[], &page.to_string()).expect("writer");
            w.element_text("endPage", &[], &(page + len).to_string()).expect("writer");
            w.start("authors", &[]).expect("writer");
            for (pos, a) in authors.iter().enumerate() {
                w.element_text("author", &[("position", &pos.to_string())], a).expect("writer");
            }
            w.end().expect("writer"); // authors
            w.end().expect("writer"); // article
            page += len + 1;
            article_authors.push(authors);
            titles.push(t);
        }
        w.end().expect("writer"); // articles
        w.end().expect("writer"); // issue
    }
    w.end().expect("writer");
    Output { xml: w.finish().expect("balanced"), article_authors, titles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gks_xml::Document;

    #[test]
    fn structure_matches_sigmod_shape() {
        let out = generate(&Config::default(), 21);
        let doc = Document::parse(&out.xml).unwrap();
        let root = doc.root();
        assert_eq!(root.name(), "SigmodRecord");
        let mut articles = 0;
        for issue in root.element_children() {
            assert_eq!(issue.name(), "issue");
            let arts = issue.child_element("articles").expect("articles container");
            for article in arts.element_children() {
                articles += 1;
                assert!(article.child_element("title").is_some());
                let authors = article.child_element("authors").expect("authors container");
                assert!(!authors.element_children().is_empty());
            }
        }
        assert_eq!(articles, out.article_authors.len());
        assert_eq!(articles, out.titles.len());
    }

    #[test]
    fn author_positions_present() {
        let out = generate(&Config::default(), 2);
        let doc = Document::parse(&out.xml).unwrap();
        let first_author = doc.root().find_all("author").next().unwrap();
        assert_eq!(first_author.attribute("position"), Some("0"));
    }
}
