//! Synthetic biological datasets: SwissProt, Protein Sequence, InterPro.
//!
//! * **SwissProt** — `<root>` → `<Entry id class mtype>` → `<AC>`, `<Mod>`,
//!   `<Descr>`, `<Species>`, `<Org>*`, `<Ref>*` (→ `<Author>*`, `<Cite>`),
//!   `<Keyword>*`, `<Features>` → `<DOMAIN>`/`<CHAIN>`* (→ `<Descr>`).
//! * **Protein Sequence** — `<ProteinDatabase>` → `<ProteinEntry>` →
//!   `<header>`, `<protein>`, `<organism>`, `<reference>*` → `<refinfo>` →
//!   `<authors>` → `<author>*`, `<citation>`.
//! * **InterPro** — `<interprodb>` → `<interpro id>` → `<name>`,
//!   `<abstract>`, `<pub_list>` → `<publication>*` (→ `<author_list>`,
//!   `<journal>`, `<year>`), `<taxonomy_distribution>` → `<taxon_data>*`
//!   (name / proteins_count as XML attributes) — the shape behind the
//!   paper's QI1/QI2 queries and their DI.

use gks_xml::Writer;
use rand::Rng as _;

use crate::pools::{person, pick, title, ORGANISMS, PROTEIN_STEMS, TAXA, TOPIC_KEYWORDS};

// ---------------------------------------------------------------- SwissProt

/// SwissProt generation parameters.
#[derive(Debug, Clone)]
pub struct SwissProtConfig {
    /// Number of `<Entry>` records.
    pub entries: usize,
}

impl Default for SwissProtConfig {
    fn default() -> Self {
        SwissProtConfig { entries: 25 }
    }
}

/// SwissProt output.
#[derive(Debug, Clone)]
pub struct BioOutput {
    /// The document.
    pub xml: String,
    /// Names planted in records (protein descriptions or entry names).
    pub names: Vec<String>,
    /// Author names planted in references.
    pub authors: Vec<String>,
    /// Years of publications in the 'Science' journal (InterPro only) —
    /// used to build the paper's QI2-style query.
    pub science_years: Vec<String>,
}

/// Generates a SwissProt-like document.
pub fn generate_swissprot(config: &SwissProtConfig, seed: u64) -> BioOutput {
    let mut rng = crate::rng(seed);
    let mut w = Writer::new();
    w.start("root", &[]).expect("writer");
    let mut names = Vec::new();
    let mut authors = Vec::new();
    for i in 0..config.entries {
        let descr = format!("{} {}", pick(&mut rng, PROTEIN_STEMS), pick(&mut rng, PROTEIN_STEMS));
        w.start(
            "Entry",
            &[
                ("id", &format!("P{i:05}")),
                (
                    "class",
                    if rng.gen_bool(0.8) {
                        "STANDARD"
                    } else {
                        "PRELIMINARY"
                    },
                ),
                ("mtype", "PRT"),
            ],
        )
        .expect("writer");
        w.element_text("AC", &[], &format!("Q{:05}", rng.gen_range(0..99999u32)))
            .expect("writer");
        w.element_text(
            "Mod",
            &[],
            &format!("{:02}-{}", rng.gen_range(1..=12), rng.gen_range(1990..=2015)),
        )
        .expect("writer");
        w.element_text("Descr", &[], &descr).expect("writer");
        w.element_text("Species", &[], pick(&mut rng, ORGANISMS)).expect("writer");
        for _ in 0..rng.gen_range(1..=3) {
            w.element_text("Org", &[], pick(&mut rng, TAXA)).expect("writer");
        }
        for r in 0..rng.gen_range(1..=3) {
            w.start("Ref", &[("num", &r.to_string())]).expect("writer");
            for _ in 0..rng.gen_range(1..=4) {
                let a = person(&mut rng);
                w.element_text("Author", &[], &a).expect("writer");
                authors.push(a);
            }
            w.element_text("Cite", &[], &title(&mut rng, 5)).expect("writer");
            w.end().expect("writer");
        }
        for _ in 0..rng.gen_range(1..=4) {
            w.element_text("Keyword", &[], pick(&mut rng, TOPIC_KEYWORDS)).expect("writer");
        }
        w.start("Features", &[]).expect("writer");
        for _ in 0..rng.gen_range(1..=3) {
            let kind = if rng.gen_bool(0.5) { "DOMAIN" } else { "CHAIN" };
            w.start(kind, &[]).expect("writer");
            w.element_text("Descr", &[], pick(&mut rng, TOPIC_KEYWORDS)).expect("writer");
            w.element_text("from", &[], &rng.gen_range(1..200).to_string()).expect("writer");
            w.element_text("to", &[], &rng.gen_range(200..999).to_string()).expect("writer");
            w.end().expect("writer");
        }
        w.end().expect("writer"); // Features
        w.end().expect("writer"); // Entry
        names.push(descr);
    }
    w.end().expect("writer");
    BioOutput { xml: w.finish().expect("balanced"), names, authors, science_years: Vec::new() }
}

// --------------------------------------------------------- Protein Sequence

/// Protein Sequence generation parameters.
#[derive(Debug, Clone)]
pub struct ProteinConfig {
    /// Number of `<ProteinEntry>` records.
    pub entries: usize,
}

impl Default for ProteinConfig {
    fn default() -> Self {
        ProteinConfig { entries: 25 }
    }
}

/// Generates a Protein-Sequence-Database-like document.
pub fn generate_protein(config: &ProteinConfig, seed: u64) -> BioOutput {
    let mut rng = crate::rng(seed);
    let mut w = Writer::new();
    w.start("ProteinDatabase", &[]).expect("writer");
    let mut names = Vec::new();
    let mut authors = Vec::new();
    for i in 0..config.entries {
        let name = format!("{} precursor", pick(&mut rng, PROTEIN_STEMS));
        w.start("ProteinEntry", &[("id", &format!("PE{i:05}"))]).expect("writer");
        w.start("header", &[]).expect("writer");
        w.element_text("uid", &[], &format!("U{i:06}")).expect("writer");
        w.element_text("accession", &[], &format!("A{:05}", rng.gen_range(0..99999u32)))
            .expect("writer");
        w.end().expect("writer");
        w.start("protein", &[]).expect("writer");
        w.element_text("name", &[], &name).expect("writer");
        w.element_text("classification", &[], pick(&mut rng, PROTEIN_STEMS))
            .expect("writer");
        w.end().expect("writer");
        w.start("organism", &[]).expect("writer");
        w.element_text("source", &[], pick(&mut rng, ORGANISMS)).expect("writer");
        w.end().expect("writer");
        for _ in 0..rng.gen_range(1..=3) {
            w.start("reference", &[]).expect("writer");
            w.start("refinfo", &[]).expect("writer");
            w.start("authors", &[]).expect("writer");
            for _ in 0..rng.gen_range(1..=4) {
                let a = person(&mut rng);
                w.element_text("author", &[], &a).expect("writer");
                authors.push(a);
            }
            w.end().expect("writer"); // authors
            w.element_text("citation", &[], &title(&mut rng, 6)).expect("writer");
            w.element_text("year", &[], &rng.gen_range(1980..=2015).to_string())
                .expect("writer");
            w.end().expect("writer"); // refinfo
            w.end().expect("writer"); // reference
        }
        w.end().expect("writer"); // ProteinEntry
        names.push(name);
    }
    w.end().expect("writer");
    BioOutput { xml: w.finish().expect("balanced"), names, authors, science_years: Vec::new() }
}

// ------------------------------------------------------------------ InterPro

/// InterPro generation parameters.
#[derive(Debug, Clone)]
pub struct InterProConfig {
    /// Number of `<interpro>` records.
    pub entries: usize,
}

impl Default for InterProConfig {
    fn default() -> Self {
        InterProConfig { entries: 25 }
    }
}

/// Generates an InterPro-like document.
pub fn generate_interpro(config: &InterProConfig, seed: u64) -> BioOutput {
    let mut rng = crate::rng(seed);
    let mut w = Writer::new();
    w.start("interprodb", &[]).expect("writer");
    let mut names = Vec::new();
    let mut authors = Vec::new();
    let mut science_years = Vec::new();
    for i in 0..config.entries {
        let name = format!("{} domain", pick(&mut rng, PROTEIN_STEMS));
        w.start("interpro", &[("id", &format!("IPR{i:06}")), ("type", "Domain")])
            .expect("writer");
        w.element_text("name", &[], &name).expect("writer");
        w.element_text("abstract", &[], &title(&mut rng, 12)).expect("writer");
        w.start("pub_list", &[]).expect("writer");
        for p in 0..rng.gen_range(1..=3) {
            w.start("publication", &[("id", &format!("PUB{i}-{p}"))]).expect("writer");
            w.start("author_list", &[]).expect("writer");
            for _ in 0..rng.gen_range(1..=3) {
                let a = person(&mut rng);
                w.element_text("author", &[], &a).expect("writer");
                authors.push(a);
            }
            w.end().expect("writer"); // author_list
            let journal = if rng.gen_bool(0.3) {
                "Science"
            } else {
                "J Mol Biol"
            };
            w.element_text("journal", &[], journal).expect("writer");
            let year = rng.gen_range(1995..=2010).to_string();
            w.element_text("year", &[], &year).expect("writer");
            if journal == "Science" {
                science_years.push(year);
            }
            w.end().expect("writer"); // publication
        }
        w.end().expect("writer"); // pub_list
        w.start("taxonomy_distribution", &[]).expect("writer");
        for _ in 0..rng.gen_range(1..=3) {
            let taxon = pick(&mut rng, TAXA);
            let count = rng.gen_range(1..500).to_string();
            w.empty("taxon_data", &[("name", taxon), ("proteins_count", count.as_str())])
                .expect("writer");
        }
        w.end().expect("writer"); // taxonomy_distribution
        w.end().expect("writer"); // interpro
        names.push(name);
    }
    w.end().expect("writer");
    BioOutput { xml: w.finish().expect("balanced"), names, authors, science_years }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gks_xml::Document;

    #[test]
    fn swissprot_structure() {
        let out = generate_swissprot(&SwissProtConfig { entries: 10 }, 5);
        let doc = Document::parse(&out.xml).unwrap();
        let entries: Vec<_> = doc.root().element_children();
        assert_eq!(entries.len(), 10);
        for e in entries {
            assert_eq!(e.name(), "Entry");
            assert!(e.attribute("id").is_some());
            assert!(e.child_element("Descr").is_some());
            assert!(e.find_all("Author").count() >= 1);
        }
        assert_eq!(out.names.len(), 10);
    }

    #[test]
    fn protein_structure() {
        let out = generate_protein(&ProteinConfig { entries: 8 }, 5);
        let doc = Document::parse(&out.xml).unwrap();
        assert_eq!(doc.root().name(), "ProteinDatabase");
        for e in doc.root().element_children() {
            assert_eq!(e.name(), "ProteinEntry");
            assert!(e.child_element("protein").is_some());
            assert!(e.find_all("author").count() >= 1);
        }
    }

    #[test]
    fn interpro_structure() {
        let out = generate_interpro(&InterProConfig { entries: 8 }, 5);
        let doc = Document::parse(&out.xml).unwrap();
        for e in doc.root().element_children() {
            assert_eq!(e.name(), "interpro");
            assert!(e.child_element("pub_list").is_some());
            let taxons: Vec<_> = e.find_all("taxon_data").collect();
            assert!(!taxons.is_empty());
            assert!(taxons[0].attribute("proteins_count").is_some());
        }
    }

    #[test]
    fn interpro_has_science_publications_for_qi2() {
        // The paper's QI2 = {Publication 2002 Science}; 'Science' must exist.
        let out = generate_interpro(&InterProConfig { entries: 40 }, 5);
        assert!(out.xml.contains("Science"));
    }
}
