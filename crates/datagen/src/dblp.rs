//! Synthetic DBLP (the paper's largest dataset).
//!
//! Flat bibliography: `<dblp>` → millions of `<article>`/`<inproceedings>`
//! records, each with `<title>`, 1–6 `<author>`s, `<year>` and a `<journal>`
//! or `<booktitle>`. Authorship uses *clusters*: small groups of authors who
//! repeatedly co-publish, so queries like the paper's Qd ("articles jointly
//! written by these authors") have non-trivial answers; about a third of the
//! records are single-author — the instances §7.2 reports as connecting
//! nodes.

use gks_xml::Writer;
use rand::Rng as _;

use crate::pools::{person, pick, title, BOOKTITLES, JOURNALS};

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of bibliography records.
    pub articles: usize,
    /// Number of co-author clusters.
    pub clusters: usize,
    /// Authors per cluster.
    pub cluster_size: usize,
    /// Probability of a single-author record.
    pub single_author_prob: f64,
}

impl Default for Config {
    fn default() -> Self {
        Config { articles: 100, clusters: 12, cluster_size: 5, single_author_prob: 0.33 }
    }
}

/// One generated record, mirrored into the manifest.
#[derive(Debug, Clone)]
pub struct Record {
    /// Record authors in order.
    pub authors: Vec<String>,
    /// Publication year.
    pub year: u32,
    /// Journal or booktitle value.
    pub venue: String,
}

/// Generator output: XML plus the manifest experiments build queries from.
#[derive(Debug, Clone)]
pub struct Output {
    /// The `<dblp>` document.
    pub xml: String,
    /// Author pools per cluster (co-publishing groups).
    pub clusters: Vec<Vec<String>>,
    /// Every generated record.
    pub records: Vec<Record>,
}

/// Generates a DBLP-like document.
pub fn generate(config: &Config, seed: u64) -> Output {
    let mut rng = crate::rng(seed);
    // Build disjoint-ish author clusters.
    let mut clusters: Vec<Vec<String>> = Vec::with_capacity(config.clusters);
    for _ in 0..config.clusters.max(1) {
        let mut members = Vec::with_capacity(config.cluster_size.max(1));
        while members.len() < config.cluster_size.max(1) {
            let p = person(&mut rng);
            if !members.contains(&p) {
                members.push(p);
            }
        }
        clusters.push(members);
    }

    let mut w = Writer::new();
    w.start("dblp", &[]).expect("writer");
    let mut records = Vec::with_capacity(config.articles);
    for i in 0..config.articles {
        let cluster = &clusters[rng.gen_range(0..clusters.len())];
        let n_authors = if rng.gen_bool(config.single_author_prob) {
            1
        } else {
            rng.gen_range(2..=cluster.len().clamp(2, 6))
        };
        // Draw distinct authors from the cluster.
        let mut authors: Vec<String> = Vec::with_capacity(n_authors);
        let mut offset = rng.gen_range(0..cluster.len());
        while authors.len() < n_authors.min(cluster.len()) {
            let a = &cluster[offset % cluster.len()];
            if !authors.contains(a) {
                authors.push(a.clone());
            }
            offset += 1;
        }
        let year = rng.gen_range(1990..=2015);
        let kind = if rng.gen_bool(0.5) {
            "inproceedings"
        } else {
            "article"
        };
        let venue = if kind == "article" {
            pick(&mut rng, JOURNALS).to_string()
        } else {
            pick(&mut rng, BOOKTITLES).to_string()
        };

        w.start(kind, &[("key", &format!("rec/{i}"))]).expect("writer");
        let n_title_words = rng.gen_range(3..=7);
        w.element_text("title", &[], &title(&mut rng, n_title_words)).expect("writer");
        for a in &authors {
            w.element_text("author", &[], a).expect("writer");
        }
        w.element_text("year", &[], &year.to_string()).expect("writer");
        let venue_tag = if kind == "article" {
            "journal"
        } else {
            "booktitle"
        };
        w.element_text(venue_tag, &[], &venue).expect("writer");
        w.element_text("pages", &[], &format!("{}-{}", i * 3 + 1, i * 3 + 12))
            .expect("writer");
        w.end().expect("writer");
        records.push(Record { authors, year, venue });
    }
    w.end().expect("writer");
    Output { xml: w.finish().expect("balanced"), clusters, records }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gks_xml::Document;

    #[test]
    fn structure_matches_dblp_shape() {
        let out = generate(&Config { articles: 50, ..Default::default() }, 11);
        let doc = Document::parse(&out.xml).unwrap();
        let root = doc.root();
        assert_eq!(root.name(), "dblp");
        assert_eq!(root.element_children().len(), 50);
        for rec in root.element_children() {
            assert!(matches!(rec.name(), "article" | "inproceedings"));
            assert!(rec.child_element("title").is_some());
            assert!(rec.find_all("author").count() >= 1);
        }
    }

    #[test]
    fn manifest_matches_document() {
        let out = generate(&Config { articles: 30, ..Default::default() }, 3);
        let doc = Document::parse(&out.xml).unwrap();
        let recs: Vec<_> = doc.root().element_children();
        assert_eq!(recs.len(), out.records.len());
        for (node, rec) in recs.iter().zip(&out.records) {
            let authors: Vec<String> = node.find_all("author").map(|a| a.text()).collect();
            assert_eq!(&authors, &rec.authors);
        }
    }

    #[test]
    fn has_single_and_multi_author_records() {
        let out = generate(&Config { articles: 100, ..Default::default() }, 5);
        let singles = out.records.iter().filter(|r| r.authors.len() == 1).count();
        let multis = out.records.iter().filter(|r| r.authors.len() >= 2).count();
        assert!(singles > 5, "{singles}");
        assert!(multis > 5, "{multis}");
    }

    #[test]
    fn clusters_coauthor_repeatedly() {
        let out = generate(&Config { articles: 200, ..Default::default() }, 9);
        // Some pair of authors must appear together in at least two records.
        let mut pair_counts: std::collections::HashMap<(String, String), u32> =
            std::collections::HashMap::new();
        for r in &out.records {
            for i in 0..r.authors.len() {
                for j in (i + 1)..r.authors.len() {
                    let mut key = [r.authors[i].clone(), r.authors[j].clone()];
                    key.sort();
                    *pair_counts.entry((key[0].clone(), key[1].clone())).or_insert(0) += 1;
                }
            }
        }
        assert!(pair_counts.values().any(|&c| c >= 2));
    }
}
