//! Seeded synthetic XML corpora mirroring the GKS paper's datasets.
//!
//! The paper evaluates on real repositories from the University of
//! Washington XML repository (DBLP, SIGMOD Record, Mondial, TreeBank,
//! SwissProt, Protein Sequence, InterPro, NASA, Shakespeare's plays). Those
//! files are not available here, so each generator reproduces the *schema
//! shape* that drives every algorithm in this workspace — element
//! vocabulary, nesting depth, sibling repetition, single- vs multi-child
//! records — at a configurable scale, deterministically from a seed.
//!
//! Each generator returns the XML plus a small *manifest* of the entities it
//! planted (author names, course/country names, co-author groups …), which
//! the experiment harness uses to build queries analogous to the paper's
//! Table 6 without peeking into the index.

// Not an engine library crate: unwrap/expect on deterministic, known-good
// data is acceptable here. The hard panic-free rule is scoped to the
// engine crates and enforced by `cargo xtask lint` (see docs/ANALYSIS.md).
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod bio;
pub mod dblp;
pub mod merge;
pub mod mondial;
pub mod nasa;
pub mod pools;
pub mod shakespeare;
pub mod sigmod;
pub mod treebank;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The deterministic RNG used by all generators.
pub type Rng = StdRng;

/// Creates the generator RNG for a seed.
pub fn rng(seed: u64) -> Rng {
    StdRng::seed_from_u64(seed)
}

/// Descriptor of one synthetic dataset at a given scale, used by the
/// Table 4/5 experiments to iterate "all datasets".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// SIGMOD Record: issues → articles → authors.
    SigmodRecord,
    /// Mondial: countries/provinces/cities, payload in XML attributes.
    Mondial,
    /// Shakespeare's plays: acts/scenes/speeches.
    Plays,
    /// TreeBank: very deep parse trees.
    TreeBank,
    /// SwissProt: protein entries with references and features.
    SwissProt,
    /// Protein Sequence Database.
    ProteinSequence,
    /// DBLP bibliography.
    Dblp,
    /// NASA astronomy datasets.
    Nasa,
    /// InterPro protein families.
    InterPro,
}

impl Dataset {
    /// The paper's display name (Table 4).
    pub fn name(self) -> &'static str {
        match self {
            Dataset::SigmodRecord => "SIGMOD Record",
            Dataset::Mondial => "Mondial",
            Dataset::Plays => "Plays",
            Dataset::TreeBank => "TreeBank",
            Dataset::SwissProt => "SwissProt",
            Dataset::ProteinSequence => "Protein Sequence",
            Dataset::Dblp => "DBLP",
            Dataset::Nasa => "NASA",
            Dataset::InterPro => "InterPro",
        }
    }

    /// All datasets in the paper's Table 4 order (NASA and InterPro, used in
    /// §7.1.2/§7.3, appended).
    pub fn all() -> [Dataset; 9] {
        [
            Dataset::SigmodRecord,
            Dataset::Mondial,
            Dataset::Plays,
            Dataset::TreeBank,
            Dataset::SwissProt,
            Dataset::ProteinSequence,
            Dataset::Dblp,
            Dataset::Nasa,
            Dataset::InterPro,
        ]
    }

    /// Generates this dataset's XML at roughly `scale` records with the
    /// given seed (what a "record" is depends on the dataset; sizes grow
    /// linearly in `scale`).
    pub fn generate(self, scale: usize, seed: u64) -> String {
        match self {
            Dataset::SigmodRecord => {
                sigmod::generate(
                    &sigmod::Config { issues: scale.max(1), ..Default::default() },
                    seed,
                )
                .xml
            }
            Dataset::Mondial => {
                mondial::generate(
                    &mondial::Config { countries: scale.max(1), ..Default::default() },
                    seed,
                )
                .xml
            }
            Dataset::Plays => {
                shakespeare::generate(
                    &shakespeare::Config { plays: scale.max(1), ..Default::default() },
                    seed,
                )
                .xml
            }
            Dataset::TreeBank => {
                treebank::generate(
                    &treebank::Config { sentences: scale.max(1), ..Default::default() },
                    seed,
                )
                .xml
            }
            Dataset::SwissProt => {
                bio::generate_swissprot(&bio::SwissProtConfig { entries: scale.max(1) }, seed).xml
            }
            Dataset::ProteinSequence => {
                bio::generate_protein(&bio::ProteinConfig { entries: scale.max(1) }, seed).xml
            }
            Dataset::Dblp => {
                dblp::generate(&dblp::Config { articles: scale.max(1), ..Default::default() }, seed)
                    .xml
            }
            Dataset::Nasa => nasa::generate(&nasa::Config { datasets: scale.max(1) }, seed).xml,
            Dataset::InterPro => {
                bio::generate_interpro(&bio::InterProConfig { entries: scale.max(1) }, seed).xml
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_generate_well_formed_xml() {
        for ds in Dataset::all() {
            let xml = ds.generate(3, 42);
            gks_xml::Document::parse(&xml).unwrap_or_else(|e| panic!("{}: {e}", ds.name()));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for ds in Dataset::all() {
            assert_eq!(ds.generate(3, 7), ds.generate(3, 7), "{}", ds.name());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::Dblp.generate(5, 1);
        let b = Dataset::Dblp.generate(5, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn size_grows_with_scale() {
        for ds in Dataset::all() {
            let small = ds.generate(2, 3).len();
            let large = ds.generate(20, 3).len();
            assert!(large > small * 3, "{}: {small} -> {large}", ds.name());
        }
    }
}
