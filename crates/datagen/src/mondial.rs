//! Synthetic Mondial (geographic database).
//!
//! Mondial is the attribute-heavy dataset: countries carry `car_code`/`name`
//! as XML attributes, demographics are repeated elements with `percentage`
//! attributes, and provinces nest cities. Exercises the indexer's
//! XML-attribute lifting and the paper's QM* queries (`country Muslim`,
//! `Laos country name`, …).

use gks_xml::Writer;
use rand::Rng as _;

use crate::pools::{
    pick, CITY_STEMS, CITY_SUFFIXES, COUNTRIES, ETHNIC_GROUPS, LANGUAGES, RELIGIONS,
};

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of countries (cycled through the country pool with numeric
    /// suffixes when exceeding it).
    pub countries: usize,
    /// Max provinces per country.
    pub max_provinces: usize,
    /// Max cities per province.
    pub max_cities: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config { countries: 20, max_provinces: 4, max_cities: 5 }
    }
}

/// Generator output.
#[derive(Debug, Clone)]
pub struct Output {
    /// The document.
    pub xml: String,
    /// Country names in document order.
    pub countries: Vec<String>,
    /// (country, religion) pairs planted.
    pub religions: Vec<(String, String)>,
    /// All city names.
    pub cities: Vec<String>,
}

/// Generates a Mondial-like document.
pub fn generate(config: &Config, seed: u64) -> Output {
    let mut rng = crate::rng(seed);
    let mut w = Writer::new();
    w.start("mondial", &[]).expect("writer");
    let mut countries = Vec::new();
    let mut religions = Vec::new();
    let mut cities = Vec::new();
    for i in 0..config.countries {
        let base = COUNTRIES[i % COUNTRIES.len()];
        let name = if i < COUNTRIES.len() {
            base.to_string()
        } else {
            format!("{base}{}", i / COUNTRIES.len())
        };
        let car_code: String = name.chars().take(2).collect::<String>().to_uppercase();
        w.start(
            "country",
            &[
                ("car_code", car_code.as_str()),
                ("name", name.as_str()),
                ("capital", &format!("cty-{i}-0")),
            ],
        )
        .expect("writer");
        w.element_text("name", &[], &name).expect("writer");
        w.element_text("population", &[], &rng.gen_range(100_000..80_000_000).to_string())
            .expect("writer");
        w.element_text("population_growth", &[], &format!("{:.2}", rng.gen_range(-1.0..4.0)))
            .expect("writer");

        for _ in 0..rng.gen_range(1..=3) {
            let pct = format!("{:.1}", rng.gen_range(1.0..100.0));
            w.element_text(
                "ethnicgroups",
                &[("percentage", pct.as_str())],
                pick(&mut rng, ETHNIC_GROUPS),
            )
            .expect("writer");
        }
        for _ in 0..rng.gen_range(1..=3) {
            let religion = pick(&mut rng, RELIGIONS).to_string();
            let pct = format!("{:.1}", rng.gen_range(1.0..100.0));
            w.element_text("religions", &[("percentage", pct.as_str())], &religion)
                .expect("writer");
            religions.push((name.clone(), religion));
        }
        for _ in 0..rng.gen_range(1..=3) {
            let pct = format!("{:.1}", rng.gen_range(1.0..100.0));
            w.element_text("languages", &[("percentage", pct.as_str())], pick(&mut rng, LANGUAGES))
                .expect("writer");
        }

        for p in 0..rng.gen_range(1..=config.max_provinces.max(1)) {
            w.start("province", &[("id", &format!("prov-{i}-{p}"))]).expect("writer");
            w.element_text("name", &[], &format!("{name} Province {p}")).expect("writer");
            for c in 0..rng.gen_range(1..=config.max_cities.max(1)) {
                let city =
                    format!("{}{}", pick(&mut rng, CITY_STEMS), pick(&mut rng, CITY_SUFFIXES));
                w.start("city", &[("id", &format!("cty-{i}-{p}-{c}"))]).expect("writer");
                w.element_text("name", &[], &city).expect("writer");
                w.element_text("population", &[], &rng.gen_range(1_000..5_000_000).to_string())
                    .expect("writer");
                w.end().expect("writer"); // city
                cities.push(city);
            }
            w.end().expect("writer"); // province
        }
        w.end().expect("writer"); // country
        countries.push(name);
    }
    w.end().expect("writer");
    Output { xml: w.finish().expect("balanced"), countries, religions, cities }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gks_xml::Document;

    #[test]
    fn structure_matches_mondial_shape() {
        let out = generate(&Config::default(), 31);
        let doc = Document::parse(&out.xml).unwrap();
        let root = doc.root();
        assert_eq!(root.name(), "mondial");
        assert_eq!(root.element_children().len(), out.countries.len());
        for country in root.element_children() {
            assert!(country.attribute("car_code").is_some());
            assert!(country.attribute("name").is_some());
            assert!(country.child_element("province").is_some());
            assert!(country.find_all("city").count() >= 1);
        }
    }

    #[test]
    fn religions_manifest_is_accurate() {
        let out = generate(&Config::default(), 7);
        let doc = Document::parse(&out.xml).unwrap();
        let total: usize = doc.root().find_all("religions").count();
        assert_eq!(total, out.religions.len());
    }

    #[test]
    fn country_pool_wraps_with_suffixes() {
        let out = generate(&Config { countries: 35, ..Default::default() }, 1);
        assert_eq!(out.countries.len(), 35);
        assert!(out.countries.iter().any(|c| c.ends_with('1')), "{:?}", &out.countries[30..]);
    }
}
