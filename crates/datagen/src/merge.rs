//! Corpus merging for the hybrid-query experiments (paper §7.6).
//!
//! "We merged DBLP and Sigmod Record datasets into a single dataset (with a
//! 'common root'). We also increased the depth of Sigmod Record elements by
//! introducing two connecting nodes between the 'common root' and the root
//! of Sigmod Record data."

/// A part of a merged document: its wrapper element name, the source XML,
/// and how many padding connecting nodes to insert above it.
#[derive(Debug, Clone)]
pub struct MergePart<'a> {
    /// The wrapper element around this part's content.
    pub wrapper: &'a str,
    /// A complete XML document whose root element is unwrapped into the
    /// wrapper.
    pub xml: &'a str,
    /// Number of `<padN>` connecting nodes inserted above the wrapper.
    pub pad_levels: usize,
}

/// Strips the outermost element of a document, returning its inner content.
/// Panics on input without a root element (generator output always has one).
pub fn strip_root(xml: &str) -> &str {
    let open_end = xml.find('>').expect("root open tag");
    let Some(close_start) = xml.rfind("</") else {
        return ""; // self-closing root: <a/>
    };
    if open_end + 1 > close_start {
        return ""; // empty root
    }
    &xml[open_end + 1..close_start]
}

/// Merges several documents under one `<merged>` root, optionally padding
/// parts with extra connecting levels.
pub fn merge_under_root(parts: &[MergePart<'_>]) -> String {
    let mut out = String::from("<merged>");
    for part in parts {
        for level in 0..part.pad_levels {
            out.push_str(&format!("<pad{}>", level + 1));
        }
        out.push('<');
        out.push_str(part.wrapper);
        out.push('>');
        out.push_str(strip_root(part.xml));
        out.push_str("</");
        out.push_str(part.wrapper);
        out.push('>');
        for level in (0..part.pad_levels).rev() {
            out.push_str(&format!("</pad{}>", level + 1));
        }
    }
    out.push_str("</merged>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gks_xml::Document;

    #[test]
    fn strip_root_basics() {
        assert_eq!(strip_root("<a><b>x</b></a>"), "<b>x</b>");
        assert_eq!(strip_root("<a/>"), "");
        assert_eq!(strip_root("<a></a>"), "");
        assert_eq!(strip_root("<a attr=\"v\">text</a>"), "text");
    }

    #[test]
    fn merged_document_is_well_formed_and_padded() {
        let d1 = "<dblp><article><title>T</title></article></dblp>";
        let d2 = "<SigmodRecord><issue><volume>11</volume></issue></SigmodRecord>";
        let merged = merge_under_root(&[
            MergePart { wrapper: "dblp", xml: d1, pad_levels: 0 },
            MergePart { wrapper: "SigmodRecord", xml: d2, pad_levels: 2 },
        ]);
        let doc = Document::parse(&merged).unwrap();
        assert_eq!(doc.root().name(), "merged");
        assert!(doc.root().child_element("dblp").is_some());
        // The SIGMOD side sits two connecting levels deeper.
        let pad1 = doc.root().child_element("pad1").unwrap();
        let pad2 = pad1.child_element("pad2").unwrap();
        assert!(pad2.child_element("SigmodRecord").is_some());
    }
}
