//! Shared vocabulary pools for the generators.
//!
//! All pools are fixed arrays so that generation is deterministic given a
//! seed, and so that experiment queries can reference values that are
//! guaranteed to exist (e.g. author names are `first last` pairs drawn from
//! these pools).

use rand::Rng as _;

use crate::Rng;

/// First names for synthetic people.
pub static FIRST_NAMES: &[&str] = &[
    "Ada", "Alan", "Barbara", "Claude", "Dana", "Edgar", "Frances", "Grace", "Hedy", "Ivan", "Jim",
    "Karen", "Leslie", "Maurice", "Niklaus", "Ole", "Peter", "Radia", "Stephen", "Tim", "Ursula",
    "Vint", "Wenfei", "Xavier", "Yvonne", "Zohar", "Manoj", "Krithi", "Prashant", "Divesh",
    "Nicolas", "Serge", "Victor", "Hector", "Jennifer", "Jeffrey", "Rakesh", "Ramez", "Shamkant",
    "Michael", "David", "Donald", "Raghu", "Johannes", "Surajit", "Moshe", "Dan", "Mary", "Susan",
    "Laura",
];

/// Last names for synthetic people.
pub static LAST_NAMES: &[&str] = &[
    "Lovelace",
    "Turing",
    "Liskov",
    "Shannon",
    "Scott",
    "Codd",
    "Allen",
    "Hopper",
    "Lamarr",
    "Sutherland",
    "Gray",
    "Jones",
    "Lamport",
    "Wilkes",
    "Wirth",
    "Madsen",
    "Buneman",
    "Perlman",
    "Cook",
    "Lee",
    "Franklin",
    "Cerf",
    "Fan",
    "Leroy",
    "Choquet",
    "Manna",
    "Agarwal",
    "Ramamritham",
    "Mehta",
    "Srivastava",
    "Bruno",
    "Abiteboul",
    "Vianu",
    "Garcia-Molina",
    "Widom",
    "Ullman",
    "Agrawal",
    "Elmasri",
    "Navathe",
    "Stonebraker",
    "DeWitt",
    "Knuth",
    "Ramakrishnan",
    "Gehrke",
    "Chaudhuri",
    "Vardi",
    "Suciu",
    "Shaw",
    "Davidson",
    "Haas",
];

/// Words used in titles, abstracts and descriptions.
pub static TITLE_WORDS: &[&str] = &[
    "efficient",
    "keyword",
    "search",
    "xml",
    "data",
    "query",
    "processing",
    "index",
    "semantic",
    "ranking",
    "schema",
    "semistructured",
    "optimization",
    "join",
    "twig",
    "holistic",
    "stream",
    "distributed",
    "parallel",
    "adaptive",
    "incremental",
    "approximate",
    "probabilistic",
    "graph",
    "tree",
    "pattern",
    "matching",
    "integration",
    "warehouse",
    "transaction",
    "recovery",
    "concurrency",
    "scalable",
    "declarative",
    "relational",
    "temporal",
    "spatial",
    "mining",
    "learning",
    "clustering",
    "classification",
    "skyline",
    "provenance",
    "view",
    "materialized",
    "cache",
    "partition",
    "replication",
    "consistency",
];

/// Journal names (DBLP-style).
pub static JOURNALS: &[&str] = &[
    "SIGMOD Record",
    "TODS",
    "VLDB Journal",
    "TKDE",
    "Information Systems",
    "JACM",
    "TCS",
    "IBM Research Report",
    "Computing Surveys",
    "Data Engineering Bulletin",
];

/// Conference names (DBLP booktitle-style).
pub static BOOKTITLES: &[&str] =
    &["SIGMOD", "VLDB", "ICDE", "EDBT", "ICDT", "CIKM", "WWW", "KDD", "PODS", "ICPP"];

/// Country names for Mondial.
pub static COUNTRIES: &[&str] = &[
    "Albania",
    "Bolivia",
    "Cambodia",
    "Denmark",
    "Ecuador",
    "Finland",
    "Ghana",
    "Hungary",
    "Iceland",
    "Jordan",
    "Kenya",
    "Laos",
    "Morocco",
    "Nepal",
    "Oman",
    "Peru",
    "Qatar",
    "Romania",
    "Senegal",
    "Thailand",
    "Uganda",
    "Vietnam",
    "Yemen",
    "Zimbabwe",
    "Luxembourg",
    "Belgium",
    "Austria",
    "Chile",
    "Estonia",
    "Fiji",
];

/// City name stems for Mondial.
pub static CITY_STEMS: &[&str] = &[
    "Port", "New", "Old", "Upper", "Lower", "East", "West", "North", "South", "Grand", "Little",
    "Fort", "Lake", "Mount", "Saint",
];

/// City name suffixes for Mondial.
pub static CITY_SUFFIXES: &[&str] = &[
    "ville", "burg", "ton", "ford", "haven", "field", "bridge", "stad", "minster", "mouth",
];

/// Religions for Mondial.
pub static RELIGIONS: &[&str] = &[
    "Muslim",
    "Catholic",
    "Protestant",
    "Orthodox",
    "Buddhism",
    "Hinduism",
    "Christianity",
    "Jewish",
    "Anglican",
    "Shinto",
];

/// Languages for Mondial.
pub static LANGUAGES: &[&str] = &[
    "Polish",
    "Spanish",
    "German",
    "French",
    "Thai",
    "Chinese",
    "Arabic",
    "Hindi",
    "Swahili",
    "Portuguese",
    "Dutch",
    "Khmer",
    "Lao",
];

/// Ethnic groups for Mondial.
pub static ETHNIC_GROUPS: &[&str] = &[
    "Albanian", "Greek", "Quechua", "Mestizo", "Khmer", "Dane", "Finn", "Magyar", "Berber",
    "Sherpa", "Akan", "Kikuyu",
];

/// Protein / gene style tokens for the bio datasets.
pub static PROTEIN_STEMS: &[&str] = &[
    "kinase", "globin", "ferritin", "actin", "myosin", "tubulin", "histone", "collagen", "insulin",
    "albumin", "keratin", "elastin", "lysozyme", "pepsin", "trypsin", "amylase",
];

/// Organism names for the bio datasets.
pub static ORGANISMS: &[&str] = &[
    "Homo sapiens",
    "Mus musculus",
    "Escherichia coli",
    "Saccharomyces cerevisiae",
    "Drosophila melanogaster",
    "Arabidopsis thaliana",
    "Danio rerio",
    "Rattus norvegicus",
    "Caenorhabditis elegans",
    "Bacillus subtilis",
];

/// Taxonomy groups for InterPro.
pub static TAXA: &[&str] = &[
    "Eukaryota",
    "Bacteria",
    "Archaea",
    "Viruses",
    "Metazoa",
    "Fungi",
    "Viridiplantae",
];

/// Keywords for SwissProt/NASA keyword lists.
pub static TOPIC_KEYWORDS: &[&str] = &[
    "transferase",
    "hydrolase",
    "membrane",
    "nuclear",
    "cytoplasm",
    "signal",
    "receptor",
    "transport",
    "binding",
    "repeat",
    "zinc",
    "iron",
    "calcium",
    "photometry",
    "spectroscopy",
    "astrometry",
    "radial",
    "velocity",
    "magnitude",
    "parallax",
];

/// Penn-Treebank-style part-of-speech / phrase labels.
pub static TREEBANK_LABELS: &[&str] =
    &["S", "NP", "VP", "PP", "SBAR", "ADJP", "ADVP", "WHNP", "PRT", "INTJ"];

/// English filler words for TreeBank leaves and Shakespeare lines.
pub static FILLER_WORDS: &[&str] = &[
    "time", "king", "heart", "night", "day", "love", "death", "crown", "sword", "ghost", "honor",
    "blood", "storm", "castle", "letter", "witch", "throne", "battle", "prince", "queen", "fool",
    "grave", "poison", "dream", "shadow", "mercy", "justice", "truth",
];

/// Play titles.
pub static PLAY_TITLES: &[&str] = &[
    "The Tragedy of Hamlet",
    "Macbeth",
    "King Lear",
    "Othello",
    "The Tempest",
    "Julius Caesar",
    "Richard III",
    "Twelfth Night",
    "As You Like It",
    "The Winters Tale",
];

/// Picks one element of a pool.
pub fn pick<'a>(rng: &mut Rng, pool: &[&'a str]) -> &'a str {
    pool[rng.gen_range(0..pool.len())]
}

/// A synthetic person name.
pub fn person(rng: &mut Rng) -> String {
    format!("{} {}", pick(rng, FIRST_NAMES), pick(rng, LAST_NAMES))
}

/// A title of `words` random title words, capitalized.
pub fn title(rng: &mut Rng, words: usize) -> String {
    let mut out = String::new();
    for i in 0..words {
        if i > 0 {
            out.push(' ');
        }
        let w = pick(rng, TITLE_WORDS);
        // Capitalize the first word.
        if i == 0 {
            let mut c = w.chars();
            if let Some(first) = c.next() {
                out.extend(first.to_uppercase());
                out.push_str(c.as_str());
            }
        } else {
            out.push_str(w);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn person_and_title_are_deterministic() {
        let mut a = crate::rng(5);
        let mut b = crate::rng(5);
        assert_eq!(person(&mut a), person(&mut b));
        assert_eq!(title(&mut a, 4), title(&mut b, 4));
    }

    #[test]
    fn title_has_requested_word_count() {
        let mut r = crate::rng(1);
        let t = title(&mut r, 5);
        assert_eq!(t.split(' ').count(), 5);
        assert!(t.chars().next().unwrap().is_uppercase());
    }

    #[test]
    fn pools_are_non_trivial() {
        assert!(FIRST_NAMES.len() >= 32);
        assert!(LAST_NAMES.len() >= 32);
        assert!(TITLE_WORDS.len() >= 32);
    }
}
