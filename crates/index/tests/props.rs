//! Property tests of the index builder's structural invariants over random
//! documents.

use gks_dewey::{DeweyId, DocId};
use gks_index::{Corpus, GksIndex, IndexOptions};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Tree {
    Leaf(String),
    Node {
        label: String,
        attrs: Vec<(String, String)>,
        children: Vec<Tree>,
    },
}

fn arb_word() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["alpha", "beta", "gamma", "delta"]).prop_map(str::to_string)
}

fn arb_label() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["item", "name", "grp", "rec"]).prop_map(str::to_string)
}

fn arb_tree() -> impl Strategy<Value = Tree> {
    let leaf = arb_word().prop_map(Tree::Leaf);
    leaf.prop_recursive(4, 48, 4, |inner| {
        (
            arb_label(),
            prop::collection::vec((prop::sample::select(vec!["k1", "k2"]), arb_word()), 0..2),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(label, attrs, children)| Tree::Node {
                label,
                attrs: attrs.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
                children,
            })
    })
}

fn to_xml(tree: &Tree, out: &mut String) {
    match tree {
        Tree::Leaf(w) => {
            out.push_str("<w>");
            out.push_str(w);
            out.push_str("</w>");
        }
        Tree::Node { label, attrs, children } => {
            out.push('<');
            out.push_str(label);
            for (k, v) in attrs {
                out.push_str(&format!(" {k}=\"{v}\""));
            }
            out.push('>');
            for c in children {
                to_xml(c, out);
            }
            out.push_str("</");
            out.push_str(label);
            out.push('>');
        }
    }
}

fn build(tree: &Tree) -> GksIndex {
    let mut xml = String::from("<root>");
    to_xml(tree, &mut xml);
    xml.push_str("</root>");
    let corpus = Corpus::from_named_strs([("t", xml)]).unwrap();
    GksIndex::build(&corpus, IndexOptions::default()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Posting lists are sorted, deduplicated, and every posting's node is
    /// in the node table.
    #[test]
    fn postings_are_sorted_and_anchored(tree in arb_tree()) {
        let ix = build(&tree);
        for (term, list) in ix.inverted().iter() {
            prop_assert!(
                list.windows(2).all(|w| w[0] < w[1]),
                "{term} postings unsorted/duplicated"
            );
            for id in list {
                prop_assert!(
                    ix.node_table().get(id).is_some(),
                    "{term} posting {id} not in node table"
                );
            }
        }
    }

    /// The census counts every node exactly once, and the per-label census
    /// sums to the same total.
    #[test]
    fn census_is_a_partition(tree in arb_tree()) {
        let ix = build(&tree);
        let s = ix.stats();
        prop_assert_eq!(s.census.total(), s.total_nodes);
        prop_assert_eq!(s.total_nodes as usize, ix.node_table().len());
        let per_label: u64 = s.per_label.values().map(|c| c.total()).sum();
        prop_assert_eq!(per_label, s.total_nodes);
    }

    /// Every node's ancestors are present; child counts are ≥ 1; flags make
    /// sense (text-only nodes are AN or RN, never EN).
    #[test]
    fn node_table_is_closed_and_flagged(tree in arb_tree()) {
        let ix = build(&tree);
        for (dewey, meta) in ix.node_table().iter() {
            prop_assert!(meta.child_count >= 1, "{dewey} child_count 0");
            for anc in dewey.ancestors() {
                prop_assert!(ix.node_table().get(&anc).is_some(), "{dewey} missing ancestor");
            }
            if meta.flags.is_text_only() {
                prop_assert!(!meta.flags.is_entity(), "{dewey} text-only entity");
                prop_assert!(
                    meta.flags.is_attribute() ^ meta.flags.is_repeating(),
                    "{dewey} text-only must be exactly AN or RN"
                );
            }
        }
    }

    /// Attribute-store entries only hang off entity-flagged nodes, with
    /// non-empty values and valid label paths.
    #[test]
    fn attr_store_is_consistent(tree in arb_tree()) {
        let ix = build(&tree);
        let label_count = ix.node_table().labels().len() as u32;
        for (entity, entries) in ix.attr_store().iter() {
            let meta = ix.node_table().get(entity).expect("entity recorded");
            prop_assert!(meta.flags.is_entity(), "{entity} has attrs but is not EN");
            for e in entries {
                prop_assert!(!e.path.is_empty());
                prop_assert!(e.path.iter().all(|&l| l < label_count));
                prop_assert!(!e.value.is_empty());
            }
        }
    }

    /// Persistence round trip preserves the whole index.
    #[test]
    fn persistence_round_trip(tree in arb_tree()) {
        let ix = build(&tree);
        let loaded = GksIndex::from_bytes(ix.to_bytes()).unwrap();
        prop_assert_eq!(loaded.node_table().len(), ix.node_table().len());
        prop_assert_eq!(loaded.stats().census, ix.stats().census);
        for (term, list) in ix.inverted().iter() {
            prop_assert_eq!(loaded.postings(term), list);
        }
    }

    /// Sequential and parallel builds agree on a multi-document corpus.
    #[test]
    fn parallel_build_agrees(trees in prop::collection::vec(arb_tree(), 2..5)) {
        let docs: Vec<(String, String)> = trees
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let mut xml = String::from("<root>");
                to_xml(t, &mut xml);
                xml.push_str("</root>");
                (format!("d{i}"), xml)
            })
            .collect();
        let corpus = Corpus::from_named_strs(docs).unwrap();
        let seq = GksIndex::build(&corpus, IndexOptions::default()).unwrap();
        let par = GksIndex::build_parallel(&corpus, IndexOptions::default(), 3).unwrap();
        prop_assert_eq!(seq.stats().census, par.stats().census);
        prop_assert_eq!(seq.node_table().len(), par.node_table().len());
        for (term, list) in seq.inverted().iter() {
            prop_assert_eq!(par.postings(term), list, "term {}", term);
        }
    }

    /// The root of every document is recorded with DocId i.
    #[test]
    fn roots_are_recorded(trees in prop::collection::vec(arb_tree(), 1..4)) {
        let docs: Vec<(String, String)> = trees
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let mut xml = String::from("<root>");
                to_xml(t, &mut xml);
                xml.push_str("</root>");
                (format!("d{i}"), xml)
            })
            .collect();
        let n = docs.len();
        let corpus = Corpus::from_named_strs(docs).unwrap();
        let ix = GksIndex::build(&corpus, IndexOptions::default()).unwrap();
        for i in 0..n {
            let root = DeweyId::root(DocId(i as u32));
            prop_assert!(ix.node_table().get(&root).is_some(), "missing root {i}");
        }
    }
}
