//! A fast, non-cryptographic hasher for index-internal hash tables.
//!
//! The default SipHash-1-3 of `std::collections::HashMap` is designed to
//! resist HashDoS, which the index's internal tables (keyed by Dewey ids and
//! interned term ids we generate ourselves) do not need; a multiply-xor
//! hasher in the style of rustc's FxHash is substantially faster on these hot
//! paths. Implemented here rather than pulled in as a dependency to keep the
//! approved dependency set minimal.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` with the fast hasher.
pub type FastMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the fast hasher.
pub type FastSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The FxHash mixing function: rotate, xor, multiply per word.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    // chunks_exact(8) yields exactly-8-byte slices, so the conversion cannot
    // fail (also entered in xtask/lint-allow.toml).
    #[allow(clippy::expect_used)]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("chunk of 8")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
        // Padding in the tail must not collapse distinct lengths.
        assert_ne!(hash_of(&[1u8].as_slice()), hash_of(&[1u8, 0].as_slice()));
    }

    #[test]
    fn usable_as_map() {
        let mut m: FastMap<String, u32> = FastMap::default();
        m.insert("x".into(), 1);
        m.insert("y".into(), 2);
        assert_eq!(m.get("x"), Some(&1));
        assert_eq!(m.len(), 2);
    }
}
