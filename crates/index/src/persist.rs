//! Binary persistence for [`GksIndex`].
//!
//! "For a given XML data repository, we first prepare an index on it. This is
//! a onetime activity" (paper §2.4); Table 4 then reports on-disk index sizes
//! comparable to the raw data. Two formats are supported:
//!
//! * **v2** — one eagerly-decoded stream: posting lists and the node table
//!   use the delta-prefix Dewey codec, strings are length-prefixed UTF-8,
//!   integers are LEB128 varints. Loading decodes everything onto the heap.
//! * **v3** (default) — the zero-copy tier. The same eager sections for
//!   options, document names, labels, node table, attribute store and stats,
//!   followed by a **sorted term dictionary** (term bytes + posting-run
//!   offset/length/count per term), a fixed-width offset table for binary
//!   search straight off the file, and a postings region of blocked
//!   delta-prefix runs ([`gks_dewey::codec::encode_blocked_run`]). A fixed
//!   footer carries the section offsets and an FNV-64 checksum over the
//!   header and footer metadata. Loading `mmap`s the file, validates the
//!   header/footer and dictionary, and hands the engine lazily-decoded
//!   posting cursors — posting blocks are never read at open.
//!
//! Both loads share one buffer end to end: v2 decodes in place from the
//! mapped file (strings are built straight from subslices), v3 keeps the map
//! alive inside [`crate::postings::MappedPostings`].

use std::fs;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use bytes::{Buf, BufMut, Bytes, BytesMut, Mmap};
use gks_dewey::codec::{
    decode_id, decode_sorted_run, encode_blocked_run, encode_id, encode_sorted_run, read_varint,
    write_varint,
};
use gks_dewey::DeweyId;

use crate::attrstore::{AttrEntry, AttrSource, AttrStore};
use crate::builder::GksIndex;
use crate::categorize::NodeFlags;
use crate::error::IndexError;
use crate::node_table::{NodeMeta, NodeTable};
use crate::options::{AnalyzerOptionsSer, IndexOptions};
use crate::postings::{InvertedIndex, MappedPostings, PostingsReader, TermEntry};
use crate::stats::{CategoryCensus, IndexStats};

const MAGIC: &[u8; 5] = b"GKSIX";
const VERSION_V2: u32 = 2;
const VERSION_V3: u32 = 3;
/// Trailing magic of the v3 footer; lets the doctor tell "not a v3 file"
/// from "v3 file with a torn footer".
const TAIL_MAGIC: &[u8; 4] = b"GKS3";
/// v3 footer: 8 section offsets + term count + file length + checksum
/// (u64 big-endian each), then [`TAIL_MAGIC`].
const FOOTER_LEN: usize = 11 * 8 + TAIL_MAGIC.len();

/// On-disk format selector for [`GksIndex::save_as`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexFormat {
    /// Eager single-stream format (pre-zero-copy).
    V2,
    /// Blocked postings + term dictionary + footer; opens via `mmap`.
    V3,
}

impl IndexFormat {
    /// Parses a CLI `--format` value.
    pub fn parse(s: &str) -> Option<IndexFormat> {
        match s {
            "v2" | "2" => Some(IndexFormat::V2),
            "v3" | "3" => Some(IndexFormat::V3),
            _ => None,
        }
    }
}

/// Per-section byte breakdown of an index file (`gks doctor`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SectionSizes {
    /// On-disk format version (2 or 3).
    pub version: u32,
    /// Total file bytes.
    pub total: u64,
    /// Magic + version + options.
    pub header: u64,
    /// Document-name section bytes.
    pub doc_names: u64,
    /// Label-name section bytes.
    pub labels: u64,
    /// Node-table bytes (Dewey run + per-node metadata).
    pub node_table: u64,
    /// Attribute-store bytes.
    pub attr_store: u64,
    /// Stats section bytes.
    pub stats: u64,
    /// Term-dictionary bytes (v3: records + offset table; v2: the term
    /// strings interleaved with the posting runs).
    pub term_dict: u64,
    /// Posting bytes (v3: blocked runs; v2: delta-prefix runs).
    pub postings: u64,
    /// Footer bytes (v3 only; 0 for v2).
    pub footer: u64,
}

/// FNV-1a 64-bit over a sequence of byte slices (header/footer checksum).
fn fnv64(parts: &[&[u8]]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in *part {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

fn write_str(out: &mut BytesMut, s: &str) {
    write_varint(out, s.len() as u64);
    out.put_slice(s.as_bytes());
}

/// Decodes a length-prefixed string in place: the `String` is built straight
/// from the input subslice, with no intermediate buffer.
fn read_str(input: &mut &[u8]) -> Result<String, IndexError> {
    let len = read_varint(input)? as usize;
    if input.len() < len {
        return Err(IndexError::Corrupt("truncated string".into()));
    }
    let (head, rest) = input.split_at(len);
    let s = std::str::from_utf8(head)
        .map_err(|_| IndexError::Corrupt("invalid UTF-8 in string".into()))?
        .to_string();
    *input = rest;
    Ok(s)
}

fn write_census(out: &mut BytesMut, c: &CategoryCensus) {
    write_varint(out, c.attribute);
    write_varint(out, c.repeating);
    write_varint(out, c.entity);
    write_varint(out, c.connecting);
}

fn read_census(input: &mut impl Buf) -> Result<CategoryCensus, IndexError> {
    Ok(CategoryCensus {
        attribute: read_varint(input)?,
        repeating: read_varint(input)?,
        entity: read_varint(input)?,
        connecting: read_varint(input)?,
    })
}

/// Reads the magic and version prefix shared by both formats.
fn sniff_version(bytes: &[u8]) -> Result<u32, IndexError> {
    if bytes.len() < MAGIC.len() + 4 {
        return Err(IndexError::Corrupt("header too short".into()));
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(IndexError::Corrupt("bad magic".into()));
    }
    let mut v = [0u8; 4];
    v.copy_from_slice(&bytes[MAGIC.len()..MAGIC.len() + 4]);
    Ok(u32::from_be_bytes(v))
}

// ----- shared section codecs (identical byte layout in v2 and v3) -----

fn write_options(out: &mut BytesMut, o: &IndexOptions) {
    out.put_u8(u8::from(o.analyzer.remove_stopwords));
    out.put_u8(u8::from(o.analyzer.stem));
    write_varint(out, o.analyzer.min_term_len as u64);
    out.put_u8(u8::from(o.xml_attributes_as_elements));
    out.put_u8(u8::from(o.index_element_names));
}

fn read_options(input: &mut &[u8]) -> Result<IndexOptions, IndexError> {
    if input.len() < 2 {
        return Err(IndexError::Corrupt("truncated options".into()));
    }
    let remove_stopwords = input.get_u8() != 0;
    let stem = input.get_u8() != 0;
    let min_term_len = read_varint(input)? as usize;
    if input.len() < 2 {
        return Err(IndexError::Corrupt("truncated options".into()));
    }
    Ok(IndexOptions {
        analyzer: AnalyzerOptionsSer { remove_stopwords, stem, min_term_len },
        xml_attributes_as_elements: input.get_u8() != 0,
        index_element_names: input.get_u8() != 0,
    })
}

fn write_doc_names(out: &mut BytesMut, ix: &GksIndex) {
    write_varint(out, ix.doc_names().len() as u64);
    for name in ix.doc_names() {
        write_str(out, name);
    }
}

fn read_doc_names(input: &mut &[u8]) -> Result<Vec<String>, IndexError> {
    let doc_count = read_varint(input)? as usize;
    let mut doc_names = Vec::with_capacity(doc_count.min(1 << 16));
    for _ in 0..doc_count {
        doc_names.push(read_str(input)?);
    }
    Ok(doc_names)
}

fn write_labels(out: &mut BytesMut, ix: &GksIndex) {
    let labels = ix.node_table().labels().names();
    write_varint(out, labels.len() as u64);
    for name in labels {
        write_str(out, name);
    }
}

fn write_node_table(out: &mut BytesMut, ix: &GksIndex) {
    // Sorted by Dewey id so the run codec compresses.
    let mut nodes: Vec<(&DeweyId, &NodeMeta)> = ix.node_table().iter().collect();
    nodes.sort_by(|a, b| a.0.cmp(b.0));
    let ids: Vec<DeweyId> = nodes.iter().map(|(d, _)| (*d).clone()).collect();
    encode_sorted_run(&ids, out);
    for (_, meta) in &nodes {
        write_varint(out, u64::from(meta.child_count));
        out.put_u8(meta.flags.bits());
        write_varint(out, u64::from(meta.label));
    }
}

/// Reads the label section into a fresh `NodeTable` (the node rows follow in
/// [`read_nodes`]; v2 interleaves the two, v3 gives each its own section).
fn read_labels(input: &mut &[u8]) -> Result<NodeTable, IndexError> {
    let label_count = read_varint(input)? as usize;
    let mut node_table = NodeTable::new();
    for _ in 0..label_count {
        let name = read_str(input)?;
        node_table.labels_mut().intern(&name);
    }
    Ok(node_table)
}

/// Reads the node rows (Dewey run + per-node metadata) into `table`.
fn read_nodes(input: &mut &[u8], table: &mut NodeTable) -> Result<(), IndexError> {
    let label_count = table.labels().names().len();
    let ids = decode_sorted_run(input)?;
    for id in ids {
        let child_count = read_varint(input)? as u32;
        if !input.has_remaining() {
            return Err(IndexError::Corrupt("truncated node meta".into()));
        }
        let flags = NodeFlags::from_bits(input.get_u8());
        let label = read_varint(input)? as u32;
        if label as usize >= label_count {
            return Err(IndexError::Corrupt(format!("label id {label} out of range")));
        }
        table.insert(id, NodeMeta { child_count, flags, label });
    }
    Ok(())
}

fn write_attrs(out: &mut BytesMut, ix: &GksIndex) {
    write_varint(out, ix.attr_store().len() as u64);
    for (entity, entries) in ix.attr_store().iter() {
        encode_id(entity, out);
        write_varint(out, entries.len() as u64);
        for e in entries {
            write_varint(out, e.path.len() as u64);
            for &l in &e.path {
                write_varint(out, u64::from(l));
            }
            write_str(out, &e.value);
            out.put_u8(match e.source {
                AttrSource::Attribute => 0,
                AttrSource::RepeatingText => 1,
            });
        }
    }
}

fn read_attrs(input: &mut &[u8]) -> Result<AttrStore, IndexError> {
    let attr_count = read_varint(input)? as usize;
    let mut attrs = AttrStore::new();
    for _ in 0..attr_count {
        let entity = decode_id(input)?;
        let entry_count = read_varint(input)? as usize;
        let mut entries = Vec::with_capacity(entry_count.min(1 << 16));
        for _ in 0..entry_count {
            let path_len = read_varint(input)? as usize;
            let mut path = Vec::with_capacity(path_len.min(1 << 16));
            for _ in 0..path_len {
                path.push(read_varint(input)? as u32);
            }
            let value = read_str(input)?;
            if !input.has_remaining() {
                return Err(IndexError::Corrupt("truncated attr entry".into()));
            }
            let source = match input.get_u8() {
                0 => AttrSource::Attribute,
                1 => AttrSource::RepeatingText,
                other => return Err(IndexError::Corrupt(format!("bad attr source {other}"))),
            };
            entries.push(AttrEntry { path, value, source });
        }
        attrs.insert(entity, entries);
    }
    Ok(attrs)
}

fn write_stats(out: &mut BytesMut, ix: &GksIndex) {
    let s = ix.stats();
    write_varint(out, s.doc_count);
    write_varint(out, s.total_nodes);
    write_census(out, &s.census);
    write_varint(out, s.per_label.len() as u64);
    for (label, census) in &s.per_label {
        write_str(out, label);
        write_census(out, census);
    }
    write_varint(out, u64::from(s.max_depth));
    write_varint(out, s.raw_bytes);
    write_varint(out, s.distinct_terms);
    write_varint(out, s.total_postings);
    write_varint(out, s.posting_depth_sum);
    write_varint(out, s.build_millis);
}

fn read_stats(input: &mut &[u8]) -> Result<IndexStats, IndexError> {
    let mut stats = IndexStats {
        doc_count: read_varint(input)?,
        total_nodes: read_varint(input)?,
        census: read_census(input)?,
        ..Default::default()
    };
    let per_label_count = read_varint(input)? as usize;
    for _ in 0..per_label_count {
        let label = read_str(input)?;
        let census = read_census(input)?;
        stats.per_label.insert(label, census);
    }
    stats.max_depth = read_varint(input)? as u32;
    stats.raw_bytes = read_varint(input)?;
    stats.distinct_terms = read_varint(input)?;
    stats.total_postings = read_varint(input)?;
    stats.posting_depth_sum = read_varint(input)?;
    stats.build_millis = read_varint(input)?;
    Ok(stats)
}

impl GksIndex {
    /// Serializes the index to format-v2 bytes.
    pub fn to_bytes(&self) -> Bytes {
        let mut out = BytesMut::new();
        out.put_slice(MAGIC);
        out.put_u32(VERSION_V2);
        write_options(&mut out, self.options());
        write_doc_names(&mut out, self);
        write_labels(&mut out, self);
        write_node_table(&mut out, self);

        // Inverted index: term strings interleaved with posting runs.
        write_varint(&mut out, self.inverted().term_count() as u64);
        for (term, list) in self.inverted().iter() {
            write_str(&mut out, term);
            encode_sorted_run(list, &mut out);
        }

        write_attrs(&mut out, self);
        write_stats(&mut out, self);
        out.freeze()
    }

    /// Serializes the index to format-v3 bytes: eager sections, then the
    /// sorted term dictionary, its offset table, the blocked postings
    /// region, and the checksummed footer.
    ///
    /// Errors only if the term dictionary outgrows the fixed-width `u32`
    /// offset table (4GiB of term records — far past any real corpus).
    pub fn to_bytes_v3(&self) -> Result<Bytes, IndexError> {
        let mut out = BytesMut::new();
        out.put_slice(MAGIC);
        out.put_u32(VERSION_V3);
        write_options(&mut out, self.options());
        let header_len = out.len();

        let doc_off = out.len() as u64;
        write_doc_names(&mut out, self);
        let lab_off = out.len() as u64;
        write_labels(&mut out, self);
        let node_off = out.len() as u64;
        write_node_table(&mut out, self);
        let attr_off = out.len() as u64;
        write_attrs(&mut out, self);
        let stat_off = out.len() as u64;
        write_stats(&mut out, self);

        // Dictionary sorted by term bytes, postings as blocked runs packed
        // tightly in dictionary order. Each record stores only the term,
        // the run's start offset, and its posting count: the run's byte
        // length is the gap to the next record's start (or the region
        // end), and the run itself carries no framing of its own — that
        // redundancy is what would make sparse-vocabulary corpora larger
        // in v3 than v2.
        let mut terms: Vec<(&str, &[DeweyId])> = self.inverted().iter().collect();
        terms.sort_by(|a, b| a.0.as_bytes().cmp(b.0.as_bytes()));
        let mut post_buf: Vec<u8> = Vec::new();
        let mut dict_buf = BytesMut::new();
        let mut rec_offsets: Vec<u32> = Vec::with_capacity(terms.len());
        for (term, list) in &terms {
            let run_start = post_buf.len() as u64;
            encode_blocked_run(list, &mut post_buf);
            let rec = u32::try_from(dict_buf.len())
                .map_err(|_| IndexError::Invariant("format-v3 term dictionary exceeds 4GiB"))?;
            rec_offsets.push(rec);
            write_str(&mut dict_buf, term);
            write_varint(&mut dict_buf, run_start);
            write_varint(&mut dict_buf, list.len() as u64);
        }
        let dict_off = out.len() as u64;
        out.put_slice(dict_buf.as_ref());
        let offs_off = out.len() as u64;
        for rec in &rec_offsets {
            out.put_u32(*rec);
        }
        let post_off = out.len() as u64;
        out.put_slice(&post_buf);

        // Footer: offsets + term count + file length, checksummed together
        // with the header so a truncated or resected file fails fast at
        // open — without ever checksumming (= reading) the posting blocks.
        let mut footer = BytesMut::new();
        for v in [doc_off, lab_off, node_off, attr_off, stat_off, dict_off, offs_off, post_off] {
            footer.put_u64(v);
        }
        footer.put_u64(terms.len() as u64);
        footer.put_u64(out.len() as u64 + FOOTER_LEN as u64);
        let checksum = fnv64(&[&out.as_ref()[..header_len], footer.as_ref()]);
        footer.put_u64(checksum);
        footer.put_slice(TAIL_MAGIC);
        out.put_slice(footer.as_ref());
        Ok(out.freeze())
    }

    /// Deserializes a format-v2 index produced by [`Self::to_bytes`].
    pub fn from_bytes(bytes: Bytes) -> Result<GksIndex, IndexError> {
        GksIndex::from_slice_v2(bytes.as_slice())
    }

    /// Format-v2 decode straight off one buffer (no double-buffering: the
    /// strings and runs are built in place from subslices of `bytes`).
    fn from_slice_v2(bytes: &[u8]) -> Result<GksIndex, IndexError> {
        let version = sniff_version(bytes)?;
        if version != VERSION_V2 {
            return Err(IndexError::VersionMismatch { found: version, expected: VERSION_V2 });
        }
        let mut input = &bytes[MAGIC.len() + 4..];
        let input = &mut input;
        let options = read_options(input)?;
        let doc_names = read_doc_names(input)?;
        let mut node_table = read_labels(input)?;
        read_nodes(input, &mut node_table)?;

        let term_count = read_varint(input)? as usize;
        let mut inverted = InvertedIndex::new();
        for _ in 0..term_count {
            let term = read_str(input)?;
            let list = decode_sorted_run(input)?;
            inverted.load_term(term, list);
        }

        let attrs = read_attrs(input)?;
        let stats = read_stats(input)?;
        Ok(GksIndex::from_parts(
            options,
            node_table,
            PostingsReader::Heap(inverted),
            attrs,
            stats,
            doc_names,
        ))
    }

    /// Opens a format-v3 index over a mapped file: validates the header,
    /// footer checksum, section offsets and term dictionary, decodes the
    /// eager sections, and leaves every posting run encoded in the map.
    pub fn from_mapped(map: Arc<Mmap>) -> Result<GksIndex, IndexError> {
        let bytes = map.as_slice();
        let version = sniff_version(bytes)?;
        if version != VERSION_V3 {
            return Err(IndexError::VersionMismatch { found: version, expected: VERSION_V3 });
        }
        let mut header_cur = &bytes[MAGIC.len() + 4..];
        let before = header_cur.len();
        let options = read_options(&mut header_cur)?;
        let header_len = MAGIC.len() + 4 + (before - header_cur.len());

        if bytes.len() < header_len + FOOTER_LEN {
            return Err(IndexError::Corrupt("v3 file too short for footer".into()));
        }
        let footer_off = bytes.len() - FOOTER_LEN;
        let footer = &bytes[footer_off..];
        if &footer[FOOTER_LEN - TAIL_MAGIC.len()..] != TAIL_MAGIC {
            return Err(IndexError::Corrupt("bad v3 footer magic".into()));
        }
        let mut fcur = footer;
        let mut fields = [0u64; 11];
        for f in &mut fields {
            *f = fcur.get_u64();
        }
        let [doc_off, lab_off, node_off, attr_off, stat_off, dict_off, offs_off, post_off, term_count, file_len, checksum] =
            fields;
        if file_len != bytes.len() as u64 {
            return Err(IndexError::Corrupt(format!(
                "v3 file length mismatch: footer says {file_len}, file is {}",
                bytes.len()
            )));
        }
        let computed = fnv64(&[&bytes[..header_len], &footer[..FOOTER_LEN - TAIL_MAGIC.len() - 8]]);
        if computed != checksum {
            return Err(IndexError::Corrupt("v3 header/footer checksum mismatch".into()));
        }
        let bounds = [doc_off, lab_off, node_off, attr_off, stat_off, dict_off, offs_off, post_off];
        if doc_off != header_len as u64
            || bounds.windows(2).any(|w| w[0] > w[1])
            || post_off > footer_off as u64
        {
            return Err(IndexError::Corrupt("v3 section offsets out of order".into()));
        }

        let section = |from: u64, to: u64| &bytes[from as usize..to as usize];
        let doc_names = read_doc_names(&mut section(doc_off, lab_off))?;
        let mut node_table = read_labels(&mut section(lab_off, node_off))?;
        read_nodes(&mut section(node_off, attr_off), &mut node_table)?;
        let attrs = read_attrs(&mut section(attr_off, stat_off))?;
        let stats = read_stats(&mut section(stat_off, dict_off))?;

        // Term dictionary: fixed-width u32 offset table into varint
        // records of (term, run start, posting count). Runs are packed
        // tightly in dictionary order, so each run's byte length is the
        // gap to the next record's run start; the final run ends at the
        // posting region's end.
        let term_count = term_count as usize;
        if (post_off - offs_off) as usize != term_count * 4 {
            return Err(IndexError::Corrupt("v3 term offset table length mismatch".into()));
        }
        if stats.distinct_terms != term_count as u64 {
            return Err(IndexError::Corrupt("v3 term count disagrees with stats".into()));
        }
        let dict = section(dict_off, offs_off);
        let post_section_len = footer_off - post_off as usize;
        let mut offs_cur = section(offs_off, post_off);
        let mut terms: Vec<TermEntry> = Vec::with_capacity(term_count.min(1 << 20));
        let mut total: u64 = 0;
        let mut prev_term: Option<(usize, usize)> = None;
        for _ in 0..term_count {
            let rec_off = offs_cur.get_u32() as usize;
            if rec_off >= dict.len() {
                return Err(IndexError::Corrupt("v3 term record offset out of range".into()));
            }
            let mut cur = &dict[rec_off..];
            let before = cur.len();
            let term_len = read_varint(&mut cur)? as usize;
            let len_bytes = before - cur.len();
            if cur.len() < term_len {
                return Err(IndexError::Corrupt("v3 truncated term".into()));
            }
            let term_start = dict_off as usize + rec_off + len_bytes;
            let term_bytes = &cur[..term_len];
            if std::str::from_utf8(term_bytes).is_err() {
                return Err(IndexError::Corrupt("invalid UTF-8 in term".into()));
            }
            if let Some((ps, pl)) = prev_term {
                if &bytes[ps..ps + pl] >= term_bytes {
                    return Err(IndexError::Corrupt("v3 term dictionary not sorted".into()));
                }
            }
            prev_term = Some((term_start, term_len));
            cur = &cur[term_len..];
            let run_start = read_varint(&mut cur)? as usize;
            let count = read_varint(&mut cur)? as usize;
            if run_start > post_section_len {
                return Err(IndexError::Corrupt("v3 posting run out of range".into()));
            }
            if let Some(prev) = terms.last_mut() {
                let prev: &mut TermEntry = prev;
                let prev_start = prev.post_start - post_off as usize;
                if run_start < prev_start {
                    return Err(IndexError::Corrupt("v3 posting runs out of order".into()));
                }
                prev.post_len = run_start - prev_start;
            } else if run_start != 0 {
                return Err(IndexError::Corrupt("v3 first posting run not at offset 0".into()));
            }
            total += count as u64;
            terms.push(TermEntry {
                term_start,
                term_len,
                post_start: post_off as usize + run_start,
                post_len: 0, // patched when the next record pins the run's end
                count,
            });
        }
        if let Some(last) = terms.last_mut() {
            let last_start = last.post_start - post_off as usize;
            last.post_len = post_section_len - last_start;
        }
        if terms.iter().any(|t| (t.count == 0) != (t.post_len == 0)) {
            return Err(IndexError::Corrupt("v3 empty run disagrees with its count".into()));
        }
        if total != stats.total_postings {
            return Err(IndexError::Corrupt("v3 posting counts disagree with stats".into()));
        }

        let mapped = MappedPostings::from_parts(map, terms);
        Ok(GksIndex::from_parts(
            options,
            node_table,
            PostingsReader::Mapped(mapped),
            attrs,
            stats,
            doc_names,
        ))
    }

    /// Writes the index to a file in the given format, returning the number
    /// of bytes written (the "Index Size" of Table 4). The write is atomic —
    /// bytes land in a sibling temp file renamed into place — so a
    /// concurrent reader (the server's per-shard reload, the delta commit
    /// protocol) never observes a torn index file.
    pub fn save_as(&self, path: impl AsRef<Path>, format: IndexFormat) -> Result<u64, IndexError> {
        let path = path.as_ref();
        let bytes = match format {
            IndexFormat::V2 => self.to_bytes(),
            IndexFormat::V3 => self.to_bytes_v3()?,
        };
        let tmp = crate::shard::sibling_tmp_path(path);
        fs::write(&tmp, &bytes)?;
        if let Err(e) = fs::rename(&tmp, path) {
            let _ = fs::remove_file(&tmp);
            return Err(IndexError::Io(e));
        }
        Ok(bytes.len() as u64)
    }

    /// Writes the index in the default format (v3).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<u64, IndexError> {
        self.save_as(path, IndexFormat::V3)
    }

    /// Loads an index written by [`Self::save`] or [`Self::save_as`].
    ///
    /// The file is mapped, never slurped: a v3 index stays mapped for its
    /// lifetime with posting blocks untouched until queried; a v2 index is
    /// decoded in place from the map (one buffer, no copies of the raw
    /// file), after which the map is dropped.
    pub fn load(path: impl AsRef<Path>) -> Result<GksIndex, IndexError> {
        let _open_span = gks_trace::span(gks_trace::SpanKind::IndexOpen);
        let start = Instant::now();
        let map = Mmap::open(path.as_ref()).map_err(IndexError::Io)?;
        let version = sniff_version(map.as_slice())?;
        let mut ix = match version {
            VERSION_V2 => GksIndex::from_slice_v2(map.as_slice())?,
            VERSION_V3 => GksIndex::from_mapped(Arc::new(map))?,
            other => {
                return Err(IndexError::VersionMismatch { found: other, expected: VERSION_V3 })
            }
        };
        ix.set_open_info(version, start.elapsed().as_millis() as u64);
        Ok(ix)
    }
}

/// Measures the per-section byte breakdown of an index file without fully
/// materializing it (v3 reads the footer; v2 walks the stream off the map).
pub fn section_sizes(path: impl AsRef<Path>) -> Result<SectionSizes, IndexError> {
    let map = Mmap::open(path.as_ref()).map_err(IndexError::Io)?;
    let bytes = map.as_slice();
    let version = sniff_version(bytes)?;
    match version {
        VERSION_V2 => section_sizes_v2(bytes),
        VERSION_V3 => section_sizes_v3(bytes),
        other => Err(IndexError::VersionMismatch { found: other, expected: VERSION_V3 }),
    }
}

fn section_sizes_v3(bytes: &[u8]) -> Result<SectionSizes, IndexError> {
    // Validate via the real open path, then read the footer offsets.
    let mut header_cur = &bytes[MAGIC.len() + 4..];
    let before = header_cur.len();
    read_options(&mut header_cur)?;
    let header_len = (MAGIC.len() + 4 + (before - header_cur.len())) as u64;
    if bytes.len() < header_len as usize + FOOTER_LEN {
        return Err(IndexError::Corrupt("v3 file too short for footer".into()));
    }
    let footer_off = (bytes.len() - FOOTER_LEN) as u64;
    let mut fcur = &bytes[footer_off as usize..];
    let mut fields = [0u64; 8];
    for f in &mut fields {
        *f = fcur.get_u64();
    }
    let [_doc, lab, node, attr, stat, dict, _offs, post] = fields;
    Ok(SectionSizes {
        version: VERSION_V3,
        total: bytes.len() as u64,
        header: header_len,
        doc_names: lab - header_len,
        labels: node - lab,
        node_table: attr - node,
        attr_store: stat - attr,
        stats: dict - stat,
        term_dict: post - dict,
        postings: footer_off - post,
        footer: FOOTER_LEN as u64,
    })
}

fn section_sizes_v2(bytes: &[u8]) -> Result<SectionSizes, IndexError> {
    let total = bytes.len() as u64;
    let mut input = &bytes[MAGIC.len() + 4..];
    let input = &mut input;
    let mark = |input: &&[u8]| total - input.len() as u64;
    read_options(input)?;
    let header = mark(input);

    read_doc_names(input)?;
    let after_docs = mark(input);
    // Labels + node table share one cursor (v2 interleaves them).
    let label_count = read_varint(input)? as usize;
    for _ in 0..label_count {
        read_str(input)?;
    }
    let after_labels = mark(input);
    let ids = decode_sorted_run(input)?;
    for _ in 0..ids.len() {
        read_varint(input)?; // child_count
        if !input.has_remaining() {
            return Err(IndexError::Corrupt("truncated node meta".into()));
        }
        input.get_u8(); // flags
        read_varint(input)?; // label
    }
    let after_nodes = mark(input);

    // Inverted region: term strings (and the term-count varint) count as
    // dictionary bytes, posting runs as posting bytes.
    let term_count = read_varint(input)? as usize;
    let mut dict_bytes = mark(input) - after_nodes;
    let mut post_bytes = 0u64;
    for _ in 0..term_count {
        let before = mark(input);
        read_str(input)?;
        let after_term = mark(input);
        decode_sorted_run(input)?;
        dict_bytes += after_term - before;
        post_bytes += mark(input) - after_term;
    }
    let after_inverted = mark(input);

    read_attrs(input)?;
    let after_attrs = mark(input);
    read_stats(input)?;
    let after_stats = mark(input);

    Ok(SectionSizes {
        version: VERSION_V2,
        total,
        header,
        doc_names: after_docs - header,
        labels: after_labels - after_docs,
        node_table: after_nodes - after_labels,
        attr_store: after_attrs - after_inverted,
        stats: after_stats - after_attrs,
        term_dict: dict_bytes,
        postings: post_bytes,
        footer: total - after_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Corpus;

    const XML: &str = r#"<dblp>
        <article><title>System R</title><author>Jim Gray</author><author>Kapali Eswaran</author></article>
        <article><title>INGRES</title><author>Michael Stonebraker</author></article>
    </dblp>"#;

    fn sample_index() -> GksIndex {
        let corpus = Corpus::from_named_strs([("dblp", XML)]).unwrap();
        GksIndex::build(&corpus, IndexOptions::default()).unwrap()
    }

    fn assert_indexes_equal(loaded: &GksIndex, ix: &GksIndex) {
        assert_eq!(loaded.options(), ix.options());
        assert_eq!(loaded.doc_names(), ix.doc_names());
        assert_eq!(loaded.stats().total_nodes, ix.stats().total_nodes);
        assert_eq!(loaded.stats().census, ix.stats().census);
        assert_eq!(loaded.stats().max_depth, ix.stats().max_depth);
        assert_eq!(loaded.stats().per_label, ix.stats().per_label);
        assert_eq!(loaded.inverted().term_count(), ix.inverted().term_count());
        for (term, list) in ix.inverted().iter() {
            assert_eq!(loaded.postings(term), list, "postings for {term}");
            assert_eq!(loaded.posting_count(term), list.len(), "count for {term}");
        }
        assert_eq!(loaded.node_table().len(), ix.node_table().len());
        for (dewey, meta) in ix.node_table().iter() {
            let other = loaded.node_table().get(dewey).unwrap();
            assert_eq!(other.child_count, meta.child_count);
            assert_eq!(other.flags, meta.flags);
            assert_eq!(
                loaded.node_table().labels().name(other.label),
                ix.node_table().labels().name(meta.label)
            );
        }
        assert_eq!(loaded.attr_store().len(), ix.attr_store().len());
        for (entity, entries) in ix.attr_store().iter() {
            let other = loaded.attr_store().entries(entity);
            assert_eq!(other.len(), entries.len());
            for (a, b) in entries.iter().zip(other) {
                assert_eq!(a.value, b.value);
                assert_eq!(a.source, b.source);
                let names = |ix: &GksIndex, e: &AttrEntry| -> Vec<String> {
                    e.path.iter().map(|&l| ix.node_table().labels().name(l).to_string()).collect()
                };
                assert_eq!(names(ix, a), names(loaded, b));
            }
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let ix = sample_index();
        let loaded = GksIndex::from_bytes(ix.to_bytes()).unwrap();
        assert_indexes_equal(&loaded, &ix);
    }

    #[test]
    fn v3_round_trip_preserves_everything() {
        let ix = sample_index();
        let dir = std::env::temp_dir().join(format!("gks-persist-v3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.gksix");
        ix.save_as(&path, IndexFormat::V3).unwrap();
        let loaded = GksIndex::load(&path).unwrap();
        assert_eq!(loaded.format_version(), 3);
        assert_indexes_equal(&loaded, &ix);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v3_open_decodes_no_posting_blocks() {
        let ix = sample_index();
        let dir = std::env::temp_dir().join(format!("gks-persist-lazy-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lazy.gksix");
        ix.save(&path).unwrap(); // default format is v3
        let loaded = GksIndex::load(&path).unwrap();
        // Open touches the dictionary but no posting run.
        assert_eq!(loaded.decoded_terms(), 0, "open must not decode postings");
        assert!(loaded.bytes_mapped() > 0, "v3 index is served off the map");
        // First query decodes exactly the terms it touches.
        let mut terms = ix.inverted().iter().map(|(t, _)| t.to_string());
        let (first, second) = (terms.next().unwrap(), terms.next().unwrap());
        assert!(!loaded.postings(&first).is_empty());
        assert_eq!(loaded.decoded_terms(), 1);
        // Counts come from the dictionary without decoding.
        assert_eq!(loaded.posting_count(&second), ix.posting_count(&second));
        assert_eq!(loaded.decoded_terms(), 1, "posting_count must not decode");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_load_via_filesystem_both_formats() {
        let ix = sample_index();
        let dir = std::env::temp_dir().join(format!("gks-persist-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (name, format) in [("v2.gksix", IndexFormat::V2), ("v3.gksix", IndexFormat::V3)] {
            let path = dir.join(name);
            let written = ix.save_as(&path, format).unwrap();
            assert!(written > 0);
            let loaded = GksIndex::load(&path).unwrap();
            for (term, list) in ix.inverted().iter() {
                assert_eq!(loaded.postings(term), list, "postings for {term}");
            }
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn v3_is_smaller_than_v2() {
        // The folded document flag in v3 blocks must beat v2's per-entry
        // flag byte on a pool-shaped corpus (bounded vocabulary, high term
        // frequency — the shape the synthetic benchmark corpora have).
        let mut xml = String::from("<dblp>");
        for i in 0..300 {
            xml.push_str(&format!(
                "<article><title>generic keyword search over xml data part {}</title>\
                 <author>Ada Lovelace</author><author>Alan Turing</author></article>",
                i % 10
            ));
        }
        xml.push_str("</dblp>");
        let corpus = Corpus::from_named_strs([("big", xml.as_str())]).unwrap();
        let ix = GksIndex::build(&corpus, IndexOptions::default()).unwrap();
        let v2 = ix.to_bytes().len();
        let v3 = ix.to_bytes_v3().unwrap().len();
        assert!(v3 < v2, "v3 ({v3} B) must be smaller than v2 ({v2} B)");
    }

    #[test]
    fn bad_magic_rejected() {
        let err = GksIndex::from_bytes(Bytes::from_static(b"NOTIX\0\0\0\0rest")).unwrap_err();
        assert!(matches!(err, IndexError::Corrupt(_)));
    }

    #[test]
    fn version_mismatch_rejected() {
        let ix = sample_index();
        let mut bytes = ix.to_bytes().to_vec();
        bytes[5..9].copy_from_slice(&99u32.to_be_bytes());
        let err = GksIndex::from_bytes(Bytes::from(bytes)).unwrap_err();
        assert!(matches!(err, IndexError::VersionMismatch { found: 99, .. }));
    }

    #[test]
    fn truncated_input_rejected() {
        let ix = sample_index();
        let bytes = ix.to_bytes();
        let truncated = bytes.slice(..bytes.len() / 2);
        assert!(GksIndex::from_bytes(truncated).is_err());
    }

    #[test]
    fn v3_truncation_and_checksum_rejected() {
        let ix = sample_index();
        let good = ix.to_bytes_v3().unwrap().to_vec();
        let dir = std::env::temp_dir().join(format!("gks-persist-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // Truncated file: the footer length check fires.
        let path = dir.join("trunc.gksix");
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(GksIndex::load(&path).is_err());

        // Flipped header byte: checksum mismatch.
        let mut flipped = good.clone();
        flipped[10] ^= 0xff;
        let path2 = dir.join("flip.gksix");
        std::fs::write(&path2, &flipped).unwrap();
        let err = GksIndex::load(&path2).unwrap_err();
        assert!(matches!(err, IndexError::Corrupt(_)), "got {err:?}");

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&path2).ok();
    }

    #[test]
    fn section_sizes_cover_the_file() {
        let ix = sample_index();
        let dir = std::env::temp_dir().join(format!("gks-persist-sizes-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (name, format) in [("v2.gksix", IndexFormat::V2), ("v3.gksix", IndexFormat::V3)] {
            let path = dir.join(name);
            let written = ix.save_as(&path, format).unwrap();
            let s = section_sizes(&path).unwrap();
            assert_eq!(s.total, written, "{name}");
            let sum = s.header
                + s.doc_names
                + s.labels
                + s.node_table
                + s.attr_store
                + s.stats
                + s.term_dict
                + s.postings
                + s.footer;
            assert_eq!(sum, s.total, "{name}: sections must tile the file");
            assert!(s.postings > 0 && s.term_dict > 0 && s.node_table > 0, "{name}");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn v2_and_v3_search_surfaces_agree() {
        let ix = sample_index();
        let dir = std::env::temp_dir().join(format!("gks-persist-agree-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p2 = dir.join("a.gksix");
        let p3 = dir.join("b.gksix");
        ix.save_as(&p2, IndexFormat::V2).unwrap();
        ix.save_as(&p3, IndexFormat::V3).unwrap();
        let v2 = GksIndex::load(&p2).unwrap();
        let v3 = GksIndex::load(&p3).unwrap();
        assert_eq!(v2.format_version(), 2);
        assert_eq!(v3.format_version(), 3);
        for (term, _) in ix.inverted().iter() {
            assert_eq!(v2.postings(term), v3.postings(term), "postings for {term}");
            assert_eq!(v2.posting_count(term), v3.posting_count(term));
            let (m2, d2) = v2.postings_masked(term, &[0]);
            let (m3, d3) = v3.postings_masked(term, &[0]);
            assert_eq!(m2, m3);
            assert_eq!(d2, d3);
        }
        std::fs::remove_file(&p2).ok();
        std::fs::remove_file(&p3).ok();
    }
}
