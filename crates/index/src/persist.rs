//! Binary persistence for [`GksIndex`].
//!
//! "For a given XML data repository, we first prepare an index on it. This is
//! a onetime activity" (paper §2.4); Table 4 then reports on-disk index sizes
//! comparable to the raw data. This module serializes the whole index into a
//! compact format: posting lists and the node table use the delta-prefix
//! Dewey codec, strings are length-prefixed UTF-8, and all integers are
//! LEB128 varints.

use std::fs;
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use gks_dewey::codec::{
    decode_id, decode_sorted_run, encode_id, encode_sorted_run, read_varint, write_varint,
};
use gks_dewey::DeweyId;

use crate::attrstore::{AttrEntry, AttrSource, AttrStore};
use crate::builder::GksIndex;
use crate::categorize::NodeFlags;
use crate::error::IndexError;
use crate::node_table::{NodeMeta, NodeTable};
use crate::options::{AnalyzerOptionsSer, IndexOptions};
use crate::postings::InvertedIndex;
use crate::stats::{CategoryCensus, IndexStats};

const MAGIC: &[u8; 5] = b"GKSIX";
const VERSION: u32 = 2;

fn write_str(out: &mut BytesMut, s: &str) {
    write_varint(out, s.len() as u64);
    out.put_slice(s.as_bytes());
}

fn read_str(input: &mut Bytes) -> Result<String, IndexError> {
    let len = read_varint(input)? as usize;
    if input.remaining() < len {
        return Err(IndexError::Corrupt("truncated string".into()));
    }
    let bytes = input.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec())
        .map_err(|_| IndexError::Corrupt("invalid UTF-8 in string".into()))
}

fn write_census(out: &mut BytesMut, c: &CategoryCensus) {
    write_varint(out, c.attribute);
    write_varint(out, c.repeating);
    write_varint(out, c.entity);
    write_varint(out, c.connecting);
}

fn read_census(input: &mut Bytes) -> Result<CategoryCensus, IndexError> {
    Ok(CategoryCensus {
        attribute: read_varint(input)?,
        repeating: read_varint(input)?,
        entity: read_varint(input)?,
        connecting: read_varint(input)?,
    })
}

impl GksIndex {
    /// Serializes the index to bytes.
    pub fn to_bytes(&self) -> Bytes {
        let mut out = BytesMut::new();
        out.put_slice(MAGIC);
        out.put_u32(VERSION);

        // Options.
        let o = self.options();
        out.put_u8(u8::from(o.analyzer.remove_stopwords));
        out.put_u8(u8::from(o.analyzer.stem));
        write_varint(&mut out, o.analyzer.min_term_len as u64);
        out.put_u8(u8::from(o.xml_attributes_as_elements));
        out.put_u8(u8::from(o.index_element_names));

        // Document names.
        write_varint(&mut out, self.doc_names().len() as u64);
        for name in self.doc_names() {
            write_str(&mut out, name);
        }

        // Labels.
        let labels = self.node_table().labels().names();
        write_varint(&mut out, labels.len() as u64);
        for name in labels {
            write_str(&mut out, name);
        }

        // Node table, sorted by Dewey id so the run codec compresses.
        let mut nodes: Vec<(&DeweyId, &NodeMeta)> = self.node_table().iter().collect();
        nodes.sort_by(|a, b| a.0.cmp(b.0));
        let ids: Vec<DeweyId> = nodes.iter().map(|(d, _)| (*d).clone()).collect();
        encode_sorted_run(&ids, &mut out);
        for (_, meta) in &nodes {
            write_varint(&mut out, u64::from(meta.child_count));
            out.put_u8(meta.flags.bits());
            write_varint(&mut out, u64::from(meta.label));
        }

        // Inverted index.
        write_varint(&mut out, self.inverted().term_count() as u64);
        for (term, list) in self.inverted().iter() {
            write_str(&mut out, term);
            encode_sorted_run(list, &mut out);
        }

        // Attribute store.
        write_varint(&mut out, self.attr_store().len() as u64);
        for (entity, entries) in self.attr_store().iter() {
            encode_id(entity, &mut out);
            write_varint(&mut out, entries.len() as u64);
            for e in entries {
                write_varint(&mut out, e.path.len() as u64);
                for &l in &e.path {
                    write_varint(&mut out, u64::from(l));
                }
                write_str(&mut out, &e.value);
                out.put_u8(match e.source {
                    AttrSource::Attribute => 0,
                    AttrSource::RepeatingText => 1,
                });
            }
        }

        // Stats.
        let s = self.stats();
        write_varint(&mut out, s.doc_count);
        write_varint(&mut out, s.total_nodes);
        write_census(&mut out, &s.census);
        write_varint(&mut out, s.per_label.len() as u64);
        for (label, census) in &s.per_label {
            write_str(&mut out, label);
            write_census(&mut out, census);
        }
        write_varint(&mut out, u64::from(s.max_depth));
        write_varint(&mut out, s.raw_bytes);
        write_varint(&mut out, s.distinct_terms);
        write_varint(&mut out, s.total_postings);
        write_varint(&mut out, s.posting_depth_sum);
        write_varint(&mut out, s.build_millis);

        out.freeze()
    }

    /// Deserializes an index produced by [`Self::to_bytes`].
    pub fn from_bytes(bytes: Bytes) -> Result<GksIndex, IndexError> {
        let mut input = bytes;
        if input.remaining() < MAGIC.len() + 4 {
            return Err(IndexError::Corrupt("header too short".into()));
        }
        let mut magic = [0u8; 5];
        input.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(IndexError::Corrupt("bad magic".into()));
        }
        let version = input.get_u32();
        if version != VERSION {
            return Err(IndexError::VersionMismatch { found: version, expected: VERSION });
        }

        let options = IndexOptions {
            analyzer: AnalyzerOptionsSer {
                remove_stopwords: input.get_u8() != 0,
                stem: input.get_u8() != 0,
                min_term_len: read_varint(&mut input)? as usize,
            },
            xml_attributes_as_elements: input.get_u8() != 0,
            index_element_names: input.get_u8() != 0,
        };

        let doc_count = read_varint(&mut input)? as usize;
        let mut doc_names = Vec::with_capacity(doc_count);
        for _ in 0..doc_count {
            doc_names.push(read_str(&mut input)?);
        }

        let label_count = read_varint(&mut input)? as usize;
        let mut node_table = NodeTable::new();
        for _ in 0..label_count {
            let name = read_str(&mut input)?;
            node_table.labels_mut().intern(&name);
        }

        let ids = decode_sorted_run(&mut input)?;
        for id in ids {
            let child_count = read_varint(&mut input)? as u32;
            if !input.has_remaining() {
                return Err(IndexError::Corrupt("truncated node meta".into()));
            }
            let flags = NodeFlags::from_bits(input.get_u8());
            let label = read_varint(&mut input)? as u32;
            if label as usize >= label_count {
                return Err(IndexError::Corrupt(format!("label id {label} out of range")));
            }
            node_table.insert(id, NodeMeta { child_count, flags, label });
        }

        let term_count = read_varint(&mut input)? as usize;
        let mut inverted = InvertedIndex::new();
        for _ in 0..term_count {
            let term = read_str(&mut input)?;
            let list = decode_sorted_run(&mut input)?;
            inverted.load_term(term, list);
        }

        let attr_count = read_varint(&mut input)? as usize;
        let mut attrs = AttrStore::new();
        for _ in 0..attr_count {
            let entity = decode_id(&mut input)?;
            let entry_count = read_varint(&mut input)? as usize;
            let mut entries = Vec::with_capacity(entry_count);
            for _ in 0..entry_count {
                let path_len = read_varint(&mut input)? as usize;
                let mut path = Vec::with_capacity(path_len);
                for _ in 0..path_len {
                    path.push(read_varint(&mut input)? as u32);
                }
                let value = read_str(&mut input)?;
                if !input.has_remaining() {
                    return Err(IndexError::Corrupt("truncated attr entry".into()));
                }
                let source = match input.get_u8() {
                    0 => AttrSource::Attribute,
                    1 => AttrSource::RepeatingText,
                    other => return Err(IndexError::Corrupt(format!("bad attr source {other}"))),
                };
                entries.push(AttrEntry { path, value, source });
            }
            attrs.insert(entity, entries);
        }

        let mut stats = IndexStats {
            doc_count: read_varint(&mut input)?,
            total_nodes: read_varint(&mut input)?,
            census: read_census(&mut input)?,
            ..Default::default()
        };
        let per_label_count = read_varint(&mut input)? as usize;
        for _ in 0..per_label_count {
            let label = read_str(&mut input)?;
            let census = read_census(&mut input)?;
            stats.per_label.insert(label, census);
        }
        stats.max_depth = read_varint(&mut input)? as u32;
        stats.raw_bytes = read_varint(&mut input)?;
        stats.distinct_terms = read_varint(&mut input)?;
        stats.total_postings = read_varint(&mut input)?;
        stats.posting_depth_sum = read_varint(&mut input)?;
        stats.build_millis = read_varint(&mut input)?;

        Ok(GksIndex::from_parts(options, node_table, inverted, attrs, stats, doc_names))
    }

    /// Writes the index to a file, returning the number of bytes written
    /// (the "Index Size" of Table 4). The write is atomic — bytes land in a
    /// sibling temp file renamed into place — so a concurrent reader (the
    /// server's per-shard reload, the delta commit protocol) never observes
    /// a torn index file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<u64, IndexError> {
        let path = path.as_ref();
        let bytes = self.to_bytes();
        let tmp = crate::shard::sibling_tmp_path(path);
        fs::write(&tmp, &bytes)?;
        if let Err(e) = fs::rename(&tmp, path) {
            let _ = fs::remove_file(&tmp);
            return Err(IndexError::Io(e));
        }
        Ok(bytes.len() as u64)
    }

    /// Loads an index written by [`Self::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<GksIndex, IndexError> {
        let _open_span = gks_trace::span(gks_trace::SpanKind::IndexOpen);
        let bytes = fs::read(path)?;
        GksIndex::from_bytes(Bytes::from(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Corpus;

    const XML: &str = r#"<dblp>
        <article><title>System R</title><author>Jim Gray</author><author>Kapali Eswaran</author></article>
        <article><title>INGRES</title><author>Michael Stonebraker</author></article>
    </dblp>"#;

    fn sample_index() -> GksIndex {
        let corpus = Corpus::from_named_strs([("dblp", XML)]).unwrap();
        GksIndex::build(&corpus, IndexOptions::default()).unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let ix = sample_index();
        let bytes = ix.to_bytes();
        let loaded = GksIndex::from_bytes(bytes).unwrap();

        assert_eq!(loaded.options(), ix.options());
        assert_eq!(loaded.doc_names(), ix.doc_names());
        assert_eq!(loaded.stats().total_nodes, ix.stats().total_nodes);
        assert_eq!(loaded.stats().census, ix.stats().census);
        assert_eq!(loaded.stats().max_depth, ix.stats().max_depth);
        assert_eq!(loaded.stats().per_label, ix.stats().per_label);
        assert_eq!(loaded.inverted().term_count(), ix.inverted().term_count());
        for (term, list) in ix.inverted().iter() {
            assert_eq!(loaded.postings(term), list, "postings for {term}");
        }
        assert_eq!(loaded.node_table().len(), ix.node_table().len());
        for (dewey, meta) in ix.node_table().iter() {
            let other = loaded.node_table().get(dewey).unwrap();
            assert_eq!(other.child_count, meta.child_count);
            assert_eq!(other.flags, meta.flags);
            assert_eq!(
                loaded.node_table().labels().name(other.label),
                ix.node_table().labels().name(meta.label)
            );
        }
        assert_eq!(loaded.attr_store().len(), ix.attr_store().len());
        for (entity, entries) in ix.attr_store().iter() {
            let other = loaded.attr_store().entries(entity);
            assert_eq!(other.len(), entries.len());
            for (a, b) in entries.iter().zip(other) {
                assert_eq!(a.value, b.value);
                assert_eq!(a.source, b.source);
                let names = |ix: &GksIndex, e: &AttrEntry| -> Vec<String> {
                    e.path.iter().map(|&l| ix.node_table().labels().name(l).to_string()).collect()
                };
                assert_eq!(names(&ix, a), names(&loaded, b));
            }
        }
    }

    #[test]
    fn save_load_via_filesystem() {
        let ix = sample_index();
        let dir = std::env::temp_dir().join("gks-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.gksix");
        let written = ix.save(&path).unwrap();
        assert!(written > 0);
        let loaded = GksIndex::load(&path).unwrap();
        assert_eq!(loaded.postings("gray"), ix.postings("gray"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let err = GksIndex::from_bytes(Bytes::from_static(b"NOTIX\0\0\0\0rest")).unwrap_err();
        assert!(matches!(err, IndexError::Corrupt(_)));
    }

    #[test]
    fn version_mismatch_rejected() {
        let ix = sample_index();
        let mut bytes = ix.to_bytes().to_vec();
        bytes[5..9].copy_from_slice(&99u32.to_be_bytes());
        let err = GksIndex::from_bytes(Bytes::from(bytes)).unwrap_err();
        assert!(matches!(err, IndexError::VersionMismatch { found: 99, .. }));
    }

    #[test]
    fn truncated_input_rejected() {
        let ix = sample_index();
        let bytes = ix.to_bytes();
        let truncated = bytes.slice(..bytes.len() / 2);
        assert!(GksIndex::from_bytes(truncated).is_err());
    }
}
