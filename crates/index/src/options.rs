//! Index construction options.

use gks_text::AnalyzerOptions;
use serde::{Deserialize, Serialize};

/// Options controlling how a corpus is indexed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexOptions {
    /// Text normalization applied to text-node content, element names and
    /// (at query time, by the engine) query keywords.
    pub analyzer: AnalyzerOptionsSer,
    /// Treat each XML attribute `k="v"` as a child element `<k>v</k>`.
    /// Data-oriented repositories like Mondial carry most of their payload in
    /// XML attributes; the paper's tree model has only elements and text, so
    /// this lifting (on by default) makes such data searchable.
    pub xml_attributes_as_elements: bool,
    /// Index element tag names as keywords. The paper's queries mix tag
    /// names and text keywords (e.g. QM2 = `{Laos, country, name}`).
    pub index_element_names: bool,
}

impl Default for IndexOptions {
    fn default() -> Self {
        IndexOptions {
            analyzer: AnalyzerOptionsSer::default(),
            xml_attributes_as_elements: true,
            index_element_names: true,
        }
    }
}

impl IndexOptions {
    /// The analyzer options in `gks-text`'s own type.
    pub fn analyzer_options(&self) -> AnalyzerOptions {
        AnalyzerOptions {
            remove_stopwords: self.analyzer.remove_stopwords,
            stem: self.analyzer.stem,
            min_term_len: self.analyzer.min_term_len,
        }
    }
}

/// Serializable mirror of [`AnalyzerOptions`] (kept here so `gks-text` stays
/// serde-free).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalyzerOptionsSer {
    /// See [`AnalyzerOptions::remove_stopwords`].
    pub remove_stopwords: bool,
    /// See [`AnalyzerOptions::stem`].
    pub stem: bool,
    /// See [`AnalyzerOptions::min_term_len`].
    pub min_term_len: usize,
}

impl Default for AnalyzerOptionsSer {
    fn default() -> Self {
        let def = AnalyzerOptions::default();
        AnalyzerOptionsSer {
            remove_stopwords: def.remove_stopwords,
            stem: def.stem,
            min_term_len: def.min_term_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_pipeline() {
        let o = IndexOptions::default();
        assert!(o.analyzer.remove_stopwords);
        assert!(o.analyzer.stem);
        assert!(o.xml_attributes_as_elements);
        assert!(o.index_element_names);
    }

    #[test]
    fn analyzer_options_mirror() {
        let o = IndexOptions::default();
        let a = o.analyzer_options();
        assert_eq!(a, AnalyzerOptions::default());
    }
}
