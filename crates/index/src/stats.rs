//! Index statistics backing the paper's Tables 4 and 5.

use serde::{Deserialize, Serialize};

use crate::categorize::NodeCategory;
use crate::fasthash::FastMap;

/// Node counts per category — one row of the paper's Table 5.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CategoryCensus {
    /// Attribute nodes (AN).
    pub attribute: u64,
    /// Repeating nodes (RN).
    pub repeating: u64,
    /// Entity nodes (EN).
    pub entity: u64,
    /// Connecting nodes (CN).
    pub connecting: u64,
}

impl CategoryCensus {
    /// Adds one node of the given primary category.
    pub fn add(&mut self, cat: NodeCategory) {
        match cat {
            NodeCategory::Attribute => self.attribute += 1,
            NodeCategory::Repeating => self.repeating += 1,
            NodeCategory::Entity => self.entity += 1,
            NodeCategory::Connecting => self.connecting += 1,
        }
    }

    /// Total nodes counted.
    pub fn total(&self) -> u64 {
        self.attribute + self.repeating + self.entity + self.connecting
    }

    /// Count for one category.
    pub fn get(&self, cat: NodeCategory) -> u64 {
        match cat {
            NodeCategory::Attribute => self.attribute,
            NodeCategory::Repeating => self.repeating,
            NodeCategory::Entity => self.entity,
            NodeCategory::Connecting => self.connecting,
        }
    }

    /// Merges another census into this one.
    pub fn merge(&mut self, other: &CategoryCensus) {
        self.attribute += other.attribute;
        self.repeating += other.repeating;
        self.entity += other.entity;
        self.connecting += other.connecting;
    }
}

/// Corpus- and index-level statistics gathered during the build pass.
#[derive(Debug, Clone, Default)]
pub struct IndexStats {
    /// Documents indexed.
    pub doc_count: u64,
    /// Total element nodes (text elements included).
    pub total_nodes: u64,
    /// Primary-category census over all nodes (Table 5).
    pub census: CategoryCensus,
    /// Census per element label (the §7.2 per-element analysis, e.g.
    /// `<authors>` vs `<articles>` connecting-node counts).
    pub per_label: FastMap<String, CategoryCensus>,
    /// Maximum node depth seen ("XML Depth" of Table 4).
    pub max_depth: u32,
    /// Raw XML bytes indexed.
    pub raw_bytes: u64,
    /// Distinct normalized terms.
    pub distinct_terms: u64,
    /// Total postings across all lists.
    pub total_postings: u64,
    /// Sum of the depths of all postings — `avg_keyword_depth` is the
    /// "average keyword depth d" the paper reports for its response-time
    /// corpora (§7.1.2: 6.7–6.9 for NASA, 3.1–3.5 for SwissProt).
    pub posting_depth_sum: u64,
    /// Wall-clock build time in milliseconds ("Index Preparation Time").
    pub build_millis: u64,
}

impl IndexStats {
    /// Average depth of a keyword posting.
    pub fn avg_keyword_depth(&self) -> f64 {
        if self.total_postings == 0 {
            0.0
        } else {
            self.posting_depth_sum as f64 / self.total_postings as f64
        }
    }
}

impl IndexStats {
    /// Merges per-document stats (used by the parallel builder).
    pub fn merge(&mut self, other: &IndexStats) {
        self.doc_count += other.doc_count;
        self.total_nodes += other.total_nodes;
        self.census.merge(&other.census);
        for (label, census) in &other.per_label {
            self.per_label.entry(label.clone()).or_default().merge(census);
        }
        self.max_depth = self.max_depth.max(other.max_depth);
        self.raw_bytes += other.raw_bytes;
        // Term/posting counters are corpus-global; the builder refreshes
        // them after merging, so they are not summed here.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_accumulates() {
        let mut c = CategoryCensus::default();
        c.add(NodeCategory::Attribute);
        c.add(NodeCategory::Attribute);
        c.add(NodeCategory::Entity);
        assert_eq!(c.attribute, 2);
        assert_eq!(c.entity, 1);
        assert_eq!(c.total(), 3);
        assert_eq!(c.get(NodeCategory::Repeating), 0);
    }

    #[test]
    fn census_merge() {
        let mut a = CategoryCensus { attribute: 1, repeating: 2, entity: 3, connecting: 4 };
        let b = CategoryCensus { attribute: 10, repeating: 20, entity: 30, connecting: 40 };
        a.merge(&b);
        assert_eq!(a.total(), 110);
    }

    #[test]
    fn stats_merge_keeps_max_depth_and_sums() {
        let mut a =
            IndexStats { max_depth: 3, total_nodes: 10, doc_count: 1, ..Default::default() };
        let b = IndexStats { max_depth: 7, total_nodes: 5, doc_count: 2, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.max_depth, 7);
        assert_eq!(a.total_nodes, 15);
        assert_eq!(a.doc_count, 3);
    }
}
