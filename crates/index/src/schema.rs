//! Schema-level structural summary (the paper's stated future work).
//!
//! §2.2: "XML nodes are categorized at the instance level. … However, if a
//! `<Course>` node had just one student in its sub-tree, that instance would
//! have been stored as 'Connecting node' in the index. GKS can be easily
//! extended to take into account the XML schema to categorize the nodes.
//! This is part of our future work."
//!
//! This module implements that extension: a DataGuide-style summary that
//! aggregates every node instance under its *label path* (the element names
//! from the document root down to the node). Per path it records the
//! instance count, the instance-level category census, and child-count
//! statistics. [`SchemaSummary::harmonized_census`] then re-categorizes every
//! instance by its path's *dominant* category — so the single-author
//! `<article>`s that fell to CN at the instance level are counted as
//! entities, because the article *type* is an entity type.

use crate::builder::GksIndex;
use crate::categorize::NodeCategory;
use crate::fasthash::FastMap;
use crate::stats::CategoryCensus;

/// Aggregate statistics for one label path.
#[derive(Debug, Clone, Default)]
pub struct PathStats {
    /// Number of node instances with this label path.
    pub instances: u64,
    /// Instance-level category census.
    pub census: CategoryCensus,
    /// Sum of direct-child counts (for the average fan-out).
    pub total_children: u64,
    /// Maximum direct-child count seen.
    pub max_children: u32,
}

impl PathStats {
    /// The category most instances of this path fall into (ties broken in
    /// EN > RN > AN > CN order, favouring the more structured reading).
    pub fn dominant_category(&self) -> NodeCategory {
        let candidates = [
            (self.census.entity, NodeCategory::Entity),
            (self.census.repeating, NodeCategory::Repeating),
            (self.census.attribute, NodeCategory::Attribute),
            (self.census.connecting, NodeCategory::Connecting),
        ];
        // `max_by_key` keeps the *last* maximum, so iterate in reverse to
        // favour the earlier (more structured) category on ties, as
        // documented above. The default is unreachable: the array is
        // non-empty by construction.
        candidates
            .iter()
            .rev()
            .max_by_key(|(count, _)| *count)
            .map(|(_, cat)| *cat)
            .unwrap_or(NodeCategory::Connecting)
    }

    /// Average fan-out of instances.
    pub fn avg_children(&self) -> f64 {
        if self.instances == 0 {
            0.0
        } else {
            self.total_children as f64 / self.instances as f64
        }
    }
}

/// The structural summary: label path → aggregated statistics.
#[derive(Debug, Default)]
pub struct SchemaSummary {
    paths: FastMap<Vec<u32>, PathStats>,
    /// Label names, indexed by label id (copied from the index's interner).
    labels: Vec<String>,
}

impl SchemaSummary {
    /// Builds the summary from a finished index in one pass over the node
    /// table (O(nodes · depth) label-path reconstructions).
    pub fn from_index(index: &GksIndex) -> SchemaSummary {
        let table = index.node_table();
        let mut paths: FastMap<Vec<u32>, PathStats> = FastMap::default();
        let mut path_buf: Vec<u32> = Vec::new();
        for (dewey, meta) in table.iter() {
            path_buf.clear();
            // Reconstruct the label path root→node; every prefix of a
            // recorded node is itself recorded.
            let mut ok = true;
            for depth in 0..=dewey.depth() {
                let prefix = dewey.ancestor_at_depth(depth);
                match table.get(&prefix) {
                    Some(m) => path_buf.push(m.label),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            let stats = paths.entry(path_buf.clone()).or_default();
            stats.instances += 1;
            stats.census.add(meta.flags.primary());
            stats.total_children += u64::from(meta.child_count);
            stats.max_children = stats.max_children.max(meta.child_count);
        }
        let labels = table.labels().names().to_vec();
        SchemaSummary { paths, labels }
    }

    /// Number of distinct label paths (the "schema size").
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True when the summary is empty.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Stats for one label path given as element names.
    pub fn get(&self, names: &[&str]) -> Option<&PathStats> {
        let ids: Option<Vec<u32>> = names
            .iter()
            .map(|n| self.labels.iter().position(|l| l == n).map(|i| i as u32))
            .collect();
        self.paths.get(&ids?)
    }

    /// Iterates `(path names, stats)` pairs, sorted by path for stable
    /// output.
    pub fn iter_sorted(&self) -> Vec<(Vec<&str>, &PathStats)> {
        let mut out: Vec<(Vec<&str>, &PathStats)> = self
            .paths
            .iter()
            .map(|(ids, stats)| {
                (ids.iter().map(|&i| self.labels[i as usize].as_str()).collect(), stats)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// The schema-level census: every instance re-categorized as its path's
    /// dominant category. Compare with the instance-level census of
    /// [`crate::stats::IndexStats::census`] — the difference is exactly the
    /// irregular instances (single-author articles, one-student courses).
    pub fn harmonized_census(&self) -> CategoryCensus {
        let mut census = CategoryCensus::default();
        for stats in self.paths.values() {
            let dominant = stats.dominant_category();
            for _ in 0..stats.instances {
                census.add(dominant);
            }
        }
        census
    }

    /// Paths whose dominant category is Entity — the corpus's *entity
    /// types* (`/dblp/article`, `/mondial/country`, …).
    pub fn entity_paths(&self) -> Vec<Vec<&str>> {
        self.iter_sorted()
            .into_iter()
            .filter(|(_, s)| s.dominant_category() == NodeCategory::Entity)
            .map(|(p, _)| p)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Corpus;
    use crate::options::IndexOptions;

    /// Articles: two multi-author (EN) + one single-author (CN at instance
    /// level) — the §2.2 future-work scenario.
    const XML: &str = r#"<dblp>
        <article><title>A</title><author>X One</author><author>Y Two</author></article>
        <article><title>B</title><author>X One</author><author>Z Three</author></article>
        <article><title>C</title><author>W Solo</author></article>
    </dblp>"#;

    fn summary() -> SchemaSummary {
        let corpus = Corpus::from_named_strs([("d", XML)]).unwrap();
        let index = GksIndex::build(&corpus, IndexOptions::default()).unwrap();
        SchemaSummary::from_index(&index)
    }

    #[test]
    fn paths_aggregate_instances() {
        let s = summary();
        let article = s.get(&["dblp", "article"]).expect("article path");
        assert_eq!(article.instances, 3);
        assert_eq!(article.census.entity, 2, "two multi-author articles");
        assert_eq!(article.census.connecting, 1, "one single-author article");
        assert!(article.avg_children() > 2.0);
        let author = s.get(&["dblp", "article", "author"]).expect("author path");
        assert_eq!(author.instances, 5);
    }

    #[test]
    fn dominant_category_promotes_irregular_instances() {
        let s = summary();
        let article = s.get(&["dblp", "article"]).unwrap();
        assert_eq!(article.dominant_category(), NodeCategory::Entity);
        // Harmonized census counts all three articles as entities.
        let harmonized = s.harmonized_census();
        assert_eq!(harmonized.entity, 3);
        assert_eq!(harmonized.connecting, 1, "only the dblp root stays CN");
    }

    #[test]
    fn entity_paths_lists_entity_types() {
        let s = summary();
        let paths = s.entity_paths();
        assert_eq!(paths, vec![vec!["dblp", "article"]]);
    }

    #[test]
    fn unknown_paths_are_absent() {
        let s = summary();
        assert!(s.get(&["nope"]).is_none());
        assert!(s.get(&["dblp", "nope"]).is_none());
        assert!(!s.is_empty());
        assert!(s.len() >= 4, "dblp, article, title, author");
    }
}
