//! The GKS indexing engine (paper §2.2, §2.4).
//!
//! Indexing is "a onetime activity" performed "in a single pass over the
//! data" that exploits the pre-order arrival of XML nodes. For a corpus of
//! XML documents this crate produces a [`GksIndex`] holding:
//!
//! * an **inverted index** mapping each normalized text keyword (and element
//!   tag name) to the document-ordered list of Dewey ids containing it;
//! * the **node table** — the paper's `entityHash` and `elementHash` — with
//!   each node's category flags and direct-child count (the child counts
//!   drive the potential-flow ranking of §5);
//! * the **attribute store**: for every entity node, the text of its
//!   qualifying attribute nodes together with the element path from the
//!   entity down to each attribute — the raw material of DI discovery (§2.3,
//!   §6.2);
//! * **statistics** (node-category census, depth, sizes) backing the paper's
//!   Tables 4 and 5.
//!
//! Node categorization (attribute / repeating / entity / connecting, §2.2)
//! happens at the *instance* level during the same single pass; see
//! [`categorize`] for the exact rules and the interpretation choices they
//! embody.

pub mod attrstore;
pub mod builder;
pub mod categorize;
pub mod corpus;
pub mod delta;
pub mod doctor;
pub mod error;
pub mod fasthash;
pub mod node_table;
pub mod options;
pub mod persist;
pub mod postings;
pub mod schema;
pub mod shard;
pub mod stats;

pub use attrstore::{AttrEntry, AttrSource, AttrStore};
pub use builder::GksIndex;
pub use categorize::{NodeCategory, NodeFlags};
pub use corpus::Corpus;
pub use delta::{
    commit_delta, compact, index_directory, plan_delta, validate_manifest, validate_manifest_files,
    CommitStats, CompactStats, DeltaPlan, ManifestViolation,
};
pub use doctor::Violation;
pub use error::IndexError;
pub use node_table::{NodeMeta, NodeTable};
pub use options::IndexOptions;
pub use persist::{section_sizes, IndexFormat, SectionSizes};
pub use postings::{InvertedIndex, MappedPostings, PostingsReader};
pub use schema::{PathStats, SchemaSummary};
pub use shard::{
    split_corpus, DocEntry, ShardEntry, ShardKind, ShardManifest, ShardView, Tombstone, DEAD_DOC,
    MANIFEST_MAGIC,
};
pub use stats::{CategoryCensus, IndexStats};
