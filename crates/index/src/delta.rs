//! Incremental indexing: change detection, delta-shard commits, and
//! compaction over a [`ShardManifest`].
//!
//! The update path is LSM-flavored. A **commit** scans the corpus
//! directory recorded in the manifest, detects added/changed/deleted
//! documents (mtime fast path, content hash on mismatch), builds one small
//! self-contained delta shard over the new/changed documents only, writes
//! tombstones for every superseded or deleted copy, and replaces the
//! manifest atomically with the epoch bumped by one. **Compaction** folds
//! everything back down: it rebuilds the base shard set from the corpus
//! directory, clears the tombstones, and atomically installs the new
//! manifest before deleting the superseded shard files.
//!
//! Crash safety hangs entirely on the manifest rename being the commit
//! point: shard files are written (atomically, see `GksIndex::save`)
//! *before* the manifest that references them, so a crash mid-commit
//! leaves the old epoch fully intact plus, at worst, orphaned shard files
//! that [`validate_manifest_files`] reports and the next compaction
//! sweeps away.
//!
//! Document numbering is the invariant that keeps delta search
//! byte-identical to a full rebuild: the manifest's document table is kept
//! in corpus-scan order (the order [`Corpus::from_directory`] would assign
//! ids in), so a gather stage renumbering shard-local hits through the
//! table produces exactly the global ids a monolithic rebuild would.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::builder::GksIndex;
use crate::corpus::Corpus;
use crate::error::IndexError;
use crate::options::IndexOptions;
use crate::shard::{split_corpus, DocEntry, ShardKind, ShardManifest, Tombstone};

/// Milliseconds since the Unix epoch, saturating at zero on a clock set
/// before 1970. The manifest's `committed-ms` field and the server's
/// `gks_index_freshness_seconds` metric are both derived from this.
pub fn wall_clock_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// How far a file's mtime must predate the last commit before the mtime
/// fast path may skip hashing it. Covers the gap between the kernel's
/// coarse file-timestamp clock (tick granularity, up to ~10ms) and the
/// precise clock behind [`wall_clock_ms`], plus filesystems that truncate
/// mtimes to whole seconds (FAT stores two-second resolution).
const MTIME_SLACK_MS: u64 = 2_000;

/// Stable 64-bit FNV-1a content hash used for change detection. Not a
/// collision-resistant digest — it only has to distinguish "this document
/// changed" from "it did not" across commits, and it must stay stable
/// across platforms and program runs (unlike the seeded query-path hash).
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One `.xml` file found by [`scan_corpus_dir`]: its stem name, full path,
/// and mtime (0 when the filesystem refuses to say).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScannedDoc {
    /// Document name (file stem), matching corpus/document-table naming.
    pub name: String,
    /// Full path to the `.xml` file.
    pub path: PathBuf,
    /// File mtime in ms since the Unix epoch, 0 if unavailable.
    pub mtime_ms: u64,
}

/// Lists the `.xml` files directly inside `dir`, sorted by path — the same
/// order (and the same stem naming) [`Corpus::from_directory`] indexes in,
/// which is what keeps delta numbering identical to a full rebuild.
pub fn scan_corpus_dir(dir: &Path) -> Result<Vec<ScannedDoc>, IndexError> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e.eq_ignore_ascii_case("xml")))
        .collect();
    paths.sort();
    Ok(paths
        .into_iter()
        .map(|path| {
            let name = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.display().to_string());
            let mtime_ms = fs::metadata(&path)
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
                .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
                .unwrap_or(0);
            ScannedDoc { name, path, mtime_ms }
        })
        .collect())
}

/// One live document in a [`DeltaPlan`], in corpus-scan order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlannedEntry {
    /// Unchanged: carried over from the current document table.
    Keep(DocEntry),
    /// New or changed: goes into the delta shard being built.
    Upsert {
        /// Document name (file stem).
        name: String,
        /// The document's current XML, read at scan time.
        xml: String,
        /// Content hash of `xml`.
        hash: u64,
        /// File mtime at scan time.
        mtime_ms: u64,
    },
}

/// The outcome of change detection: what the next commit would do.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DeltaPlan {
    /// Every live document in corpus-scan order — the next epoch's
    /// document table, with upserts destined for the delta shard.
    pub docs: Vec<PlannedEntry>,
    /// Tombstones for the superseded copies of changed documents and the
    /// copies of deleted ones.
    pub tombstones: Vec<Tombstone>,
    /// Documents not present in the previous epoch.
    pub added: usize,
    /// Documents whose content hash changed.
    pub changed: usize,
    /// Documents present in the previous epoch but gone from disk.
    pub deleted: usize,
}

impl DeltaPlan {
    /// True when a commit of this plan would be a no-op.
    pub fn is_clean(&self) -> bool {
        self.added == 0 && self.changed == 0 && self.deleted == 0
    }
}

/// Scans `corpus_dir` and diffs it against `manifest`'s document table.
///
/// Unchanged documents are detected by mtime first (no read) and content
/// hash second, so a `touch` without a content change stays a no-op.
/// Requires a manifest with a document table — a legacy v1 manifest (or a
/// v2 one built from explicit file lists) cannot support incremental
/// updates because document identity is not recorded.
pub fn plan_delta(manifest: &ShardManifest, corpus_dir: &Path) -> Result<DeltaPlan, IndexError> {
    if manifest.docs.is_empty() {
        return Err(IndexError::Corrupt(
            "manifest has no document table; rebuild with `gks index --shards` over a corpus \
             directory to enable incremental updates"
                .into(),
        ));
    }
    let old: HashMap<&str, &DocEntry> =
        manifest.docs.iter().map(|d| (d.name.as_str(), d)).collect();
    let mut plan = DeltaPlan::default();
    let mut seen: Vec<&str> = Vec::new();
    for scanned in scan_corpus_dir(corpus_dir)? {
        if let Some(&entry) = old.get(scanned.name.as_str()) {
            seen.push(entry.name.as_str());
            // The mtime fast path is only trusted when the mtime predates
            // the last commit by a clear margin. Strict `<` is not enough:
            // file mtimes come from the kernel's coarse (tick-granularity)
            // clock while `committed-ms` reads the precise one, so a
            // rewrite landing in the same tick as the original write gets
            // an identical mtime that still sorts before the commit — the
            // hash check below is what catches it.
            if entry.mtime_ms != 0
                && entry.mtime_ms == scanned.mtime_ms
                && scanned.mtime_ms.saturating_add(MTIME_SLACK_MS) < manifest.committed_ms
            {
                plan.docs.push(PlannedEntry::Keep(entry.clone()));
                continue;
            }
            let xml = fs::read_to_string(&scanned.path)?;
            let hash = content_hash(xml.as_bytes());
            if hash == entry.hash {
                plan.docs.push(PlannedEntry::Keep(entry.clone()));
                continue;
            }
            plan.changed += 1;
            plan.tombstones.push(Tombstone {
                shard: entry.shard,
                local: entry.local,
                name: entry.name.clone(),
            });
            plan.docs.push(PlannedEntry::Upsert {
                name: scanned.name,
                xml,
                hash,
                mtime_ms: scanned.mtime_ms,
            });
        } else {
            let xml = fs::read_to_string(&scanned.path)?;
            let hash = content_hash(xml.as_bytes());
            plan.added += 1;
            plan.docs.push(PlannedEntry::Upsert {
                name: scanned.name,
                xml,
                hash,
                mtime_ms: scanned.mtime_ms,
            });
        }
    }
    for doc in &manifest.docs {
        if !seen.contains(&doc.name.as_str()) {
            plan.deleted += 1;
            plan.tombstones.push(Tombstone {
                shard: doc.shard,
                local: doc.local,
                name: doc.name.clone(),
            });
        }
    }
    Ok(plan)
}

/// What a committed delta did, for logs and admin responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitStats {
    /// The epoch the commit installed.
    pub epoch: u64,
    /// Documents added / changed / deleted by this commit.
    pub added: usize,
    /// See `added`.
    pub changed: usize,
    /// See `added`.
    pub deleted: usize,
    /// Path of the delta shard written, if any (pure deletions write none).
    pub delta_path: Option<PathBuf>,
}

/// Resolves `p` against `dir` when relative.
fn resolve_in(dir: &Path, p: &Path) -> PathBuf {
    if p.is_relative() {
        dir.join(p)
    } else {
        p.to_path_buf()
    }
}

fn manifest_dir(manifest_path: &Path) -> PathBuf {
    manifest_path
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn manifest_stem(manifest_path: &Path) -> String {
    manifest_path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "index".into())
}

/// The corpus directory a manifest's update path scans, resolved against
/// the manifest's own directory.
pub fn corpus_dir_of(manifest: &ShardManifest, manifest_path: &Path) -> Option<PathBuf> {
    manifest
        .corpus_dir
        .as_ref()
        .map(|dir| resolve_in(&manifest_dir(manifest_path), dir))
}

/// Scans the manifest's corpus directory and, if anything changed, commits
/// one delta: a new delta shard over added/changed documents (none for
/// pure deletions), tombstones for superseded copies, an updated document
/// table, and an atomic epoch bump. Returns `None` when the corpus is
/// unchanged (the idempotent watcher poll). The manifest file itself is
/// the unit of atomicity — see the [module docs](self).
pub fn commit_delta(manifest_path: &Path) -> Result<Option<CommitStats>, IndexError> {
    let _span = gks_trace::span(gks_trace::SpanKind::DeltaBuild);
    // Parse the raw text rather than `load` so stored paths stay verbatim
    // (relative entries stay relocatable when we re-render the manifest).
    let text = fs::read_to_string(manifest_path)?;
    let mut manifest = ShardManifest::parse(&text)?;
    let dir = manifest_dir(manifest_path);
    let corpus_dir = corpus_dir_of(&manifest, manifest_path).ok_or_else(|| {
        IndexError::Corrupt(
            "manifest records no corpus directory; re-index with `gks index --shards` over a \
             directory to enable incremental updates"
                .into(),
        )
    })?;
    let plan = plan_delta(&manifest, &corpus_dir)?;
    if plan.is_clean() {
        return Ok(None);
    }
    let new_epoch = manifest.epoch.saturating_add(1);
    let upserts: Vec<(&str, &str)> = plan
        .docs
        .iter()
        .filter_map(|d| match d {
            PlannedEntry::Upsert { name, xml, .. } => Some((name.as_str(), xml.as_str())),
            PlannedEntry::Keep(_) => None,
        })
        .collect();
    let mut delta_path = None;
    let new_shard_id = manifest.next_shard_id();
    if !upserts.is_empty() {
        let corpus = Corpus::from_named_strs(upserts)?;
        let ix = GksIndex::build(&corpus, manifest.options.clone())?;
        let file = format!("{}.delta{new_epoch}.gksix", manifest_stem(manifest_path));
        let full = dir.join(&file);
        ix.save(&full)?;
        let doc_base = u32::try_from(manifest.doc_count())
            .map_err(|_| IndexError::Corrupt("corpus exceeds the u32 document-id space".into()))?;
        let mut entry = ShardManifest::entry_for(&ix, PathBuf::from(&file), doc_base);
        entry.id = new_shard_id;
        entry.kind = ShardKind::Delta;
        entry.born = new_epoch;
        manifest.shards.push(entry);
        delta_path = Some(full);
    }
    let mut next_local = 0u32;
    manifest.docs = plan
        .docs
        .into_iter()
        .map(|d| match d {
            PlannedEntry::Keep(entry) => entry,
            PlannedEntry::Upsert { name, hash, mtime_ms, .. } => {
                let local = next_local;
                next_local = next_local.saturating_add(1);
                DocEntry { shard: new_shard_id, local, hash, mtime_ms, name }
            }
        })
        .collect();
    manifest.tombstones.extend(plan.tombstones);
    manifest.epoch = new_epoch;
    manifest.committed_ms = wall_clock_ms();
    manifest.save(manifest_path)?;
    Ok(Some(CommitStats {
        epoch: new_epoch,
        added: plan.added,
        changed: plan.changed,
        deleted: plan.deleted,
        delta_path,
    }))
}

/// What a compaction did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactStats {
    /// The epoch the compaction installed.
    pub epoch: u64,
    /// Number of base shards in the compacted set.
    pub base_shards: usize,
    /// Live documents in the compacted set.
    pub docs: usize,
    /// Superseded shard files deleted after the commit.
    pub removed_files: usize,
}

/// Folds all deltas and tombstones back into a fresh base shard set.
///
/// Compaction is a rebuild from the corpus directory: every live document
/// is re-read from source, split into as many base shards as the previous
/// epoch had, indexed, and committed under new shard files — then the
/// superseded files are deleted. (Re-reading from source also absorbs any
/// corpus change that raced the compaction; the result always matches the
/// directory at scan time.) Returns `None` when there is nothing to fold —
/// no delta shards and no tombstones.
pub fn compact(manifest_path: &Path) -> Result<Option<CompactStats>, IndexError> {
    let _span = gks_trace::span(gks_trace::SpanKind::Compaction);
    let text = fs::read_to_string(manifest_path)?;
    let old = ShardManifest::parse(&text)?;
    if old.delta_shard_count() == 0 && old.tombstones.is_empty() {
        return Ok(None);
    }
    let dir = manifest_dir(manifest_path);
    let corpus_dir = corpus_dir_of(&old, manifest_path).ok_or_else(|| {
        IndexError::Corrupt("manifest records no corpus directory; cannot compact".into())
    })?;
    let base_shards = old.shards.iter().filter(|s| s.kind == ShardKind::Base).count().max(1);
    let new_epoch = old.epoch.saturating_add(1);
    let manifest = build_base_set(
        manifest_path,
        &corpus_dir,
        old.corpus_dir.clone(),
        old.options.clone(),
        base_shards,
        new_epoch,
    )?;
    manifest.save(manifest_path)?;
    // Only now is it safe to drop the superseded files. A crash between
    // the rename and these deletes leaves orphans, which `gks doctor`
    // reports and the next compaction removes.
    let keep: Vec<PathBuf> = manifest.shards.iter().map(|s| resolve_in(&dir, &s.path)).collect();
    let mut removed_files = 0usize;
    for shard in &old.shards {
        let full = resolve_in(&dir, &shard.path);
        if !keep.contains(&full) && fs::remove_file(&full).is_ok() {
            removed_files += 1;
        }
    }
    Ok(Some(CompactStats {
        epoch: manifest.epoch,
        base_shards: manifest.shards.len(),
        docs: manifest.docs.len(),
        removed_files,
    }))
}

/// Builds a complete sharded index over `corpus_dir` and writes a fresh v2
/// manifest (epoch 0) with a document table and corpus pointer, enabling
/// the incremental update path. Shard files are written next to
/// `manifest_path` as `{stem}.base0.{i}.gksix`.
pub fn index_directory(
    corpus_dir: &Path,
    manifest_path: &Path,
    shards: usize,
    options: IndexOptions,
) -> Result<ShardManifest, IndexError> {
    // Store the corpus dir relative to the manifest when it lives inside
    // the manifest's directory (keeps the pair relocatable), else absolute.
    let dir = manifest_dir(manifest_path);
    let resolved = resolve_in(&dir, corpus_dir);
    let stored = resolved
        .strip_prefix(&dir)
        .map(Path::to_path_buf)
        .unwrap_or_else(|_| fs::canonicalize(&resolved).unwrap_or_else(|_| resolved.clone()));
    let manifest = build_base_set(manifest_path, &resolved, Some(stored), options, shards, 0)?;
    manifest.save(manifest_path)?;
    Ok(manifest)
}

/// Shared by [`index_directory`] and [`compact`]: scans `corpus_dir`,
/// splits it into `shards` base shards, builds and saves each shard file
/// as `{stem}.base{epoch}.{i}.gksix` next to the manifest, and returns the
/// manifest (not yet saved) with a full document table.
fn build_base_set(
    manifest_path: &Path,
    corpus_dir: &Path,
    stored_corpus_dir: Option<PathBuf>,
    options: IndexOptions,
    shards: usize,
    epoch: u64,
) -> Result<ShardManifest, IndexError> {
    let dir = manifest_dir(manifest_path);
    let stem = manifest_stem(manifest_path);
    let scanned = scan_corpus_dir(corpus_dir)?;
    if scanned.is_empty() {
        return Err(IndexError::Corrupt(format!(
            "no .xml files in {} — refusing to build an empty index",
            corpus_dir.display()
        )));
    }
    let mut corpus = Corpus::new();
    let mut hashes = Vec::with_capacity(scanned.len());
    for doc in &scanned {
        let xml = fs::read_to_string(&doc.path)?;
        hashes.push(content_hash(xml.as_bytes()));
        corpus.push(doc.name.clone(), xml);
    }
    let parts = split_corpus(&corpus, shards);
    let mut manifest = ShardManifest {
        epoch,
        committed_ms: wall_clock_ms(),
        corpus_dir: stored_corpus_dir,
        options: options.clone(),
        ..ShardManifest::default()
    };
    let mut global = 0usize;
    let mut doc_base = 0u32;
    for (i, part) in parts.iter().enumerate() {
        let ix = GksIndex::build(part, options.clone())?;
        let file = format!("{stem}.base{epoch}.{i}.gksix");
        ix.save(dir.join(&file))?;
        let mut entry = ShardManifest::entry_for(&ix, PathBuf::from(&file), doc_base);
        entry.id = i as u64;
        entry.born = epoch;
        let count = entry.doc_count;
        manifest.shards.push(entry);
        for (local, doc) in part.docs().iter().enumerate() {
            manifest.docs.push(DocEntry {
                shard: i as u64,
                local: u32::try_from(local).unwrap_or(u32::MAX),
                hash: hashes.get(global).copied().unwrap_or(0),
                mtime_ms: scanned.get(global).map(|s| s.mtime_ms).unwrap_or(0),
                name: doc.name.clone(),
            });
            global += 1;
        }
        doc_base = doc_base.saturating_add(count);
    }
    Ok(manifest)
}

/// One problem found while validating a manifest's incremental-update
/// state. Mirrors the index-level `doctor::Violation` idiom: a typed,
/// printable finding rather than a hard error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestViolation {
    /// A shard claims it was born in a later epoch than the manifest's.
    BornAfterEpoch {
        /// Shard id.
        shard: u64,
        /// The shard's recorded birth epoch.
        born: u64,
        /// The manifest's epoch.
        epoch: u64,
    },
    /// Shard birth epochs go backwards along the shard list.
    BornNotMonotonic {
        /// Shard id.
        shard: u64,
        /// The shard's recorded birth epoch.
        born: u64,
        /// The preceding shard's birth epoch.
        prev: u64,
    },
    /// A document-table entry points at a shard id the manifest lacks.
    DocShardMissing {
        /// Document name.
        name: String,
        /// The missing shard id.
        shard: u64,
    },
    /// A document-table entry's local id exceeds its shard's doc count.
    DocLocalOutOfRange {
        /// Document name.
        name: String,
        /// Shard id.
        shard: u64,
        /// The out-of-range local id.
        local: u32,
        /// The shard's document count.
        doc_count: u32,
    },
    /// The same name appears twice in the document table.
    DuplicateDocName {
        /// The repeated name.
        name: String,
    },
    /// Two document-table entries map to the same `(shard, local)` slot.
    DuplicateDocSlot {
        /// Shard id.
        shard: u64,
        /// The doubly-claimed local id.
        local: u32,
    },
    /// A tombstone points at a shard id the manifest lacks.
    TombstoneShardMissing {
        /// Tombstoned document name.
        name: String,
        /// The missing shard id.
        shard: u64,
    },
    /// A tombstone's local id exceeds its shard's doc count.
    TombstoneLocalOutOfRange {
        /// Tombstoned document name.
        name: String,
        /// Shard id.
        shard: u64,
        /// The out-of-range local id.
        local: u32,
        /// The shard's document count.
        doc_count: u32,
    },
    /// A tombstone masks a slot the document table still lists as live.
    TombstoneLive {
        /// Document name.
        name: String,
        /// Shard id.
        shard: u64,
        /// Local id claimed both dead and live.
        local: u32,
    },
    /// A tombstone points into a shard born in the current epoch — a doc
    /// cannot be committed and superseded by the same commit.
    TombstoneTooNew {
        /// Tombstoned document name.
        name: String,
        /// Shard id.
        shard: u64,
    },
    /// A shard file referenced by the manifest does not exist on disk.
    MissingShardFile {
        /// The resolved path.
        path: PathBuf,
    },
    /// A `{stem}.*.gksix` file next to the manifest is referenced by no
    /// shard entry — debris from a crashed commit or compaction.
    OrphanShardFile {
        /// The orphaned file.
        path: PathBuf,
    },
    /// A loaded shard's document name disagrees with the manifest (the
    /// referential-integrity check: every tombstone and table entry must
    /// name the document actually stored at its `(shard, local)` slot).
    NameMismatch {
        /// Name recorded in the manifest.
        name: String,
        /// Shard id.
        shard: u64,
        /// Local id.
        local: u32,
        /// Name the shard itself stores at that slot (empty if none).
        actual: String,
    },
}

impl fmt::Display for ManifestViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestViolation::BornAfterEpoch { shard, born, epoch } => {
                write!(f, "shard {shard} born in epoch {born}, after the manifest epoch {epoch}")
            }
            ManifestViolation::BornNotMonotonic { shard, born, prev } => write!(
                f,
                "shard {shard} born in epoch {born}, earlier than the preceding shard's {prev}"
            ),
            ManifestViolation::DocShardMissing { name, shard } => {
                write!(f, "doc {name:?} points at missing shard {shard}")
            }
            ManifestViolation::DocLocalOutOfRange { name, shard, local, doc_count } => write!(
                f,
                "doc {name:?} claims local id {local} in shard {shard}, which holds only \
                 {doc_count} documents"
            ),
            ManifestViolation::DuplicateDocName { name } => {
                write!(f, "doc {name:?} appears twice in the document table")
            }
            ManifestViolation::DuplicateDocSlot { shard, local } => {
                write!(f, "two documents claim slot (shard {shard}, local {local})")
            }
            ManifestViolation::TombstoneShardMissing { name, shard } => {
                write!(f, "tombstone {name:?} points at missing shard {shard}")
            }
            ManifestViolation::TombstoneLocalOutOfRange { name, shard, local, doc_count } => {
                write!(
                    f,
                    "tombstone {name:?} claims local id {local} in shard {shard}, which holds \
                     only {doc_count} documents"
                )
            }
            ManifestViolation::TombstoneLive { name, shard, local } => write!(
                f,
                "tombstone {name:?} masks (shard {shard}, local {local}), which the document \
                 table still lists as live"
            ),
            ManifestViolation::TombstoneTooNew { name, shard } => {
                write!(f, "tombstone {name:?} points into shard {shard}, born in the current epoch")
            }
            ManifestViolation::MissingShardFile { path } => {
                write!(f, "shard file {} is missing on disk", path.display())
            }
            ManifestViolation::OrphanShardFile { path } => {
                write!(
                    f,
                    "orphaned shard file {} is referenced by no manifest entry",
                    path.display()
                )
            }
            ManifestViolation::NameMismatch { name, shard, local, actual } => write!(
                f,
                "manifest names (shard {shard}, local {local}) as {name:?} but the shard \
                 stores {actual:?}"
            ),
        }
    }
}

/// Structural validation of a manifest's incremental-update state: epoch
/// monotonicity and document-table / tombstone referential integrity.
/// Purely in-memory — see [`validate_manifest_files`] for the disk checks.
/// Findings are sorted by rendered message, like `GksIndex::doctor`.
pub fn validate_manifest(manifest: &ShardManifest) -> Vec<ManifestViolation> {
    let mut out = Vec::new();
    let mut prev_born = 0u64;
    for s in &manifest.shards {
        if s.born > manifest.epoch {
            out.push(ManifestViolation::BornAfterEpoch {
                shard: s.id,
                born: s.born,
                epoch: manifest.epoch,
            });
        }
        if s.born < prev_born {
            out.push(ManifestViolation::BornNotMonotonic {
                shard: s.id,
                born: s.born,
                prev: prev_born,
            });
        }
        prev_born = s.born;
    }
    let mut slots: Vec<(u64, u32)> = Vec::with_capacity(manifest.docs.len());
    for (i, d) in manifest.docs.iter().enumerate() {
        if manifest.docs[..i].iter().any(|p| p.name == d.name) {
            out.push(ManifestViolation::DuplicateDocName { name: d.name.clone() });
        }
        if slots.contains(&(d.shard, d.local)) {
            out.push(ManifestViolation::DuplicateDocSlot { shard: d.shard, local: d.local });
        }
        slots.push((d.shard, d.local));
        match manifest.shard_by_id(d.shard) {
            None => out
                .push(ManifestViolation::DocShardMissing { name: d.name.clone(), shard: d.shard }),
            Some(s) if d.local >= s.doc_count => {
                out.push(ManifestViolation::DocLocalOutOfRange {
                    name: d.name.clone(),
                    shard: d.shard,
                    local: d.local,
                    doc_count: s.doc_count,
                });
            }
            Some(_) => {}
        }
    }
    for t in &manifest.tombstones {
        match manifest.shard_by_id(t.shard) {
            None => {
                out.push(ManifestViolation::TombstoneShardMissing {
                    name: t.name.clone(),
                    shard: t.shard,
                });
                continue;
            }
            Some(s) => {
                if t.local >= s.doc_count {
                    out.push(ManifestViolation::TombstoneLocalOutOfRange {
                        name: t.name.clone(),
                        shard: t.shard,
                        local: t.local,
                        doc_count: s.doc_count,
                    });
                }
                if s.born == manifest.epoch && manifest.epoch > 0 {
                    out.push(ManifestViolation::TombstoneTooNew {
                        name: t.name.clone(),
                        shard: t.shard,
                    });
                }
            }
        }
        if manifest.docs.iter().any(|d| d.shard == t.shard && d.local == t.local) {
            out.push(ManifestViolation::TombstoneLive {
                name: t.name.clone(),
                shard: t.shard,
                local: t.local,
            });
        }
    }
    out.sort_by_key(ManifestViolation::to_string);
    out
}

/// Disk-level validation: missing shard files, orphaned `{stem}.*.gksix`
/// files next to the manifest, and — for shards that load — document-name
/// referential integrity between the manifest and the shard contents.
pub fn validate_manifest_files(
    manifest: &ShardManifest,
    manifest_path: &Path,
) -> Vec<ManifestViolation> {
    let dir = manifest_dir(manifest_path);
    let stem = manifest_stem(manifest_path);
    let mut out = Vec::new();
    let referenced: Vec<PathBuf> =
        manifest.shards.iter().map(|s| resolve_in(&dir, &s.path)).collect();
    if let Ok(entries) = fs::read_dir(&dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
                continue;
            };
            if name.starts_with(&format!("{stem}."))
                && name.ends_with(".gksix")
                && !referenced.contains(&path)
            {
                out.push(ManifestViolation::OrphanShardFile { path });
            }
        }
    }
    for s in &manifest.shards {
        let full = resolve_in(&dir, &s.path);
        if !full.exists() {
            out.push(ManifestViolation::MissingShardFile { path: full });
            continue;
        }
        let Ok(ix) = GksIndex::load(&full) else {
            continue;
        };
        for d in manifest.docs.iter().filter(|d| d.shard == s.id) {
            let actual = ix.doc_name(gks_dewey::DocId(d.local)).unwrap_or("");
            if actual != d.name {
                out.push(ManifestViolation::NameMismatch {
                    name: d.name.clone(),
                    shard: d.shard,
                    local: d.local,
                    actual: actual.to_string(),
                });
            }
        }
        for t in manifest.tombstones.iter().filter(|t| t.shard == s.id) {
            let actual = ix.doc_name(gks_dewey::DocId(t.local)).unwrap_or("");
            if actual != t.name {
                out.push(ManifestViolation::NameMismatch {
                    name: t.name.clone(),
                    shard: t.shard,
                    local: t.local,
                    actual: actual.to_string(),
                });
            }
        }
    }
    out.sort_by_key(ManifestViolation::to_string);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::DEAD_DOC;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gks-delta-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_doc(dir: &Path, name: &str, body: &str) {
        fs::write(dir.join(format!("{name}.xml")), body).unwrap();
    }

    fn fresh(root: &Path, shards: usize) -> PathBuf {
        let corpus = root.join("corpus");
        fs::create_dir_all(&corpus).unwrap();
        write_doc(&corpus, "alpha", "<r><t>apple banana</t></r>");
        write_doc(&corpus, "beta", "<r><t>cherry banana</t></r>");
        write_doc(&corpus, "gamma", "<r><t>durian apple</t></r>");
        let manifest_path = root.join("corpus.shards");
        index_directory(&corpus, &manifest_path, shards, IndexOptions::default()).unwrap();
        manifest_path
    }

    #[test]
    fn content_hash_is_stable_and_discriminating() {
        assert_eq!(content_hash(b"abc"), content_hash(b"abc"));
        assert_ne!(content_hash(b"abc"), content_hash(b"abd"));
        assert_eq!(content_hash(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn index_directory_writes_table_and_corpus_pointer() {
        let root = temp_root("fresh");
        let manifest_path = fresh(&root, 2);
        let m = ShardManifest::load(&manifest_path).unwrap();
        assert_eq!(m.epoch, 0);
        assert_eq!(m.shards.len(), 2);
        assert_eq!(m.docs.len(), 3);
        assert!(m.tombstones.is_empty());
        assert_eq!(m.corpus_dir, Some(root.join("corpus")));
        let names: Vec<&str> = m.docs.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["alpha", "beta", "gamma"], "table follows scan order");
        assert!(validate_manifest(&m).is_empty());
        assert!(validate_manifest_files(&m, &manifest_path).is_empty());
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn clean_corpus_commits_nothing() {
        let root = temp_root("clean");
        let manifest_path = fresh(&root, 1);
        assert_eq!(commit_delta(&manifest_path).unwrap(), None);
        assert_eq!(ShardManifest::load(&manifest_path).unwrap().epoch, 0);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn add_modify_delete_commits_one_delta() {
        let root = temp_root("amd");
        let manifest_path = fresh(&root, 2);
        let corpus = root.join("corpus");
        write_doc(&corpus, "delta", "<r><t>elderberry</t></r>"); // add
        write_doc(&corpus, "alpha", "<r><t>apricot banana</t></r>"); // modify
        fs::remove_file(corpus.join("beta.xml")).unwrap(); // delete
        let stats = commit_delta(&manifest_path).unwrap().expect("dirty corpus must commit");
        assert_eq!((stats.added, stats.changed, stats.deleted), (1, 1, 1));
        assert_eq!(stats.epoch, 1);
        assert!(stats.delta_path.as_ref().unwrap().exists());

        let m = ShardManifest::load(&manifest_path).unwrap();
        assert_eq!(m.epoch, 1);
        assert_eq!(m.delta_shard_count(), 1);
        assert_eq!(m.delta_doc_count(), 2, "added + changed live in the delta");
        // beta deleted, alpha superseded: two tombstones.
        assert_eq!(m.tombstones.len(), 2);
        let names: Vec<&str> = m.docs.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["alpha", "delta", "gamma"], "scan order = rebuild order");
        assert!(validate_manifest(&m).is_empty());
        assert!(validate_manifest_files(&m, &manifest_path).is_empty());

        // The shard views mask exactly the superseded/deleted locals.
        let views = m.shard_views();
        let dead: usize = views.iter().map(|v| v.tombstones.len()).sum();
        assert_eq!(dead, 2);
        for v in &views {
            let map = v.doc_map.as_ref().unwrap();
            for &t in &v.tombstones {
                assert_eq!(map[t as usize], DEAD_DOC);
            }
        }
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn pure_deletion_writes_no_delta_shard() {
        let root = temp_root("del");
        let manifest_path = fresh(&root, 1);
        fs::remove_file(root.join("corpus/gamma.xml")).unwrap();
        let stats = commit_delta(&manifest_path).unwrap().unwrap();
        assert_eq!((stats.added, stats.changed, stats.deleted), (0, 0, 1));
        assert!(stats.delta_path.is_none());
        let m = ShardManifest::load(&manifest_path).unwrap();
        assert_eq!(m.shards.len(), 1, "no new shard for a pure deletion");
        assert_eq!(m.docs.len(), 2);
        assert_eq!(m.tombstones.len(), 1);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn touch_without_content_change_is_clean() {
        let root = temp_root("touch");
        let manifest_path = fresh(&root, 1);
        // Rewrite a doc with identical bytes: mtime moves, hash does not.
        let path = root.join("corpus/alpha.xml");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes).unwrap();
        assert_eq!(commit_delta(&manifest_path).unwrap(), None);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn compaction_folds_deltas_and_sweeps_files() {
        let root = temp_root("compact");
        let manifest_path = fresh(&root, 2);
        let corpus = root.join("corpus");
        write_doc(&corpus, "delta", "<r><t>elderberry</t></r>");
        fs::remove_file(corpus.join("beta.xml")).unwrap();
        commit_delta(&manifest_path).unwrap().unwrap();
        let stats = compact(&manifest_path).unwrap().expect("deltas present, must compact");
        assert_eq!(stats.epoch, 2);
        assert_eq!(stats.base_shards, 2);
        assert_eq!(stats.docs, 3);
        assert!(stats.removed_files >= 3, "old bases + delta swept");
        let m = ShardManifest::load(&manifest_path).unwrap();
        assert_eq!(m.delta_shard_count(), 0);
        assert!(m.tombstones.is_empty());
        assert_eq!(m.epoch, 2);
        assert!(validate_manifest(&m).is_empty());
        assert!(validate_manifest_files(&m, &manifest_path).is_empty());
        // Nothing left to fold: compaction is now a no-op.
        assert!(compact(&manifest_path).unwrap().is_none());
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn validator_flags_integrity_breaks() {
        let root = temp_root("validate");
        let manifest_path = fresh(&root, 1);
        let mut m = ShardManifest::load(&manifest_path).unwrap();
        m.tombstones.push(Tombstone { shard: 9, local: 0, name: "ghost".into() });
        m.tombstones.push(Tombstone { shard: 0, local: 99, name: "far".into() });
        m.tombstones.push(Tombstone { shard: 0, local: 0, name: "alpha".into() });
        m.docs.push(m.docs[0].clone());
        m.shards[0].born = m.epoch + 5;
        let rendered: Vec<String> =
            validate_manifest(&m).iter().map(ManifestViolation::to_string).collect();
        assert!(rendered.iter().any(|v| v.contains("missing shard 9")), "{rendered:?}");
        assert!(rendered.iter().any(|v| v.contains("holds only")), "{rendered:?}");
        assert!(rendered.iter().any(|v| v.contains("still lists as live")), "{rendered:?}");
        assert!(rendered.iter().any(|v| v.contains("appears twice")), "{rendered:?}");
        assert!(rendered.iter().any(|v| v.contains("after the manifest epoch")), "{rendered:?}");
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn orphaned_shard_files_are_reported() {
        let root = temp_root("orphan");
        let manifest_path = fresh(&root, 1);
        fs::write(root.join("corpus.delta9.gksix"), b"debris").unwrap();
        let m = ShardManifest::load(&manifest_path).unwrap();
        let found = validate_manifest_files(&m, &manifest_path);
        assert!(
            found
                .iter()
                .any(|v| matches!(v, ManifestViolation::OrphanShardFile { path } if path.ends_with("corpus.delta9.gksix"))),
            "{found:?}"
        );
        fs::remove_dir_all(&root).ok();
    }
}
