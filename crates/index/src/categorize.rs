//! The GKS node categorization model (paper §2.2).
//!
//! Nodes are placed in four categories, *at the instance level*, from the
//! structure of their subtrees alone (no schema needed):
//!
//! * **Attribute node (AN)** — Def 2.1.1: a node whose only child is its
//!   value. A text-only node that has a same-label sibling is a *repeating*
//!   node instead ("a node that directly contains its value and also has
//!   siblings with the same XML tag is considered a repeating node").
//! * **Repeating node (RN)** — Def 2.1.2: a node with same-label siblings.
//!   Every example in the paper (Students, Courses, Areas, authors) is a
//!   sibling group, so sibling repetition is the operational rule here.
//! * **Entity node (EN)** — Def 2.1.3: the lowest common ancestor of a
//!   repeating group and at least one attribute node whose path from the
//!   entity crosses no repeating node (such attributes "define the context of
//!   the repeating nodes in its sub-tree").
//! * **Connecting node (CN)** — everything else.
//!
//! Because "XML documents follow pre-order arrival of nodes … different node
//! types are identified in a single pass": a node's EN status is decided when
//! its end tag arrives (all children summaries are known), and its AN/RN
//! status is decided when its *parent's* end tag arrives (siblings are then
//! known). [`close_element`] implements exactly that hand-off.
//!
//! A node can hold several flags at once — "a node can be an entity node and
//! at the same time a repeating node for another entity node higher up in the
//! hierarchy" — so flags are a bit set ([`NodeFlags`]) and Table-5-style
//! censuses use the single *primary* category ([`NodeFlags::primary`]): text
//! nodes are RN if repeating else AN; element nodes are EN if the entity rule
//! holds, else RN if repeating *and without attribute children* (this is what
//! makes the paper's single-author `<article>` instances count as CN), else
//! CN.

use serde::{Deserialize, Serialize};

/// The four categories of §2.2, used for censuses and display.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeCategory {
    /// Attribute node (AN).
    Attribute,
    /// Repeating node (RN).
    Repeating,
    /// Entity node (EN).
    Entity,
    /// Connecting node (CN).
    Connecting,
}

impl NodeCategory {
    /// Short display form used in experiment tables.
    pub fn abbrev(self) -> &'static str {
        match self {
            NodeCategory::Attribute => "AN",
            NodeCategory::Repeating => "RN",
            NodeCategory::Entity => "EN",
            NodeCategory::Connecting => "CN",
        }
    }
}

/// Bit-set of category memberships plus structural facts about a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NodeFlags(u8);

impl NodeFlags {
    const ATTRIBUTE: u8 = 1 << 0;
    const REPEATING: u8 = 1 << 1;
    const ENTITY: u8 = 1 << 2;
    const CONNECTING: u8 = 1 << 3;
    /// The node has no element children (it directly contains its value).
    const TEXT_ONLY: u8 = 1 << 4;
    /// The node has at least one direct attribute-node child.
    const HAS_ATTR_CHILD: u8 = 1 << 5;

    /// No flags set.
    pub fn empty() -> Self {
        NodeFlags(0)
    }

    /// Raw bits, for persistence.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Rebuilds from persisted bits.
    pub fn from_bits(bits: u8) -> Self {
        NodeFlags(bits)
    }

    /// Is the attribute-node flag set?
    pub fn is_attribute(self) -> bool {
        self.0 & Self::ATTRIBUTE != 0
    }

    /// Is the repeating-node flag set?
    pub fn is_repeating(self) -> bool {
        self.0 & Self::REPEATING != 0
    }

    /// Is the entity-node flag set?
    pub fn is_entity(self) -> bool {
        self.0 & Self::ENTITY != 0
    }

    /// Is the connecting-node flag set?
    pub fn is_connecting(self) -> bool {
        self.0 & Self::CONNECTING != 0
    }

    /// Does the node directly contain its value (no element children)?
    pub fn is_text_only(self) -> bool {
        self.0 & Self::TEXT_ONLY != 0
    }

    /// Does the node have a direct attribute-node child?
    pub fn has_attr_child(self) -> bool {
        self.0 & Self::HAS_ATTR_CHILD != 0
    }

    fn set(&mut self, bit: u8, on: bool) {
        if on {
            self.0 |= bit;
        } else {
            self.0 &= !bit;
        }
    }

    /// The single category used in Table-5-style censuses (see module docs
    /// for the priority policy).
    pub fn primary(self) -> NodeCategory {
        if self.is_text_only() {
            if self.is_repeating() {
                NodeCategory::Repeating
            } else {
                NodeCategory::Attribute
            }
        } else if self.is_entity() {
            NodeCategory::Entity
        } else if self.is_repeating() && !self.has_attr_child() {
            NodeCategory::Repeating
        } else {
            NodeCategory::Connecting
        }
    }
}

/// What a closed element reports to its parent. The parent finalizes the
/// child's AN/RN status (sibling repetition is a parent-level fact) and uses
/// the structural summaries for its own entity decision.
#[derive(Debug, Clone)]
pub struct ChildSummary {
    /// Interned label of the child element.
    pub label: u32,
    /// The child directly contains its value (no element children).
    pub text_only: bool,
    /// The child's subtree contains an attribute node reachable from the
    /// child without crossing a repeating node.
    pub qual_attr_inside: bool,
    /// The child's subtree contains a repeating sibling group.
    pub has_rep_inside: bool,
}

/// The outcome of closing an element, produced by [`close_element`].
#[derive(Debug, Clone)]
pub struct CloseOutcome {
    /// Whether this element satisfies the entity rule (Def 2.1.3).
    pub is_entity: bool,
    /// Whether this element has at least one direct attribute-node child.
    pub has_attr_child: bool,
    /// Per-child: is the child part of a repeating sibling group?
    pub child_repeating: Vec<bool>,
    /// Summary this element reports to *its* parent.
    pub summary_qual_attr_inside: bool,
    /// Summary: repeating group anywhere in this element's subtree.
    pub summary_has_rep_inside: bool,
}

/// Runs the categorization step for one closing element, given the summaries
/// of its element children (in order). `scratch` is a reusable label-count
/// buffer keyed by label id (cleared on entry).
pub fn close_element(
    children: &[ChildSummary],
    scratch: &mut crate::fasthash::FastMap<u32, u32>,
) -> CloseOutcome {
    scratch.clear();
    for c in children {
        *scratch.entry(c.label).or_insert(0) += 1;
    }
    let child_repeating: Vec<bool> = children.iter().map(|c| scratch[&c.label] >= 2).collect();
    let rep_at_v = child_repeating.iter().any(|&r| r);

    // A child grants "qualifying attribute" reachability when it is itself an
    // attribute node (text-only, non-repeating) or a non-repeating element
    // whose subtree has one.
    let attr_reach: Vec<bool> = children
        .iter()
        .zip(&child_repeating)
        .map(|(c, &rep)| !rep && (c.text_only || c.qual_attr_inside))
        .collect();
    let qual_attr_total = attr_reach.iter().any(|&a| a);

    let has_attr_child = children.iter().zip(&child_repeating).any(|(c, &rep)| c.text_only && !rep);

    // Entity rule: a qualifying attribute and a repeating group whose joint
    // LCA is this node. A group formed by this node's own repeating children
    // has its LCA here, so any qualifying attribute works (case A). Otherwise
    // the attribute and a group buried in a subtree must come from *distinct*
    // children (case B) — if both witnesses live inside one child, that child
    // (or something below it) is the LCA, not this node.
    let is_entity = if rep_at_v && qual_attr_total {
        true
    } else {
        let rep_in: Vec<bool> = children.iter().map(|c| c.has_rep_inside).collect();
        (0..children.len())
            .any(|i| attr_reach[i] && (0..children.len()).any(|j| j != i && rep_in[j]))
    };

    let summary_has_rep_inside = rep_at_v || children.iter().any(|c| c.has_rep_inside);

    CloseOutcome {
        is_entity,
        has_attr_child,
        child_repeating,
        summary_qual_attr_inside: qual_attr_total,
        summary_has_rep_inside,
    }
}

/// Sets the flags a parent decides for its child: repetition, and thereby
/// AN-vs-RN for text-only children.
pub fn finalize_child_flags(flags: &mut NodeFlags, repeating: bool) {
    flags.set(NodeFlags::REPEATING, repeating);
    if flags.is_text_only() {
        flags.set(NodeFlags::ATTRIBUTE, !repeating);
    } else if !flags.is_entity() {
        flags.set(NodeFlags::CONNECTING, true);
    }
}

/// Sets the flags an element decides for itself at close time.
pub fn self_flags(text_only: bool, is_entity: bool, has_attr_child: bool) -> NodeFlags {
    let mut f = NodeFlags::empty();
    f.set(NodeFlags::TEXT_ONLY, text_only);
    f.set(NodeFlags::ENTITY, is_entity && !text_only);
    f.set(NodeFlags::HAS_ATTR_CHILD, has_attr_child);
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fasthash::FastMap;

    fn child(label: u32, text_only: bool, qual: bool, rep: bool) -> ChildSummary {
        ChildSummary { label, text_only, qual_attr_inside: qual, has_rep_inside: rep }
    }

    #[test]
    fn entity_case_a_direct_group_plus_attribute() {
        // <course><name>…</name><student/><student/></course> — wait,
        // students here are direct repeating children; name is a direct AN.
        let children = [
            child(0, true, false, false),
            child(1, true, false, false),
            child(1, true, false, false),
        ];
        let out = close_element(&children, &mut FastMap::default());
        assert!(out.is_entity);
        assert_eq!(out.child_repeating, vec![false, true, true]);
        assert!(out.has_attr_child);
        assert!(out.summary_qual_attr_inside);
        assert!(out.summary_has_rep_inside);
    }

    #[test]
    fn entity_case_b_attribute_and_group_in_distinct_children() {
        // <area><name>…</name><courses>(course*)</courses></area>: the group
        // lives inside <courses>, the attribute is direct — LCA is <area>.
        let children = [child(0, true, false, false), child(1, false, false, true)];
        let out = close_element(&children, &mut FastMap::default());
        assert!(out.is_entity);
    }

    #[test]
    fn connecting_node_group_without_attribute() {
        // <courses><course/><course/></courses> with no attribute anywhere:
        // a repeating group but nothing to define its context.
        let children = [child(0, false, false, true), child(0, false, false, true)];
        let out = close_element(&children, &mut FastMap::default());
        assert!(!out.is_entity);
        assert!(out.summary_has_rep_inside);
    }

    #[test]
    fn witnesses_inside_one_child_do_not_make_parent_entity() {
        // Both the attribute and the group are inside the same single child:
        // the LCA is (at or below) that child, not this node.
        let children = [child(0, false, true, true)];
        let out = close_element(&children, &mut FastMap::default());
        assert!(!out.is_entity);
        // But both facts propagate upward.
        assert!(out.summary_qual_attr_inside);
        assert!(out.summary_has_rep_inside);
    }

    #[test]
    fn attribute_inside_repeating_child_is_not_qualifying() {
        // <courses><course>(has attrs)</course><course>…</course></courses>:
        // the courses repeat, so their attributes define *their* context, not
        // the parent's.
        let children = [child(0, false, true, false), child(0, false, true, false)];
        let out = close_element(&children, &mut FastMap::default());
        // There IS a repeating group at v, but no qualifying attribute.
        assert!(!out.is_entity);
        assert!(!out.summary_qual_attr_inside);
    }

    #[test]
    fn single_author_article_is_not_entity() {
        // <article><title/><author/><year/></article>: all children are
        // attribute nodes; no repeating group → CN (paper §7.2 discussion).
        let children = [
            child(0, true, false, false),
            child(1, true, false, false),
            child(2, true, false, false),
        ];
        let out = close_element(&children, &mut FastMap::default());
        assert!(!out.is_entity);
        assert!(out.has_attr_child);
    }

    #[test]
    fn multi_author_article_is_entity() {
        // <article><title/><author/><author/></article>: repeating author
        // group + title attribute → EN.
        let children = [
            child(0, true, false, false),
            child(1, true, false, false),
            child(1, true, false, false),
        ];
        let out = close_element(&children, &mut FastMap::default());
        assert!(out.is_entity);
    }

    #[test]
    fn primary_category_policies() {
        // Text-only, not repeating → AN.
        let mut f = self_flags(true, false, false);
        finalize_child_flags(&mut f, false);
        assert_eq!(f.primary(), NodeCategory::Attribute);

        // Text-only, repeating → RN.
        let mut f = self_flags(true, false, false);
        finalize_child_flags(&mut f, true);
        assert_eq!(f.primary(), NodeCategory::Repeating);

        // Entity stays EN even when repeating.
        let mut f = self_flags(false, true, true);
        finalize_child_flags(&mut f, true);
        assert_eq!(f.primary(), NodeCategory::Entity);
        assert!(f.is_repeating(), "flag overlap is preserved");

        // Repeating element with attribute children (single-author article)
        // → CN under the census policy.
        let mut f = self_flags(false, false, true);
        finalize_child_flags(&mut f, true);
        assert_eq!(f.primary(), NodeCategory::Connecting);

        // Repeating element without attribute children → RN.
        let mut f = self_flags(false, false, false);
        finalize_child_flags(&mut f, true);
        assert_eq!(f.primary(), NodeCategory::Repeating);

        // Plain interior element → CN.
        let mut f = self_flags(false, false, false);
        finalize_child_flags(&mut f, false);
        assert_eq!(f.primary(), NodeCategory::Connecting);
    }

    #[test]
    fn flags_round_trip_bits() {
        let mut f = self_flags(false, true, true);
        finalize_child_flags(&mut f, true);
        let g = NodeFlags::from_bits(f.bits());
        assert_eq!(f, g);
    }
}
