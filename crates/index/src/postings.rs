//! The inverted keyword index (paper §2.4, Table 3).
//!
//! "For each unique text keyword that appears in the XML document repository,
//! we keep an inverted index list … containing the Dewey id of all the nodes
//! which contain that keyword", document-ordered. Postings point at the
//! *text element itself* (for keywords in text values) or the element (for
//! tag-name keywords); the §2.1.1 rule that an attribute node's parent is the
//! lowest meaningful ancestor is applied at candidate-generation time by the
//! search engine, which promotes attribute-node candidates to their parents.

use gks_dewey::DeweyId;

use crate::fasthash::FastMap;

/// Inverted index from normalized terms to document-ordered posting lists.
#[derive(Debug, Default, Clone)]
pub struct InvertedIndex {
    term_ids: FastMap<String, u32>,
    terms: Vec<String>,
    lists: Vec<Vec<DeweyId>>,
    finalized: bool,
}

impl InvertedIndex {
    /// An empty index.
    pub fn new() -> Self {
        InvertedIndex::default()
    }

    /// Interns `term` and returns its id.
    pub fn term_id(&mut self, term: &str) -> u32 {
        if let Some(&id) = self.term_ids.get(term) {
            return id;
        }
        let id = self.terms.len() as u32;
        self.terms.push(term.to_string());
        self.term_ids.insert(term.to_string(), id);
        self.lists.push(Vec::new());
        id
    }

    /// Appends a posting for `term_id`. Postings may arrive out of order and
    /// with duplicates; [`Self::finalize`] sorts and dedups.
    pub fn push(&mut self, term_id: u32, id: DeweyId) {
        self.lists[term_id as usize].push(id);
        self.finalized = false;
    }

    /// Sorts every list into document order and removes duplicate postings
    /// (a node contains a keyword once no matter how many times the keyword
    /// occurs in one text value).
    pub fn finalize(&mut self) {
        for list in &mut self.lists {
            list.sort_unstable();
            list.dedup();
            list.shrink_to_fit();
        }
        self.finalized = true;
    }

    /// The posting list for a term, by name. Empty slice for unknown terms.
    pub fn postings(&self, term: &str) -> &[DeweyId] {
        debug_assert!(self.finalized, "postings() before finalize()");
        match self.term_ids.get(term) {
            Some(&id) => &self.lists[id as usize],
            None => &[],
        }
    }

    /// Whether the term occurs anywhere in the corpus.
    pub fn contains_term(&self, term: &str) -> bool {
        self.term_ids.contains_key(term)
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Total postings across all lists.
    pub fn total_postings(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    /// Iterates `(term, postings)` in term-id order (for persistence).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[DeweyId])> {
        self.terms.iter().map(String::as_str).zip(self.lists.iter().map(Vec::as_slice))
    }

    /// Mutable access to one posting list, for crate-internal corruption in
    /// doctor tests. Deliberately not public: callers could break the
    /// sorted-list invariant.
    #[cfg(test)]
    pub(crate) fn list_mut(&mut self, term_id: u32) -> &mut Vec<DeweyId> {
        &mut self.lists[term_id as usize]
    }

    /// Bulk-loads a term with an already-sorted list (persistence path).
    pub fn load_term(&mut self, term: String, list: Vec<DeweyId>) {
        let id = self.terms.len() as u32;
        self.term_ids.insert(term.clone(), id);
        self.terms.push(term);
        self.lists.push(list);
        self.finalized = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gks_dewey::DocId;

    fn d(doc: u32, steps: &[u32]) -> DeweyId {
        DeweyId::new(DocId(doc), steps.to_vec())
    }

    #[test]
    fn postings_sorted_and_deduped() {
        let mut ix = InvertedIndex::new();
        let karen = ix.term_id("karen");
        ix.push(karen, d(0, &[0, 1, 1, 2]));
        ix.push(karen, d(0, &[0, 1, 1, 0]));
        ix.push(karen, d(0, &[0, 1, 1, 0])); // duplicate occurrence
        ix.push(karen, d(1, &[0]));
        ix.finalize();
        assert_eq!(ix.postings("karen"), &[d(0, &[0, 1, 1, 0]), d(0, &[0, 1, 1, 2]), d(1, &[0])]);
    }

    #[test]
    fn unknown_term_is_empty() {
        let mut ix = InvertedIndex::new();
        ix.finalize();
        assert!(ix.postings("nothing").is_empty());
        assert!(!ix.contains_term("nothing"));
    }

    #[test]
    fn term_ids_are_stable() {
        let mut ix = InvertedIndex::new();
        let a = ix.term_id("a");
        let b = ix.term_id("b");
        assert_ne!(a, b);
        assert_eq!(ix.term_id("a"), a);
        assert_eq!(ix.term_count(), 2);
    }

    #[test]
    fn counters() {
        let mut ix = InvertedIndex::new();
        let a = ix.term_id("a");
        ix.push(a, d(0, &[0]));
        ix.push(a, d(0, &[1]));
        ix.finalize();
        assert_eq!(ix.total_postings(), 2);
        let pairs: Vec<_> = ix.iter().collect();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0, "a");
    }
}
