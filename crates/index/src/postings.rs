//! The inverted keyword index (paper §2.4, Table 3).
//!
//! "For each unique text keyword that appears in the XML document repository,
//! we keep an inverted index list … containing the Dewey id of all the nodes
//! which contain that keyword", document-ordered. Postings point at the
//! *text element itself* (for keywords in text values) or the element (for
//! tag-name keywords); the §2.1.1 rule that an attribute node's parent is the
//! lowest meaningful ancestor is applied at candidate-generation time by the
//! search engine, which promotes attribute-node candidates to their parents.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use bytes::Mmap;
use gks_dewey::codec::BlockedRunReader;
use gks_dewey::DeweyId;

use crate::fasthash::FastMap;

/// Inverted index from normalized terms to document-ordered posting lists.
#[derive(Debug, Default, Clone)]
pub struct InvertedIndex {
    term_ids: FastMap<String, u32>,
    terms: Vec<String>,
    lists: Vec<Vec<DeweyId>>,
    finalized: bool,
}

impl InvertedIndex {
    /// An empty index.
    pub fn new() -> Self {
        InvertedIndex::default()
    }

    /// Interns `term` and returns its id.
    pub fn term_id(&mut self, term: &str) -> u32 {
        if let Some(&id) = self.term_ids.get(term) {
            return id;
        }
        let id = self.terms.len() as u32;
        self.terms.push(term.to_string());
        self.term_ids.insert(term.to_string(), id);
        self.lists.push(Vec::new());
        id
    }

    /// Appends a posting for `term_id`. Postings may arrive out of order and
    /// with duplicates; [`Self::finalize`] sorts and dedups.
    pub fn push(&mut self, term_id: u32, id: DeweyId) {
        self.lists[term_id as usize].push(id);
        self.finalized = false;
    }

    /// Sorts every list into document order and removes duplicate postings
    /// (a node contains a keyword once no matter how many times the keyword
    /// occurs in one text value).
    pub fn finalize(&mut self) {
        for list in &mut self.lists {
            list.sort_unstable();
            list.dedup();
            list.shrink_to_fit();
        }
        self.finalized = true;
    }

    /// The posting list for a term, by name. Empty slice for unknown terms.
    pub fn postings(&self, term: &str) -> &[DeweyId] {
        debug_assert!(self.finalized, "postings() before finalize()");
        match self.term_ids.get(term) {
            Some(&id) => &self.lists[id as usize],
            None => &[],
        }
    }

    /// Whether the term occurs anywhere in the corpus.
    pub fn contains_term(&self, term: &str) -> bool {
        self.term_ids.contains_key(term)
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Total postings across all lists.
    pub fn total_postings(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    /// Iterates `(term, postings)` in term-id order (for persistence).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[DeweyId])> {
        self.terms.iter().map(String::as_str).zip(self.lists.iter().map(Vec::as_slice))
    }

    /// Mutable access to one posting list, for crate-internal corruption in
    /// doctor tests. Deliberately not public: callers could break the
    /// sorted-list invariant.
    #[cfg(test)]
    pub(crate) fn list_mut(&mut self, term_id: u32) -> &mut Vec<DeweyId> {
        &mut self.lists[term_id as usize]
    }

    /// Bulk-loads a term with an already-sorted list (persistence path).
    pub fn load_term(&mut self, term: String, list: Vec<DeweyId>) {
        let id = self.terms.len() as u32;
        self.term_ids.insert(term.clone(), id);
        self.terms.push(term);
        self.lists.push(list);
        self.finalized = true;
    }

    /// Estimated heap bytes held by decoded posting lists.
    pub fn resident_bytes(&self) -> u64 {
        self.lists
            .iter()
            .map(|l| {
                l.iter()
                    .map(|id| std::mem::size_of::<DeweyId>() as u64 + 4 * id.steps().len() as u64)
                    .sum::<u64>()
            })
            .sum()
    }
}

/// One term's dictionary record in a mapped (format v3) index: byte ranges
/// into the map plus the posting count from the skip header.
#[derive(Debug, Clone)]
pub(crate) struct TermEntry {
    /// Absolute byte range of the UTF-8 term in the map.
    pub term_start: usize,
    pub term_len: usize,
    /// Absolute byte range of the term's blocked posting run in the map.
    pub post_start: usize,
    pub post_len: usize,
    /// Posting count, known without decoding the run.
    pub count: usize,
}

/// Lazily-decoded posting lists over a memory-mapped format-v3 index.
///
/// The term dictionary (validated at open) lives as byte ranges into the
/// map; each posting list stays encoded until the first [`Self::postings`]
/// call, which decodes its blocked run into a per-term [`OnceLock`] slot.
/// Opening an index therefore never touches posting blocks, and a shard only
/// pays decode cost (and heap residency) for the terms queries actually hit.
pub struct MappedPostings {
    map: Arc<Mmap>,
    /// Dictionary records, sorted by term bytes for binary search.
    terms: Vec<TermEntry>,
    /// Decoded posting lists, filled on first access.
    slots: Vec<OnceLock<Vec<DeweyId>>>,
    /// Number of slots that have been decoded (posting blocks touched).
    decoded: AtomicUsize,
    /// First lazy-decode corruption observed, if any. Decode errors yield
    /// empty lists (the engine is panic-free past open) but are recorded
    /// here so `doctor` can surface them.
    corrupt: OnceLock<String>,
    total_postings: u64,
    /// Empty heap index handed out by [`PostingsReader::heap_mut`]'s
    /// impossible arm; keeps that projection total without a panic path.
    scratch: InvertedIndex,
}

impl std::fmt::Debug for MappedPostings {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MappedPostings({} terms, {} decoded, {} mapped bytes)",
            self.terms.len(),
            self.decoded.load(Ordering::Relaxed),
            self.map.len()
        )
    }
}

impl MappedPostings {
    /// Assembles a reader from an open map and its validated dictionary.
    pub(crate) fn from_parts(map: Arc<Mmap>, terms: Vec<TermEntry>) -> MappedPostings {
        let total_postings = terms.iter().map(|t| t.count as u64).sum();
        let slots = terms.iter().map(|_| OnceLock::new()).collect();
        MappedPostings {
            map,
            terms,
            slots,
            decoded: AtomicUsize::new(0),
            corrupt: OnceLock::new(),
            total_postings,
            scratch: InvertedIndex::new(),
        }
    }

    fn term_bytes(&self, i: usize) -> &[u8] {
        let e = &self.terms[i];
        &self.map.as_slice()[e.term_start..e.term_start + e.term_len]
    }

    fn term_str(&self, i: usize) -> &str {
        // Term bytes were UTF-8 validated when the dictionary was parsed at
        // open; a stale map cannot change under MAP_PRIVATE.
        std::str::from_utf8(self.term_bytes(i)).unwrap_or("")
    }

    /// Binary search for a term's dictionary slot.
    fn lookup(&self, term: &str) -> Option<usize> {
        self.terms
            .binary_search_by(|e| {
                let bytes = &self.map.as_slice()[e.term_start..e.term_start + e.term_len];
                bytes.cmp(term.as_bytes())
            })
            .ok()
    }

    fn run_bytes(&self, i: usize) -> &[u8] {
        let e = &self.terms[i];
        &self.map.as_slice()[e.post_start..e.post_start + e.post_len]
    }

    fn record_corrupt(&self, term_slot: usize, err: &gks_dewey::codec::DecodeError) {
        let _ = self
            .corrupt
            .set(format!("posting run for term #{term_slot} failed to decode: {err}"));
    }

    /// The decoded posting list for slot `i`, decoding (and caching) the
    /// blocked run on first access.
    fn list_at(&self, i: usize) -> &[DeweyId] {
        self.slots[i].get_or_init(|| {
            self.decoded.fetch_add(1, Ordering::Relaxed);
            let mut input = self.run_bytes(i);
            match BlockedRunReader::parse(&mut input, self.terms[i].count)
                .and_then(|r| r.decode_all())
            {
                Ok(ids) => ids,
                Err(e) => {
                    self.record_corrupt(i, &e);
                    Vec::new()
                }
            }
        })
    }

    /// The posting list for a term, by name. Empty slice for unknown terms.
    pub fn postings(&self, term: &str) -> &[DeweyId] {
        match self.lookup(term) {
            Some(i) => self.list_at(i),
            None => &[],
        }
    }

    /// The posting list with documents in the sorted `dead` list masked out,
    /// plus the exact number of postings masked.
    ///
    /// A term whose run is already decoded filters the cached list. An
    /// untouched term consults the skip table first: if whole blocks fall
    /// inside dead documents they are skipped without decoding (the masked
    /// tally stays exact because skip entries carry posting counts);
    /// otherwise the run is decoded once into the cache — base shards with
    /// small tombstone sets keep their lists hot.
    pub fn postings_masked(&self, term: &str, dead: &[u32]) -> (Vec<DeweyId>, u64) {
        let Some(i) = self.lookup(term) else {
            return (Vec::new(), 0);
        };
        if dead.is_empty() {
            return (self.list_at(i).to_vec(), 0);
        }
        if self.slots[i].get().is_none() {
            let mut input = self.run_bytes(i);
            match BlockedRunReader::parse(&mut input, self.terms[i].count) {
                Ok(reader) if reader.any_block_skippable(dead) => {
                    return match reader.decode_masked(dead) {
                        Ok(out) => out,
                        Err(e) => {
                            self.record_corrupt(i, &e);
                            (Vec::new(), 0)
                        }
                    };
                }
                Err(e) => {
                    self.record_corrupt(i, &e);
                    return (Vec::new(), 0);
                }
                Ok(_) => {} // nothing skippable: decode into the cache below
            }
        }
        let list = self.list_at(i);
        let survivors: Vec<DeweyId> = list
            .iter()
            .filter(|id| dead.binary_search(&id.doc().0).is_err())
            .cloned()
            .collect();
        let masked = (list.len() - survivors.len()) as u64;
        (survivors, masked)
    }

    /// Posting count for a term, straight from the dictionary — no decode.
    pub fn posting_count(&self, term: &str) -> usize {
        self.lookup(term).map_or(0, |i| self.terms[i].count)
    }

    /// Whether the term occurs anywhere in the corpus.
    pub fn contains_term(&self, term: &str) -> bool {
        self.lookup(term).is_some()
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Total postings across all lists (from the dictionary, no decode).
    pub fn total_postings(&self) -> usize {
        self.total_postings as usize
    }

    /// Iterates `(term, postings)` in sorted term order, decoding each list.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[DeweyId])> {
        (0..self.terms.len()).map(move |i| (self.term_str(i), self.list_at(i)))
    }

    /// How many posting runs have been decoded so far (0 right after open).
    pub fn decoded_terms(&self) -> usize {
        self.decoded.load(Ordering::Relaxed)
    }

    /// First corruption hit by a lazy decode, if any.
    pub fn corrupt(&self) -> Option<&str> {
        self.corrupt.get().map(String::as_str)
    }

    /// Bytes of the underlying file view counted as kernel-mapped (0 when
    /// the read-the-file fallback was used).
    pub fn bytes_mapped(&self) -> u64 {
        if self.map.is_mapped() {
            self.map.len() as u64
        } else {
            0
        }
    }

    /// Estimated heap bytes held by decoded posting lists.
    pub fn resident_bytes(&self) -> u64 {
        self.slots
            .iter()
            .filter_map(OnceLock::get)
            .map(|l| {
                l.iter()
                    .map(|id| std::mem::size_of::<DeweyId>() as u64 + 4 * id.steps().len() as u64)
                    .sum::<u64>()
            })
            .sum()
    }

    /// Fully decodes into a heap [`InvertedIndex`] (mutation paths).
    pub fn to_inverted(&self) -> InvertedIndex {
        let mut inv = InvertedIndex::new();
        for i in 0..self.terms.len() {
            inv.load_term(self.term_str(i).to_string(), self.list_at(i).to_vec());
        }
        inv
    }
}

/// How a [`crate::GksIndex`] holds its posting lists: fully decoded on the
/// heap (fresh builds, format v2), or lazily decoded off a memory map
/// (format v3). The engine only sees `&[DeweyId]` slices either way, so the
/// k-way merge, the sweep, tombstone masking and cost accounting run
/// unchanged over both representations.
#[derive(Debug)]
pub enum PostingsReader {
    /// Heap-resident lists (v2 loads and in-memory builds).
    Heap(InvertedIndex),
    /// Mapped, block-compressed lists decoded on first touch (v3).
    Mapped(MappedPostings),
}

impl Default for PostingsReader {
    fn default() -> Self {
        PostingsReader::Heap(InvertedIndex::new())
    }
}

impl PostingsReader {
    /// The posting list for a term, by name. Empty slice for unknown terms.
    pub fn postings(&self, term: &str) -> &[DeweyId] {
        match self {
            PostingsReader::Heap(inv) => inv.postings(term),
            PostingsReader::Mapped(m) => m.postings(term),
        }
    }

    /// Posting count for a term without forcing a decode.
    pub fn posting_count(&self, term: &str) -> usize {
        match self {
            PostingsReader::Heap(inv) => inv.postings(term).len(),
            PostingsReader::Mapped(m) => m.posting_count(term),
        }
    }

    /// The posting list with `dead` documents masked out, plus the number of
    /// postings masked. `dead` must be sorted.
    pub fn postings_masked(&self, term: &str, dead: &[u32]) -> (Vec<DeweyId>, u64) {
        match self {
            PostingsReader::Heap(inv) => {
                let list = inv.postings(term);
                if dead.is_empty() {
                    return (list.to_vec(), 0);
                }
                let survivors: Vec<DeweyId> = list
                    .iter()
                    .filter(|id| dead.binary_search(&id.doc().0).is_err())
                    .cloned()
                    .collect();
                let masked = (list.len() - survivors.len()) as u64;
                (survivors, masked)
            }
            PostingsReader::Mapped(m) => m.postings_masked(term, dead),
        }
    }

    /// Whether the term occurs anywhere in the corpus.
    pub fn contains_term(&self, term: &str) -> bool {
        match self {
            PostingsReader::Heap(inv) => inv.contains_term(term),
            PostingsReader::Mapped(m) => m.contains_term(term),
        }
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        match self {
            PostingsReader::Heap(inv) => inv.term_count(),
            PostingsReader::Mapped(m) => m.term_count(),
        }
    }

    /// Total postings across all lists.
    pub fn total_postings(&self) -> usize {
        match self {
            PostingsReader::Heap(inv) => inv.total_postings(),
            PostingsReader::Mapped(m) => m.total_postings(),
        }
    }

    /// Iterates `(term, postings)` — term-id order for heap indexes, sorted
    /// term order for mapped ones (decoding every list).
    pub fn iter(&self) -> Box<dyn Iterator<Item = (&str, &[DeweyId])> + '_> {
        match self {
            PostingsReader::Heap(inv) => Box::new(inv.iter()),
            PostingsReader::Mapped(m) => Box::new(m.iter()),
        }
    }

    /// Posting runs decoded so far: equals [`Self::term_count`] for heap
    /// indexes (everything is resident), grows from 0 on mapped ones.
    pub fn decoded_terms(&self) -> usize {
        match self {
            PostingsReader::Heap(inv) => inv.term_count(),
            PostingsReader::Mapped(m) => m.decoded_terms(),
        }
    }

    /// Bytes served straight off a kernel memory map (0 for heap indexes).
    pub fn bytes_mapped(&self) -> u64 {
        match self {
            PostingsReader::Heap(_) => 0,
            PostingsReader::Mapped(m) => m.bytes_mapped(),
        }
    }

    /// Estimated heap bytes held by decoded posting lists.
    pub fn resident_bytes(&self) -> u64 {
        match self {
            PostingsReader::Heap(inv) => inv.resident_bytes(),
            PostingsReader::Mapped(m) => m.resident_bytes(),
        }
    }

    /// First lazy-decode corruption observed, if any (always `None` for
    /// heap indexes, whose decode happens — and fails loudly — at load).
    pub fn corrupt(&self) -> Option<&str> {
        match self {
            PostingsReader::Heap(_) => None,
            PostingsReader::Mapped(m) => m.corrupt(),
        }
    }

    /// Mutable heap access, converting a mapped reader into a fully decoded
    /// [`InvertedIndex`] first (append/merge paths mutate posting lists, so
    /// they give up zero-copy residency).
    pub fn heap_mut(&mut self) -> &mut InvertedIndex {
        if let PostingsReader::Mapped(m) = &*self {
            let inv = m.to_inverted();
            *self = PostingsReader::Heap(inv);
        }
        match self {
            PostingsReader::Heap(inv) => inv,
            // Unreachable — Mapped was just converted to Heap above — but the
            // projection stays total without a panic path: hand out the
            // reader's empty scratch index.
            PostingsReader::Mapped(m) => &mut m.scratch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gks_dewey::DocId;

    fn d(doc: u32, steps: &[u32]) -> DeweyId {
        DeweyId::new(DocId(doc), steps.to_vec())
    }

    #[test]
    fn postings_sorted_and_deduped() {
        let mut ix = InvertedIndex::new();
        let karen = ix.term_id("karen");
        ix.push(karen, d(0, &[0, 1, 1, 2]));
        ix.push(karen, d(0, &[0, 1, 1, 0]));
        ix.push(karen, d(0, &[0, 1, 1, 0])); // duplicate occurrence
        ix.push(karen, d(1, &[0]));
        ix.finalize();
        assert_eq!(ix.postings("karen"), &[d(0, &[0, 1, 1, 0]), d(0, &[0, 1, 1, 2]), d(1, &[0])]);
    }

    #[test]
    fn unknown_term_is_empty() {
        let mut ix = InvertedIndex::new();
        ix.finalize();
        assert!(ix.postings("nothing").is_empty());
        assert!(!ix.contains_term("nothing"));
    }

    #[test]
    fn term_ids_are_stable() {
        let mut ix = InvertedIndex::new();
        let a = ix.term_id("a");
        let b = ix.term_id("b");
        assert_ne!(a, b);
        assert_eq!(ix.term_id("a"), a);
        assert_eq!(ix.term_count(), 2);
    }

    #[test]
    fn counters() {
        let mut ix = InvertedIndex::new();
        let a = ix.term_id("a");
        ix.push(a, d(0, &[0]));
        ix.push(a, d(0, &[1]));
        ix.finalize();
        assert_eq!(ix.total_postings(), 2);
        let pairs: Vec<_> = ix.iter().collect();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0, "a");
    }
}
