//! Error type for index construction and persistence.

use std::fmt;
use std::io;

use gks_dewey::codec::DecodeError;
use gks_xml::XmlError;

/// Anything that can go wrong while building, saving or loading an index.
#[derive(Debug)]
pub enum IndexError {
    /// The underlying XML failed to parse; carries the document name.
    Xml { document: String, source: XmlError },
    /// Filesystem error while reading a corpus or persisting an index.
    Io(io::Error),
    /// A persisted index failed to decode.
    Corrupt(String),
    /// A persisted index has an incompatible format version.
    VersionMismatch { found: u32, expected: u32 },
    /// A shard manifest lists the same shard id twice.
    DuplicateShardId {
        /// The repeated id.
        id: u64,
        /// Path of the entry that claimed the id first.
        first: String,
        /// Path of the entry that repeated it.
        second: String,
    },
    /// A shard manifest's `doc_base` ranges overlap or leave a gap.
    ShardRange {
        /// Path of the offending shard entry.
        shard: String,
        /// The base the contiguous tiling requires at this position.
        expected_base: u32,
        /// The base the entry declares.
        found_base: u32,
    },
    /// An internal invariant did not hold during construction — a bug in
    /// this crate, reported as a typed error rather than a panic.
    Invariant(&'static str),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Xml { document, source } => {
                write!(f, "in document {document:?}: {source}")
            }
            IndexError::Io(e) => write!(f, "I/O error: {e}"),
            IndexError::Corrupt(msg) => write!(f, "corrupt index: {msg}"),
            IndexError::VersionMismatch { found, expected } => {
                write!(f, "index format version {found}, expected {expected}")
            }
            IndexError::DuplicateShardId { id, first, second } => {
                write!(f, "shard manifest repeats shard id {id}: first {first:?}, again {second:?}")
            }
            IndexError::ShardRange { shard, expected_base, found_base } => {
                write!(
                    f,
                    "shard {shard:?} declares doc_base {found_base} where the contiguous \
                     tiling requires {expected_base} (ranges overlap or leave a gap)"
                )
            }
            IndexError::Invariant(what) => {
                write!(f, "internal invariant violated: {what}")
            }
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Xml { source, .. } => Some(source),
            IndexError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for IndexError {
    fn from(e: io::Error) -> Self {
        IndexError::Io(e)
    }
}

impl From<DecodeError> for IndexError {
    fn from(e: DecodeError) -> Self {
        IndexError::Corrupt(e.to_string())
    }
}
