//! The single-pass index builder and the [`GksIndex`] it produces.
//!
//! "Since XML nodes arrive pre-order (an ancestor of an XML node always
//! appears before it), the hash tables and the inverted index are created in
//! a single pass over XML data" (paper §2.4). The builder maintains a stack
//! of open elements; each closing element runs the categorization step
//! ([`crate::categorize::close_element`]), finalizes its children's
//! attribute/repeating status, emits its children's node-table entries, and
//! reports a structural summary to its parent.

use std::time::Instant;

use gks_dewey::{DeweyId, DocId};
use gks_exec::{Scatter, WorkerPool};
use gks_text::Analyzer;
use gks_xml::{Event, Reader};

use crate::attrstore::{AttrEntry, AttrSource, AttrStore};
use crate::categorize::{close_element, finalize_child_flags, self_flags, ChildSummary};
use crate::corpus::{Corpus, CorpusDoc};
use crate::error::IndexError;
use crate::fasthash::FastMap;
use crate::node_table::{NodeMeta, NodeTable};
use crate::options::IndexOptions;
use crate::postings::{InvertedIndex, PostingsReader};
use crate::stats::IndexStats;

/// A fully built GKS index over a corpus.
#[derive(Debug)]
pub struct GksIndex {
    options: IndexOptions,
    analyzer: Analyzer,
    node_table: NodeTable,
    inverted: PostingsReader,
    attrs: AttrStore,
    stats: IndexStats,
    doc_names: Vec<String>,
    /// On-disk format this index was loaded from (0 for in-memory builds).
    format_version: u32,
    /// Wall-clock milliseconds [`GksIndex::load`] spent opening this index.
    open_millis: u64,
}

/// Everything a closed element hands to its parent.
struct ChildInfo {
    dewey: DeweyId,
    label: u32,
    child_count: u32,
    text_only: bool,
    /// Materialized from an XML attribute (never a real element).
    synthetic: bool,
    is_entity: bool,
    has_attr_child: bool,
    /// The child's own raw text (attribute value when the child turns out to
    /// be an attribute / repeating text node).
    text: String,
    /// Qualifying attribute entries of the child's subtree, to be inherited
    /// by ancestors while no repeating node is crossed.
    attr_entries: Vec<AttrEntry>,
    summary: ChildSummary,
}

/// One open element during the streaming pass.
struct OpenFrame {
    dewey: DeweyId,
    label: u32,
    next_ordinal: u32,
    has_text: bool,
    text: String,
    children: Vec<ChildInfo>,
}

impl GksIndex {
    /// Indexes a corpus sequentially.
    pub fn build(corpus: &Corpus, options: IndexOptions) -> Result<GksIndex, IndexError> {
        let start = Instant::now();
        let mut ix = GksIndex::empty(options);
        for (i, doc) in corpus.docs().iter().enumerate() {
            ix.index_document(DocId(i as u32), &doc.name, &doc.xml)?;
        }
        ix.finish(start);
        Ok(ix)
    }

    /// Indexes a corpus with one worker per chunk of documents, merging the
    /// partial indexes. Produces the same index as [`Self::build`].
    pub fn build_parallel(
        corpus: &Corpus,
        options: IndexOptions,
        workers: usize,
    ) -> Result<GksIndex, IndexError> {
        let start = Instant::now();
        let docs = corpus.docs();
        let workers = workers.clamp(1, docs.len().max(1));
        if workers == 1 {
            return Self::build(corpus, options);
        }
        let chunk = docs.len().div_ceil(workers);
        // Jobs on a persistent pool must own their input, so each chunk's
        // documents are cloned out of the corpus; the clones die with the
        // jobs, and the partial indexes the workers build dwarf them anyway.
        let chunks: Vec<Vec<CorpusDoc>> = docs.chunks(chunk).map(<[CorpusDoc]>::to_vec).collect();
        let pool = WorkerPool::new("gks-build", workers).map_err(IndexError::Io)?;
        let scatter = Scatter::new(chunks.len());
        for (w, slice) in chunks.into_iter().enumerate() {
            let options = options.clone();
            // submit() cannot fail here (the pool outlives the loop), and
            // even if it did the slot guard resolves the slot to Err.
            let _ = pool.submit(scatter.task(w, move || -> Result<GksIndex, IndexError> {
                let mut part = GksIndex::empty(options);
                for (j, doc) in slice.iter().enumerate() {
                    part.index_document(DocId((w * chunk + j) as u32), &doc.name, &doc.xml)?;
                }
                Ok(part)
            }));
        }
        // Slots come back in submission order, so the merge below needs no
        // sort and the lowest-index chunk's error wins deterministically.
        let slots = scatter.wait();
        drop(pool);
        let mut parts = Vec::with_capacity(slots.len());
        for slot in slots {
            match slot {
                Ok(Ok(part)) => parts.push(part),
                Ok(Err(e)) => return Err(e),
                Err(msg) => {
                    return Err(IndexError::Io(std::io::Error::other(format!(
                        "index build worker failed: {msg}"
                    ))))
                }
            }
        }
        let mut iter = parts.into_iter();
        let Some(mut ix) = iter.next() else {
            // workers >= 2 implies at least one chunk, so this is unreachable
            // in practice; fall back to the sequential path rather than panic.
            return Self::build(corpus, options);
        };
        for part in iter {
            ix.merge(part);
        }
        ix.finish(start);
        Ok(ix)
    }

    /// Appends more documents to an existing index (incremental corpus
    /// growth). New documents receive the next document ids; posting lists
    /// are re-finalized. The result is identical to building one index over
    /// the concatenated corpus.
    pub fn append(&mut self, corpus: &Corpus) -> Result<(), IndexError> {
        let start = Instant::now();
        let base = self.doc_names.len() as u32;
        let prior_millis = self.stats.build_millis;
        for (i, doc) in corpus.docs().iter().enumerate() {
            self.index_document(DocId(base + i as u32), &doc.name, &doc.xml)?;
        }
        self.finish(start);
        self.stats.build_millis += prior_millis;
        Ok(())
    }

    fn empty(options: IndexOptions) -> GksIndex {
        let analyzer = Analyzer::new(options.analyzer_options());
        GksIndex {
            options,
            analyzer,
            node_table: NodeTable::new(),
            inverted: PostingsReader::Heap(InvertedIndex::new()),
            attrs: AttrStore::new(),
            stats: IndexStats::default(),
            doc_names: Vec::new(),
            format_version: 0,
            open_millis: 0,
        }
    }

    fn finish(&mut self, start: Instant) {
        self.inverted.heap_mut().finalize();
        self.stats.distinct_terms = self.inverted.term_count() as u64;
        self.stats.total_postings = self.inverted.total_postings() as u64;
        self.stats.posting_depth_sum = self
            .inverted
            .iter()
            .flat_map(|(_, list)| list.iter())
            .map(|d| d.depth() as u64)
            .sum();
        self.stats.build_millis = start.elapsed().as_millis() as u64;
        // Debug builds audit every freshly built index so the doctor's
        // invariants are exercised by the whole test suite for free.
        #[cfg(debug_assertions)]
        {
            let violations = crate::doctor::check(self);
            debug_assert!(
                violations.is_empty(),
                "index doctor found violations in a fresh build: {violations:?}"
            );
        }
    }

    /// Streams one document into the index.
    fn index_document(&mut self, doc_id: DocId, name: &str, xml: &str) -> Result<(), IndexError> {
        self.doc_names.push(name.to_string());
        self.stats.doc_count += 1;
        self.stats.raw_bytes += xml.len() as u64;

        let mut reader = Reader::new(xml);
        let mut stack: Vec<OpenFrame> = Vec::new();
        let mut scratch: FastMap<u32, u32> = FastMap::default();
        let mut terms_buf: Vec<String> = Vec::new();

        loop {
            let event = reader
                .next_event()
                .map_err(|e| IndexError::Xml { document: name.to_string(), source: e })?;
            let Some(event) = event else { break };
            match event {
                Event::Start { name: tag, attributes } => {
                    let dewey = match stack.last_mut() {
                        Some(parent) => {
                            let d = parent.dewey.child(parent.next_ordinal);
                            parent.next_ordinal += 1;
                            d
                        }
                        None => DeweyId::root(doc_id),
                    };
                    self.stats.max_depth = self.stats.max_depth.max(dewey.depth() as u32);
                    let label = self.node_table.labels_mut().intern(tag);
                    if self.options.index_element_names {
                        // Namespace-prefixed names ("dblp:author") index by
                        // their local part.
                        let local = tag.rsplit(':').next().unwrap_or(tag);
                        if let Some(term) = self.analyzer.normalize_term(local) {
                            let inv = self.inverted.heap_mut();
                            let tid = inv.term_id(&term);
                            inv.push(tid, dewey.clone());
                        }
                    }
                    let mut frame = OpenFrame {
                        dewey,
                        label,
                        next_ordinal: 0,
                        has_text: false,
                        text: String::new(),
                        children: Vec::new(),
                    };
                    if self.options.xml_attributes_as_elements {
                        for attr in &attributes {
                            self.push_synthetic_attr_child(&mut frame, attr.name, &attr.value);
                        }
                    }
                    stack.push(frame);
                }
                Event::Text(text) => {
                    let frame = stack
                        .last_mut()
                        .ok_or(IndexError::Invariant("text event outside the root element"))?;
                    // Index the words at the containing element itself; the
                    // search engine applies the §2.1.1 parent-promotion rule
                    // for attribute nodes at candidate-generation time.
                    terms_buf.clear();
                    self.analyzer.analyze_into(&text, &mut terms_buf);
                    let inv = self.inverted.heap_mut();
                    for term in &terms_buf {
                        let tid = inv.term_id(term);
                        inv.push(tid, frame.dewey.clone());
                    }
                    if !text.trim().is_empty() {
                        if frame.has_text {
                            frame.text.push(' ');
                        }
                        frame.text.push_str(text.trim());
                        frame.has_text = true;
                    }
                }
                Event::End { .. } => {
                    let frame = stack
                        .pop()
                        .ok_or(IndexError::Invariant("end event with no open element"))?;
                    let info = self.close_frame(frame, &mut scratch);
                    match stack.last_mut() {
                        Some(parent) => parent.children.push(info),
                        None => self.finalize_root(info),
                    }
                }
                Event::Comment(_) | Event::Pi(_) | Event::Declaration(_) | Event::Doctype(_) => {}
            }
        }
        Ok(())
    }

    /// Materializes an XML attribute `k="v"` as a text-only child element.
    fn push_synthetic_attr_child(&mut self, frame: &mut OpenFrame, attr_name: &str, value: &str) {
        let dewey = frame.dewey.child(frame.next_ordinal);
        frame.next_ordinal += 1;
        let label = self.node_table.labels_mut().intern(attr_name);
        if self.options.index_element_names {
            let local = attr_name.rsplit(':').next().unwrap_or(attr_name);
            if let Some(term) = self.analyzer.normalize_term(local) {
                let inv = self.inverted.heap_mut();
                let tid = inv.term_id(&term);
                inv.push(tid, dewey.clone());
            }
        }
        let mut terms = Vec::new();
        self.analyzer.analyze_into(value, &mut terms);
        let inv = self.inverted.heap_mut();
        for term in &terms {
            let tid = inv.term_id(term);
            inv.push(tid, dewey.clone());
        }
        self.stats.max_depth = self.stats.max_depth.max(dewey.depth() as u32);
        frame.children.push(ChildInfo {
            dewey,
            label,
            child_count: 1,
            text_only: true,
            synthetic: true,
            is_entity: false,
            has_attr_child: false,
            text: value.to_string(),
            attr_entries: Vec::new(),
            summary: ChildSummary {
                label,
                text_only: true,
                qual_attr_inside: false,
                has_rep_inside: false,
            },
        });
    }

    /// Runs categorization for a closing element: finalizes its children,
    /// records them in the node table, assembles qualifying attribute
    /// entries, and produces the element's own [`ChildInfo`].
    fn close_frame(&mut self, frame: OpenFrame, scratch: &mut FastMap<u32, u32>) -> ChildInfo {
        let summaries: Vec<ChildSummary> =
            frame.children.iter().map(|c| c.summary.clone()).collect();
        let outcome = close_element(&summaries, scratch);

        let mut attr_entries: Vec<AttrEntry> = Vec::new();
        for (child, &repeating) in frame.children.iter().zip(&outcome.child_repeating) {
            if child.text_only && !child.text.is_empty() {
                attr_entries.push(AttrEntry {
                    path: vec![child.label],
                    value: child.text.clone(),
                    source: if repeating {
                        AttrSource::RepeatingText
                    } else {
                        AttrSource::Attribute
                    },
                });
            }
            if !repeating {
                // Inherit the subtree's qualifying attributes: the path from
                // this element to them crosses no repeating node. Text-only
                // children contribute too: their XML attributes were lifted
                // into entries of their own.
                for entry in &child.attr_entries {
                    let mut path = Vec::with_capacity(entry.path.len() + 1);
                    path.push(child.label);
                    path.extend_from_slice(&entry.path);
                    attr_entries.push(AttrEntry {
                        path,
                        value: entry.value.clone(),
                        source: entry.source,
                    });
                }
            }
        }

        // Synthetic attribute children do not make an element an interior
        // node: <author position="0">Name</author> still *directly contains
        // its value* and must classify as an attribute/repeating text node.
        let real_children = frame.children.iter().filter(|c| !c.synthetic).count();

        // Children are fully decided now: record them.
        for (child, &repeating) in frame.children.into_iter().zip(&outcome.child_repeating) {
            let mut flags = self_flags(child.text_only, child.is_entity, child.has_attr_child);
            finalize_child_flags(&mut flags, repeating);
            self.record_node(
                child.dewey,
                NodeMeta { child_count: child.child_count, flags, label: child.label },
            );
        }

        if outcome.is_entity {
            self.attrs.insert(frame.dewey.clone(), attr_entries.clone());
        }

        let element_children = outcome.child_repeating.len() as u32;
        let child_count = (element_children + u32::from(frame.has_text)).max(1);
        let text_only = real_children == 0;
        ChildInfo {
            summary: ChildSummary {
                label: frame.label,
                text_only,
                qual_attr_inside: outcome.summary_qual_attr_inside,
                has_rep_inside: outcome.summary_has_rep_inside,
            },
            dewey: frame.dewey,
            label: frame.label,
            child_count,
            text_only,
            synthetic: false,
            is_entity: outcome.is_entity,
            has_attr_child: outcome.has_attr_child,
            text: frame.text,
            attr_entries,
        }
    }

    /// The document root has no parent to finalize it; it is never repeating.
    fn finalize_root(&mut self, info: ChildInfo) {
        let mut flags = self_flags(info.text_only, info.is_entity, info.has_attr_child);
        finalize_child_flags(&mut flags, false);
        self.record_node(
            info.dewey,
            NodeMeta { child_count: info.child_count, flags, label: info.label },
        );
    }

    fn record_node(&mut self, dewey: DeweyId, meta: NodeMeta) {
        self.stats.total_nodes += 1;
        let primary = meta.flags.primary();
        self.stats.census.add(primary);
        let label_name = self.node_table.labels().name(meta.label).to_string();
        self.stats.per_label.entry(label_name).or_default().add(primary);
        self.node_table.insert(dewey, meta);
    }

    /// Merges another index (built over disjoint, higher document ids) into
    /// this one. Label and term ids are remapped.
    fn merge(&mut self, other: GksIndex) {
        // Remap labels.
        let label_map: Vec<u32> = other
            .node_table
            .labels()
            .names()
            .iter()
            .map(|name| self.node_table.labels_mut().intern(name))
            .collect();
        for (dewey, meta) in other.node_table.iter() {
            self.node_table
                .insert(dewey.clone(), NodeMeta { label: label_map[meta.label as usize], ..*meta });
        }
        for (entity, entries) in other.attrs.iter() {
            let remapped: Vec<AttrEntry> = entries
                .iter()
                .map(|e| AttrEntry {
                    path: e.path.iter().map(|&l| label_map[l as usize]).collect(),
                    value: e.value.clone(),
                    source: e.source,
                })
                .collect();
            self.attrs.insert(entity.clone(), remapped);
        }
        let inv = self.inverted.heap_mut();
        for (term, list) in other.inverted.iter() {
            let tid = inv.term_id(term);
            for id in list {
                inv.push(tid, id.clone());
            }
        }
        self.stats.merge(&other.stats);
        self.doc_names.extend(other.doc_names);
    }

    // ----- accessors used by the search engine -----

    /// The options the index was built with.
    pub fn options(&self) -> &IndexOptions {
        &self.options
    }

    /// The analyzer matching the index's normalization (use it on query
    /// keywords).
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// Inverted-index lookup: the document-ordered posting list `S_i` of a
    /// normalized term. On a mapped (format v3) index this decodes the
    /// term's blocked run on first access and caches it.
    pub fn postings(&self, term: &str) -> &[DeweyId] {
        self.inverted.postings(term)
    }

    /// Posting-list length for a term without forcing a decode: heap indexes
    /// read the list length, mapped indexes the dictionary's stored count.
    /// Always equals `self.postings(term).len()`.
    pub fn posting_count(&self, term: &str) -> usize {
        self.inverted.posting_count(term)
    }

    /// The posting list with documents in the sorted `dead` list masked out,
    /// plus the exact number of postings dropped. On a mapped index whose
    /// run is still cold, blocks lying entirely within dead documents are
    /// skipped without decoding.
    pub fn postings_masked(&self, term: &str, dead: &[u32]) -> (Vec<DeweyId>, u64) {
        self.inverted.postings_masked(term, dead)
    }

    /// The node table (`entityHash` + `elementHash`).
    pub fn node_table(&self) -> &NodeTable {
        &self.node_table
    }

    /// The per-entity attribute store.
    pub fn attr_store(&self) -> &AttrStore {
        &self.attrs
    }

    /// Build statistics (Tables 4 and 5).
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }

    /// Name of an indexed document.
    pub fn doc_name(&self, doc: DocId) -> Option<&str> {
        self.doc_names.get(doc.0 as usize).map(String::as_str)
    }

    /// Document names in id order.
    pub fn doc_names(&self) -> &[String] {
        &self.doc_names
    }

    /// The posting-list reader (persistence and diagnostics).
    pub fn inverted(&self) -> &PostingsReader {
        &self.inverted
    }

    /// On-disk format version this index was loaded from: 2 or 3 for loads,
    /// 0 for an index built in memory.
    pub fn format_version(&self) -> u32 {
        self.format_version
    }

    /// Wall-clock milliseconds [`GksIndex::load`] took (0 for in-memory
    /// builds). Measured here rather than by callers so the server's
    /// metrics never need raw timing outside the index crate.
    pub fn open_millis(&self) -> u64 {
        self.open_millis
    }

    /// Bytes of index file served straight off a kernel memory map (0 for
    /// heap-resident indexes).
    pub fn bytes_mapped(&self) -> u64 {
        self.inverted.bytes_mapped()
    }

    /// Posting runs decoded so far — 0 right after a v3 open, grows as
    /// queries touch terms.
    pub fn decoded_terms(&self) -> usize {
        self.inverted.decoded_terms()
    }

    // ----- test-only mutators for the doctor's corrupted-index fixtures -----

    #[cfg(test)]
    pub(crate) fn inverted_mut(&mut self) -> &mut PostingsReader {
        &mut self.inverted
    }

    #[cfg(test)]
    pub(crate) fn node_table_mut(&mut self) -> &mut NodeTable {
        &mut self.node_table
    }

    #[cfg(test)]
    pub(crate) fn attrs_mut(&mut self) -> &mut AttrStore {
        &mut self.attrs
    }

    #[cfg(test)]
    pub(crate) fn stats_mut(&mut self) -> &mut IndexStats {
        &mut self.stats
    }

    /// Crate-internal constructor for the persistence layer.
    pub(crate) fn from_parts(
        options: IndexOptions,
        node_table: NodeTable,
        inverted: PostingsReader,
        attrs: AttrStore,
        stats: IndexStats,
        doc_names: Vec<String>,
    ) -> GksIndex {
        let analyzer = Analyzer::new(options.analyzer_options());
        GksIndex {
            options,
            analyzer,
            node_table,
            inverted,
            attrs,
            stats,
            doc_names,
            format_version: 0,
            open_millis: 0,
        }
    }

    /// Records where this index came from (persistence layer).
    pub(crate) fn set_open_info(&mut self, format_version: u32, open_millis: u64) {
        self.format_version = format_version;
        self.open_millis = open_millis;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::categorize::NodeCategory;

    /// The paper's Figure 2(a) document (Dept → Area → Courses → Course →
    /// Students → Student), trimmed to the parts the tests assert on.
    pub(crate) const FIG2A: &str = r#"<Dept>
        <Dept_Name>CS</Dept_Name>
        <Area>
            <Name>Databases</Name>
            <Courses>
                <Course>
                    <Name>Data Mining</Name>
                    <Students>
                        <Student>Karen</Student>
                        <Student>Mike</Student>
                        <Student>Peter</Student>
                    </Students>
                </Course>
                <Course>
                    <Name>Algorithms</Name>
                    <Students>
                        <Student>Karen</Student>
                        <Student>John</Student>
                        <Student>Julie</Student>
                    </Students>
                </Course>
                <Course>
                    <Name>AI</Name>
                    <Students>
                        <Student>Karen</Student>
                        <Student>Mike</Student>
                        <Student>Serena</Student>
                    </Students>
                </Course>
            </Courses>
        </Area>
        <Area>
            <Name>Systems</Name>
            <Courses>
                <Course>
                    <Name>Networks</Name>
                    <Students>
                        <Student>Harry</Student>
                        <Student>Draco</Student>
                    </Students>
                </Course>
                <Course>
                    <Name>Compilers</Name>
                    <Students>
                        <Student>Luna</Student>
                        <Student>Neville</Student>
                    </Students>
                </Course>
            </Courses>
        </Area>
    </Dept>"#;

    fn build_fig2a() -> GksIndex {
        let corpus = Corpus::from_named_strs([("fig2a", FIG2A)]).unwrap();
        GksIndex::build(&corpus, IndexOptions::default()).unwrap()
    }

    fn d(steps: &[u32]) -> DeweyId {
        DeweyId::new(DocId(0), steps.to_vec())
    }

    #[test]
    fn fig2a_categorization_matches_paper() {
        let ix = build_fig2a();
        let t = ix.node_table();
        // <Area> (n0.1) is an entity node: attribute <Name> + repeating
        // <Course> nodes (paper Def 2.1.3 walk-through).
        assert!(t.is_entity(&d(&[1])).is_some(), "Area is an entity node");
        // <Course> nodes are entity nodes.
        assert!(t.is_entity(&d(&[1, 1, 0])).is_some(), "Course is an entity node");
        // <Courses> (n0.1.1) is a connecting node.
        let courses = t.get(&d(&[1, 1])).unwrap();
        assert_eq!(courses.flags.primary(), NodeCategory::Connecting);
        // <Name> (n0.1.0) is an attribute node.
        let name = t.get(&d(&[1, 0])).unwrap();
        assert_eq!(name.flags.primary(), NodeCategory::Attribute);
        // <Student> nodes are repeating (text) nodes.
        let student = t.get(&d(&[1, 1, 0, 1, 0])).unwrap();
        assert_eq!(student.flags.primary(), NodeCategory::Repeating);
        // <Dept> is an entity node (Dept_Name attribute + repeating Areas).
        assert!(t.is_entity(&d(&[])).is_some(), "Dept is an entity node");
        // <Course> is simultaneously an entity node and a repeating node.
        let course = t.get(&d(&[1, 1, 0])).unwrap();
        assert!(course.flags.is_entity() && course.flags.is_repeating());
    }

    #[test]
    fn fig2a_postings() {
        let ix = build_fig2a();
        // "Karen" appears in three courses, at the Student text elements
        // (Table 3 of the paper shows exactly these Dewey shapes).
        let karen = ix.postings("karen");
        assert_eq!(karen.len(), 3);
        assert_eq!(karen[0], d(&[1, 1, 0, 1, 0]));
        assert!(karen.windows(2).all(|w| w[0] < w[1]), "document order");
        // Element names are indexed: "student" (stemmed from Students and
        // Student) has postings.
        assert!(!ix.postings("student").is_empty());
        // Stop words are not.
        assert!(ix.postings("the").is_empty());
    }

    #[test]
    fn fig2a_attr_store_exposes_course_names() {
        let ix = build_fig2a();
        let entries = ix.attr_store().entries(&d(&[1, 1, 0]));
        // The Data Mining course: attribute <Name> plus three repeating
        // Student text nodes.
        let names: Vec<&str> = entries
            .iter()
            .filter(|e| e.source == AttrSource::Attribute)
            .map(|e| e.value.as_str())
            .collect();
        assert_eq!(names, vec!["Data Mining"]);
        let students: Vec<&str> = entries
            .iter()
            .filter(|e| e.source == AttrSource::RepeatingText)
            .map(|e| e.value.as_str())
            .collect();
        assert_eq!(students, vec!["Karen", "Mike", "Peter"]);
        // Paths carry the semantics: students are reached via
        // Students/Student.
        let student_entry = entries.iter().find(|e| e.value == "Karen").expect("Karen entry");
        let path: Vec<&str> =
            student_entry.path.iter().map(|&l| ix.node_table().labels().name(l)).collect();
        assert_eq!(path, vec!["Students", "Student"]);
    }

    #[test]
    fn attributes_do_not_leak_across_repeating_boundaries() {
        let ix = build_fig2a();
        // Area's own attributes must not include course names (the path
        // crosses the repeating <Course> nodes).
        let entries = ix.attr_store().entries(&d(&[1]));
        assert!(entries.iter().all(|e| e.value != "Data Mining"));
        assert!(entries.iter().any(|e| e.value == "Databases"));
    }

    #[test]
    fn child_counts_support_ranking() {
        let ix = build_fig2a();
        let t = ix.node_table();
        assert_eq!(t.child_count(&d(&[1])), Some(2)); // Area: Name + Courses
        assert_eq!(t.child_count(&d(&[1, 1])), Some(3)); // Courses: 3 Course
        assert_eq!(t.child_count(&d(&[1, 1, 0, 1])), Some(3)); // Students: 3
        assert_eq!(t.child_count(&d(&[1, 0])), Some(1)); // Name: its value
    }

    #[test]
    fn stats_census_counts_every_node() {
        let ix = build_fig2a();
        let s = ix.stats();
        assert_eq!(s.census.total(), s.total_nodes);
        // Dept, 2 Areas, 5 Courses are entities.
        assert_eq!(s.census.entity, 8);
        // 13 students are repeating text nodes.
        assert_eq!(s.census.repeating, 13);
        // Dept_Name + 2 Area Names + 5 Course Names are attributes.
        assert_eq!(s.census.attribute, 8);
        // 2 Courses containers + 5 Students containers are connecting.
        assert_eq!(s.census.connecting, 7);
        assert_eq!(s.max_depth, 5); // Dept/Area/Courses/Course/Students/Student
        assert_eq!(s.doc_count, 1);
        // Per-label census saw 13 Student nodes, all repeating.
        assert_eq!(s.per_label["Student"].repeating, 13);
    }

    #[test]
    fn xml_attributes_lifted_to_children() {
        let xml = r#"<mondial><country car_code="AL" name="Albania">
            <city><name>Tirana</name></city>
            <city><name>Durres</name></city>
        </country></mondial>"#;
        let corpus = Corpus::from_named_strs([("m", xml)]).unwrap();
        let ix = GksIndex::build(&corpus, IndexOptions::default()).unwrap();
        // The country's XML attributes become attribute-node children, so
        // "albania" is searchable…
        assert_eq!(ix.postings("albania").len(), 1);
        // …and the country (attrs + repeating cities) is an entity whose
        // attribute store carries the lifted values.
        let country = DeweyId::new(DocId(0), vec![0]);
        assert!(ix.node_table().is_entity(&country).is_some());
        let values: Vec<&str> =
            ix.attr_store().entries(&country).iter().map(|e| e.value.as_str()).collect();
        assert!(values.contains(&"Albania"));
    }

    #[test]
    fn xml_attribute_lifting_can_be_disabled() {
        let xml = r#"<r><a k="needle"/><a k="other"/></r>"#;
        let corpus = Corpus::from_named_strs([("m", xml)]).unwrap();
        let opts = IndexOptions { xml_attributes_as_elements: false, ..Default::default() };
        let ix = GksIndex::build(&corpus, opts).unwrap();
        assert!(ix.postings("needle").is_empty());
    }

    #[test]
    fn multi_document_corpus_prefixes_doc_ids() {
        let corpus = Corpus::from_named_strs([
            ("one", "<r><x>shared</x></r>"),
            ("two", "<r><y>shared</y></r>"),
        ])
        .unwrap();
        let ix = GksIndex::build(&corpus, IndexOptions::default()).unwrap();
        let postings = ix.postings("share"); // stemmed
        assert_eq!(postings.len(), 2);
        assert_eq!(postings[0].doc(), DocId(0));
        assert_eq!(postings[1].doc(), DocId(1));
        assert_eq!(ix.doc_name(DocId(1)), Some("two"));
    }

    #[test]
    fn parallel_build_equals_sequential() {
        let corpus = Corpus::from_named_strs([
            ("a", FIG2A),
            ("b", "<r><x>alpha</x><x>beta</x><name>gamma</name></r>"),
            ("c", "<r><y>alpha</y></r>"),
            ("d", FIG2A),
        ])
        .unwrap();
        let seq = GksIndex::build(&corpus, IndexOptions::default()).unwrap();
        let par = GksIndex::build_parallel(&corpus, IndexOptions::default(), 3).unwrap();
        assert_eq!(seq.stats().total_nodes, par.stats().total_nodes);
        assert_eq!(seq.stats().census, par.stats().census);
        assert_eq!(seq.inverted().term_count(), par.inverted().term_count());
        for (term, list) in seq.inverted().iter() {
            assert_eq!(par.postings(term), list, "postings for {term}");
        }
        assert_eq!(seq.node_table().len(), par.node_table().len());
        for (dewey, meta) in seq.node_table().iter() {
            let other = par.node_table().get(dewey).expect("node present");
            assert_eq!(other.child_count, meta.child_count);
            assert_eq!(other.flags, meta.flags);
            assert_eq!(
                par.node_table().labels().name(other.label),
                seq.node_table().labels().name(meta.label)
            );
        }
    }

    #[test]
    fn append_equals_building_the_concatenated_corpus() {
        let part1 = Corpus::from_named_strs([("a", FIG2A)]).unwrap();
        let part2 =
            Corpus::from_named_strs([("b", "<r><x>alpha</x><x>beta</x></r>"), ("c", FIG2A)])
                .unwrap();
        let mut incremental = GksIndex::build(&part1, IndexOptions::default()).unwrap();
        incremental.append(&part2).unwrap();

        let mut all = Corpus::new();
        all.push("a", FIG2A);
        all.push("b", "<r><x>alpha</x><x>beta</x></r>");
        all.push("c", FIG2A);
        let oneshot = GksIndex::build(&all, IndexOptions::default()).unwrap();

        assert_eq!(incremental.doc_names(), oneshot.doc_names());
        assert_eq!(incremental.stats().total_nodes, oneshot.stats().total_nodes);
        assert_eq!(incremental.stats().census, oneshot.stats().census);
        for (term, list) in oneshot.inverted().iter() {
            assert_eq!(incremental.postings(term), list, "postings for {term}");
        }
        assert_eq!(incremental.node_table().len(), oneshot.node_table().len());
    }

    #[test]
    fn malformed_document_reports_name() {
        let corpus = Corpus::from_named_strs([("bad", "<a><b></a>")]).unwrap();
        let err = GksIndex::build(&corpus, IndexOptions::default()).unwrap_err();
        match err {
            IndexError::Xml { document, .. } => assert_eq!(document, "bad"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn namespaced_element_names_index_by_local_part() {
        let xml = r#"<dblp:bib xmlns:dblp="http://example/ns">
            <dblp:article><dblp:author>Jane Roe</dblp:author></dblp:article>
        </dblp:bib>"#;
        let corpus = Corpus::from_named_strs([("ns", xml)]).unwrap();
        let ix = GksIndex::build(&corpus, IndexOptions::default()).unwrap();
        // The tag-name keyword is the local part…
        assert!(!ix.postings("author").is_empty());
        // …while labels keep the full prefixed name for display.
        let article = DeweyId::new(DocId(0), vec![1]);
        assert_eq!(ix.node_table().label_name(&article), Some("dblp:article"));
    }

    #[test]
    fn empty_element_gets_unit_child_count() {
        let corpus = Corpus::from_named_strs([("e", "<r><empty/><empty/></r>")]).unwrap();
        let ix = GksIndex::build(&corpus, IndexOptions::default()).unwrap();
        assert_eq!(ix.node_table().child_count(&d(&[0])), Some(1));
    }
}
