//! The node table: the paper's `entityHash` + `elementHash`, unified.
//!
//! §2.4 keeps two hash tables over Dewey ids — entity nodes in one, repeating
//! and connecting nodes in the other — both storing "the number of direct
//! children each node has … used while computing the rank of a node". This
//! implementation stores one entry per element node (attribute nodes
//! included, since the potential-flow ranking needs child counts along whole
//! root-to-terminal paths) with the category flags attached, and exposes the
//! paper's two lookup functions, [`NodeTable::is_entity`] and
//! [`NodeTable::is_element`], on top.

use gks_dewey::DeweyId;

use crate::categorize::NodeFlags;
use crate::fasthash::FastMap;

/// Everything the search engine needs to know about one XML node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeMeta {
    /// Number of direct children: element children plus one for a non-empty
    /// text value (never zero for a node that exists — an empty element
    /// counts its missing value as one child so potentials stay finite).
    pub child_count: u32,
    /// Category flags (§2.2).
    pub flags: NodeFlags,
    /// Interned element label.
    pub label: u32,
}

/// Label interner shared by the node table and the attribute store.
#[derive(Debug, Default, Clone)]
pub struct LabelInterner {
    names: Vec<String>,
    ids: FastMap<String, u32>,
}

impl LabelInterner {
    /// Interns `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    /// The name for an id. Panics on an unknown id (ids only come from
    /// [`Self::intern`]).
    pub fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Looks up an existing label by name.
    pub fn lookup(&self, name: &str) -> Option<u32> {
        self.ids.get(name).copied()
    }

    /// Number of distinct labels.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no labels are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All names in id order (for persistence).
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

/// Per-node metadata table over the whole corpus.
#[derive(Debug, Default, Clone)]
pub struct NodeTable {
    map: FastMap<DeweyId, NodeMeta>,
    labels: LabelInterner,
}

impl NodeTable {
    /// An empty table.
    pub fn new() -> Self {
        NodeTable::default()
    }

    /// The label interner.
    pub fn labels(&self) -> &LabelInterner {
        &self.labels
    }

    /// Mutable access to the interner (used by the builder).
    pub fn labels_mut(&mut self) -> &mut LabelInterner {
        &mut self.labels
    }

    /// Records a node.
    pub fn insert(&mut self, id: DeweyId, meta: NodeMeta) {
        self.map.insert(id, meta);
    }

    /// Full metadata for a node.
    pub fn get(&self, id: &DeweyId) -> Option<&NodeMeta> {
        self.map.get(id)
    }

    /// Paper API: `isEntity(DeweyId)` — "returns the number of direct
    /// children the given node has if true, null otherwise".
    pub fn is_entity(&self, id: &DeweyId) -> Option<u32> {
        self.map.get(id).filter(|m| m.flags.is_entity()).map(|m| m.child_count)
    }

    /// Paper API: `isElement(DeweyId)` — repeating or connecting nodes.
    pub fn is_element(&self, id: &DeweyId) -> Option<u32> {
        self.map
            .get(id)
            .filter(|m| m.flags.is_repeating() || m.flags.is_connecting())
            .map(|m| m.child_count)
    }

    /// Child count of any recorded node.
    pub fn child_count(&self, id: &DeweyId) -> Option<u32> {
        self.map.get(id).map(|m| m.child_count)
    }

    /// The element name of a recorded node.
    pub fn label_name(&self, id: &DeweyId) -> Option<&str> {
        self.map.get(id).map(|m| self.labels.name(m.label))
    }

    /// Walks from `id` upward (self first) to the nearest entity node, per
    /// the LCE derivation of §4.1: "we check if it is an entity node or any
    /// of its ancestors is an entity node".
    pub fn lowest_entity_ancestor_or_self(&self, id: &DeweyId) -> Option<DeweyId> {
        if self.is_entity(id).is_some() {
            return Some(id.clone());
        }
        self.ancestors_entity(id)
    }

    /// Nearest strict-ancestor entity of `id`.
    pub fn ancestors_entity(&self, id: &DeweyId) -> Option<DeweyId> {
        id.ancestors().find(|anc| self.is_entity(anc).is_some())
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no nodes are recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates all `(id, meta)` pairs (unspecified order; used by persist
    /// and the census).
    pub fn iter(&self) -> impl Iterator<Item = (&DeweyId, &NodeMeta)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::categorize::{finalize_child_flags, self_flags};
    use gks_dewey::DocId;

    fn d(steps: &[u32]) -> DeweyId {
        DeweyId::new(DocId(0), steps.to_vec())
    }

    fn entity_meta(label: u32, children: u32) -> NodeMeta {
        let mut flags = self_flags(false, true, true);
        finalize_child_flags(&mut flags, false);
        NodeMeta { child_count: children, flags, label }
    }

    fn connecting_meta(label: u32, children: u32) -> NodeMeta {
        let mut flags = self_flags(false, false, false);
        finalize_child_flags(&mut flags, false);
        NodeMeta { child_count: children, flags, label }
    }

    #[test]
    fn is_entity_mirrors_paper_api() {
        let mut t = NodeTable::new();
        let course = t.labels_mut().intern("course");
        let students = t.labels_mut().intern("students");
        t.insert(d(&[0]), entity_meta(course, 2));
        t.insert(d(&[0, 1]), connecting_meta(students, 3));
        assert_eq!(t.is_entity(&d(&[0])), Some(2));
        assert_eq!(t.is_entity(&d(&[0, 1])), None);
        assert_eq!(t.is_element(&d(&[0, 1])), Some(3));
        assert_eq!(t.is_element(&d(&[0])), None);
        assert_eq!(t.is_entity(&d(&[9])), None);
    }

    #[test]
    fn lowest_entity_ancestor_walks_up() {
        let mut t = NodeTable::new();
        let l = t.labels_mut().intern("x");
        t.insert(d(&[0]), entity_meta(l, 2));
        t.insert(d(&[0, 1]), connecting_meta(l, 1));
        // Node itself is an entity → returned as-is.
        assert_eq!(t.lowest_entity_ancestor_or_self(&d(&[0])), Some(d(&[0])));
        // Connecting node → nearest entity ancestor.
        assert_eq!(t.lowest_entity_ancestor_or_self(&d(&[0, 1])), Some(d(&[0])));
        // Deep unrecorded node → still walks ancestors.
        assert_eq!(t.lowest_entity_ancestor_or_self(&d(&[0, 1, 5, 2])), Some(d(&[0])));
        // No entity on the path → None.
        assert_eq!(t.lowest_entity_ancestor_or_self(&d(&[3, 0])), None);
    }

    #[test]
    fn interner_is_stable() {
        let mut i = LabelInterner::default();
        let a = i.intern("author");
        let b = i.intern("title");
        assert_eq!(i.intern("author"), a);
        assert_eq!(i.name(a), "author");
        assert_eq!(i.name(b), "title");
        assert_eq!(i.lookup("title"), Some(b));
        assert_eq!(i.lookup("nope"), None);
        assert_eq!(i.len(), 2);
    }
}
