//! A corpus: one or more named XML documents indexed together.
//!
//! "The XML data could be spread over multiple files" (paper §2.4); GKS
//! search spans them all by prefixing every Dewey id with its document id.

use std::fs;
use std::path::Path;

use gks_dewey::DocId;

use crate::error::IndexError;

/// One document of a corpus.
#[derive(Debug, Clone)]
pub struct CorpusDoc {
    /// Human-readable name (file stem or caller-supplied).
    pub name: String,
    /// Raw XML text.
    pub xml: String,
}

/// An in-memory corpus of XML documents.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    docs: Vec<CorpusDoc>,
}

impl Corpus {
    /// An empty corpus; add documents with [`Self::push`].
    pub fn new() -> Self {
        Corpus::default()
    }

    /// Builds a corpus from `(name, xml)` pairs.
    ///
    /// Returns an error only for an empty iterator; XML is validated later,
    /// at index time, so that parse errors carry document names.
    pub fn from_named_strs<N, S>(docs: impl IntoIterator<Item = (N, S)>) -> Result<Self, IndexError>
    where
        N: Into<String>,
        S: Into<String>,
    {
        let docs: Vec<CorpusDoc> = docs
            .into_iter()
            .map(|(name, xml)| CorpusDoc { name: name.into(), xml: xml.into() })
            .collect();
        if docs.is_empty() {
            return Err(IndexError::Corrupt("corpus has no documents".into()));
        }
        Ok(Corpus { docs })
    }

    /// Reads documents from the filesystem.
    pub fn from_paths(
        paths: impl IntoIterator<Item = impl AsRef<Path>>,
    ) -> Result<Self, IndexError> {
        let mut docs = Vec::new();
        for path in paths {
            let path = path.as_ref();
            let xml = fs::read_to_string(path)?;
            let name = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.display().to_string());
            docs.push(CorpusDoc { name, xml });
        }
        if docs.is_empty() {
            return Err(IndexError::Corrupt("corpus has no documents".into()));
        }
        Ok(Corpus { docs })
    }

    /// Reads every `.xml` file directly inside `dir` (sorted by name, for
    /// deterministic document ids).
    pub fn from_directory(dir: impl AsRef<Path>) -> Result<Self, IndexError> {
        let mut paths: Vec<std::path::PathBuf> = fs::read_dir(dir.as_ref())?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e.eq_ignore_ascii_case("xml")))
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Err(IndexError::Corrupt(format!(
                "no .xml files in {}",
                dir.as_ref().display()
            )));
        }
        Self::from_paths(paths)
    }

    /// Appends one document, returning its [`DocId`].
    pub fn push(&mut self, name: impl Into<String>, xml: impl Into<String>) -> DocId {
        self.docs.push(CorpusDoc { name: name.into(), xml: xml.into() });
        DocId((self.docs.len() - 1) as u32)
    }

    /// The documents in id order.
    pub fn docs(&self) -> &[CorpusDoc] {
        &self.docs
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when no documents have been added.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Total raw XML bytes — the "Data Set Size" column of the paper's
    /// Table 4.
    pub fn total_bytes(&self) -> usize {
        self.docs.iter().map(|d| d.xml.len()).sum()
    }

    /// The name of document `doc`, if it exists.
    pub fn doc_name(&self, doc: DocId) -> Option<&str> {
        self.docs.get(doc.0 as usize).map(|d| d.name.as_str())
    }

    /// A corpus containing this corpus's documents repeated `factor` times —
    /// the replication protocol of the paper's scalability experiment
    /// (§7.1.3, Figure 10).
    pub fn replicate(&self, factor: usize) -> Corpus {
        let mut docs = Vec::with_capacity(self.docs.len() * factor);
        for rep in 0..factor {
            for d in &self.docs {
                docs.push(CorpusDoc { name: format!("{}#{rep}", d.name), xml: d.xml.clone() });
            }
        }
        Corpus { docs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_named_strs_assigns_ids_in_order() {
        let c = Corpus::from_named_strs([("a", "<r/>"), ("b", "<r/>")]).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.doc_name(DocId(0)), Some("a"));
        assert_eq!(c.doc_name(DocId(1)), Some("b"));
        assert_eq!(c.doc_name(DocId(2)), None);
    }

    #[test]
    fn empty_corpus_rejected() {
        assert!(Corpus::from_named_strs(Vec::<(String, String)>::new()).is_err());
    }

    #[test]
    fn total_bytes_sums_documents() {
        let c = Corpus::from_named_strs([("a", "<r/>"), ("b", "<root/>")]).unwrap();
        assert_eq!(c.total_bytes(), 4 + 7);
    }

    #[test]
    fn replicate_multiplies_documents() {
        let c = Corpus::from_named_strs([("a", "<r/>")]).unwrap();
        let r = c.replicate(3);
        assert_eq!(r.len(), 3);
        assert_eq!(r.total_bytes(), 3 * 4);
        assert_eq!(r.doc_name(DocId(2)), Some("a#2"));
    }

    #[test]
    fn from_directory_reads_xml_files_sorted() {
        let dir = std::env::temp_dir().join(format!("gks-corpus-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("b.xml"), "<b/>").unwrap();
        std::fs::write(dir.join("a.xml"), "<a/>").unwrap();
        std::fs::write(dir.join("ignore.txt"), "nope").unwrap();
        let c = Corpus::from_directory(&dir).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.doc_name(DocId(0)), Some("a"));
        assert_eq!(c.doc_name(DocId(1)), Some("b"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn from_directory_with_no_xml_is_an_error() {
        let dir = std::env::temp_dir().join(format!("gks-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(Corpus::from_directory(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn push_returns_sequential_ids() {
        let mut c = Corpus::new();
        assert_eq!(c.push("x", "<r/>"), DocId(0));
        assert_eq!(c.push("y", "<r/>"), DocId(1));
    }
}
