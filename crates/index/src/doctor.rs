//! The index doctor: end-to-end invariant checking over a built index.
//!
//! GKS correctness rests on structural invariants the paper assumes but
//! never re-checks at runtime: posting lists are document-ordered by Dewey
//! id (§2.4 — the stack-based sweep silently produces wrong SLCA/ELCA
//! answers on out-of-order postings), the Dewey prefix algebra of §2.1
//! implies every non-root node's parent exists, and the AN/RN/EN/CN census
//! of Table 5 must agree with the node table's category flags. The doctor
//! validates all of them plus the attribute store, returning a typed
//! [`Violation`] report instead of panicking, so it is safe to run against
//! untrusted persisted indexes (`gks doctor <index.gksix>`).
//!
//! The builder re-runs these checks under `#[cfg(debug_assertions)]` after
//! every build, so debug test runs exercise them continuously.

use std::fmt;

use gks_dewey::DeweyId;

use crate::builder::GksIndex;
use crate::categorize::NodeCategory;
use crate::stats::CategoryCensus;

/// One violated index invariant, as found by [`GksIndex::doctor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A posting list is not strictly sorted by Dewey document order at
    /// `position` (equal neighbours — duplicates — also violate strictness).
    UnsortedPostings {
        /// The term whose list is broken.
        term: String,
        /// Index of the first out-of-order posting within the list.
        position: usize,
    },
    /// A posting references a Dewey id with no node-table entry.
    PostingUnknownNode {
        /// The term whose list contains the dangling posting.
        term: String,
        /// The unresolvable Dewey id.
        node: DeweyId,
    },
    /// A non-root node's parent is missing from the node table, breaking
    /// the §2.1 prefix algebra (ancestor walks, child-count lookups).
    OrphanNode {
        /// The node whose parent is absent.
        node: DeweyId,
    },
    /// The node table holds a different number of nodes than the build
    /// statistics recorded.
    NodeCountMismatch {
        /// Nodes actually present in the table.
        in_table: u64,
        /// Nodes the statistics claim.
        in_stats: u64,
    },
    /// The census recomputed from node-table category flags disagrees with
    /// the recorded statistics for one category (a miscategorized node or a
    /// stale census).
    CensusMismatch {
        /// The category whose counts disagree.
        category: NodeCategory,
        /// Count recomputed from the node table's flags.
        in_table: u64,
        /// Count recorded in [`crate::stats::IndexStats`].
        in_stats: u64,
    },
    /// An attribute-store key is not an entity node in the node table
    /// (Def 2.3.1 attaches `R(e)` to entity nodes only).
    AttrEntityNotEntity {
        /// The offending attribute-store key.
        entity: DeweyId,
    },
    /// An attribute entry's element path contains a label id the interner
    /// cannot resolve.
    AttrPathUnresolvable {
        /// The entity whose entry is broken.
        entity: DeweyId,
        /// The unresolvable label id.
        label: u32,
    },
    /// An attribute entry has an empty element path (every entry must name
    /// at least the attribute element itself).
    AttrPathEmpty {
        /// The entity whose entry is broken.
        entity: DeweyId,
    },
    /// A format-v3 posting run failed to decode (the open-path checksum
    /// covers only the header and footer, so block corruption surfaces
    /// lazily; the doctor forces every run and reports the first failure).
    PostingsCorrupt {
        /// Decoder error description.
        detail: String,
    },
    /// A term's dictionary posting count disagrees with its decoded run
    /// (format v3 serves counts straight from the dictionary, so a mismatch
    /// would skew cost accounting and scoring).
    PostingCountMismatch {
        /// The term whose count is broken.
        term: String,
        /// Count recorded in the term dictionary.
        in_dict: usize,
        /// Postings actually decoded from the run.
        decoded: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::UnsortedPostings { term, position } => write!(
                f,
                "posting list for {term:?} is not strictly Dewey-sorted at position {position}"
            ),
            Violation::PostingUnknownNode { term, node } => {
                write!(f, "posting list for {term:?} references unknown node {node}")
            }
            Violation::OrphanNode { node } => {
                write!(f, "node {node} has no parent entry in the node table")
            }
            Violation::NodeCountMismatch { in_table, in_stats } => {
                write!(f, "node table holds {in_table} node(s) but statistics record {in_stats}")
            }
            Violation::CensusMismatch { category, in_table, in_stats } => write!(
                f,
                "census mismatch for {}: node table has {in_table}, statistics record {in_stats}",
                category.abbrev()
            ),
            Violation::AttrEntityNotEntity { entity } => {
                write!(f, "attribute store keyed by {entity}, which is not an entity node")
            }
            Violation::AttrPathUnresolvable { entity, label } => {
                write!(f, "attribute entry of {entity} has unresolvable label id {label}")
            }
            Violation::AttrPathEmpty { entity } => {
                write!(f, "attribute entry of {entity} has an empty element path")
            }
            Violation::PostingsCorrupt { detail } => {
                write!(f, "a posting run failed to decode: {detail}")
            }
            Violation::PostingCountMismatch { term, in_dict, decoded } => write!(
                f,
                "term {term:?} records {in_dict} posting(s) in the dictionary but its run decodes to {decoded}"
            ),
        }
    }
}

/// Runs every invariant check against `index`, returning all violations in
/// a deterministic order (sorted by rendered message). An empty vector
/// means the index is healthy.
pub fn check(index: &GksIndex) -> Vec<Violation> {
    let mut violations = Vec::new();
    check_postings(index, &mut violations);
    check_parents(index, &mut violations);
    check_census(index, &mut violations);
    check_attrs(index, &mut violations);
    // Hash-map iteration order is unspecified; sort so reports (and the
    // corrupted-fixture tests) are stable run to run.
    violations.sort_by_key(|v| v.to_string());
    violations
}

/// Posting lists must be strictly sorted by Dewey order (§2.4: "containing
/// the Dewey id of all the nodes which contain that keyword", document-
/// ordered and deduplicated), and every posting must resolve in the node
/// table. One violation per broken list keeps reports readable.
fn check_postings(index: &GksIndex, out: &mut Vec<Violation>) {
    for (term, list) in index.inverted().iter() {
        if let Some(pos) = list.windows(2).position(|w| w[0] >= w[1]) {
            out.push(Violation::UnsortedPostings { term: term.to_string(), position: pos + 1 });
        }
        if let Some(node) = list.iter().find(|id| index.node_table().get(id).is_none()) {
            out.push(Violation::PostingUnknownNode { term: term.to_string(), node: node.clone() });
        }
        // Format v3 serves counts from the term dictionary without decoding;
        // the audit forces the decode and cross-checks the two.
        let in_dict = index.posting_count(term);
        if in_dict != list.len() {
            out.push(Violation::PostingCountMismatch {
                term: term.to_string(),
                in_dict,
                decoded: list.len(),
            });
        }
    }
    // Iterating above forced every mapped run through its decoder; report
    // any block-level corruption it surfaced.
    if let Some(detail) = index.inverted().corrupt() {
        out.push(Violation::PostingsCorrupt { detail: detail.to_string() });
    }
}

/// Every non-root node's parent must itself be recorded: ancestor walks
/// (LCE derivation, §4.1) and potential-flow child-count lookups (§5) both
/// assume the §2.1 prefix algebra closes over the table.
fn check_parents(index: &GksIndex, out: &mut Vec<Violation>) {
    for (id, _) in index.node_table().iter() {
        let Some(parent) = id.parent() else { continue };
        if index.node_table().get(&parent).is_none() {
            out.push(Violation::OrphanNode { node: id.clone() });
        }
    }
}

/// The AN/RN/EN/CN census recorded during the build (Table 5) must agree
/// with a recount over the node table's category flags.
fn check_census(index: &GksIndex, out: &mut Vec<Violation>) {
    let stats = index.stats();
    if index.node_table().len() as u64 != stats.total_nodes {
        out.push(Violation::NodeCountMismatch {
            in_table: index.node_table().len() as u64,
            in_stats: stats.total_nodes,
        });
    }
    let mut recount = CategoryCensus::default();
    for (_, meta) in index.node_table().iter() {
        recount.add(meta.flags.primary());
    }
    for category in [
        NodeCategory::Attribute,
        NodeCategory::Repeating,
        NodeCategory::Entity,
        NodeCategory::Connecting,
    ] {
        let in_table = recount.get(category);
        let in_stats = stats.census.get(category);
        if in_table != in_stats {
            out.push(Violation::CensusMismatch { category, in_table, in_stats });
        }
    }
}

/// Attribute-store keys must be entity nodes and every entry's element path
/// must resolve through the label interner (§2.3: the path from the entity
/// to the attribute is the keyword's semantics — an unresolvable path makes
/// DI discovery produce garbage).
fn check_attrs(index: &GksIndex, out: &mut Vec<Violation>) {
    let labels = index.node_table().labels();
    for (entity, entries) in index.attr_store().iter() {
        if index.node_table().is_entity(entity).is_none() {
            out.push(Violation::AttrEntityNotEntity { entity: entity.clone() });
        }
        for entry in entries {
            if entry.path.is_empty() {
                out.push(Violation::AttrPathEmpty { entity: entity.clone() });
                continue;
            }
            if let Some(&label) = entry.path.iter().find(|&&l| l as usize >= labels.len()) {
                out.push(Violation::AttrPathUnresolvable { entity: entity.clone(), label });
            }
        }
    }
}

impl GksIndex {
    /// Runs the full invariant audit; see the [module docs](self) for the
    /// checks performed. Empty result = healthy index.
    pub fn doctor(&self) -> Vec<Violation> {
        check(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Corpus;
    use crate::node_table::NodeMeta;
    use crate::options::IndexOptions;
    use gks_dewey::{DeweyId, DocId};

    fn build() -> GksIndex {
        let xml = "<Area><Name>DB</Name><Courses>\
            <Course><Name>Data Mining</Name><Students>\
                <Student>Karen</Student><Student>Mike</Student></Students></Course>\
            <Course><Name>AI</Name><Students>\
                <Student>Karen</Student><Student>John</Student></Students></Course>\
        </Courses></Area>";
        let corpus = Corpus::from_named_strs([("uni", xml)]).unwrap();
        GksIndex::build(&corpus, IndexOptions::default()).unwrap()
    }

    #[test]
    fn fresh_index_is_healthy() {
        let ix = build();
        assert_eq!(ix.doctor(), Vec::new());
    }

    #[test]
    fn detects_unsorted_posting_list() {
        let mut ix = build();
        // Corrupt the "karen" list by swapping its (two) postings.
        let tid = ix.inverted_mut().heap_mut().term_id("karen");
        ix.inverted_mut().heap_mut().list_mut(tid).reverse();
        let violations = ix.doctor();
        assert!(
            violations.iter().any(|v| matches!(
                v,
                Violation::UnsortedPostings { term, position: 1 } if term == "karen"
            )),
            "{violations:?}"
        );
    }

    #[test]
    fn detects_orphan_dewey_id() {
        let mut ix = build();
        // Insert a deep node whose parent chain does not exist.
        let stray = DeweyId::new(DocId(0), vec![9, 9, 9]);
        let meta =
            NodeMeta { child_count: 1, flags: crate::categorize::NodeFlags::empty(), label: 0 };
        ix.node_table_mut().insert(stray.clone(), meta);
        // Keep total_nodes consistent so only the orphan fires, not the
        // node-count check.
        ix.stats_mut().total_nodes += 1;
        ix.stats_mut().census.add(meta.flags.primary());
        let violations = ix.doctor();
        assert!(
            violations.iter().any(|v| matches!(
                v,
                Violation::OrphanNode { node } if *node == stray
            )),
            "{violations:?}"
        );
    }

    #[test]
    fn detects_miscategorized_node() {
        let mut ix = build();
        // Flip one entity node's flags to empty (connecting): the recount
        // diverges from the recorded census in two categories.
        let (id, meta) = ix
            .node_table()
            .iter()
            .find(|(_, m)| m.flags.is_entity() && m.flags.primary() == NodeCategory::Entity)
            .map(|(id, m)| (id.clone(), *m))
            .expect("built index has an entity node");
        ix.node_table_mut()
            .insert(id, NodeMeta { flags: crate::categorize::NodeFlags::empty(), ..meta });
        let violations = ix.doctor();
        assert!(
            violations.iter().any(|v| matches!(
                v,
                Violation::CensusMismatch { category: NodeCategory::Entity, .. }
            )),
            "{violations:?}"
        );
    }

    #[test]
    fn detects_dangling_posting_and_bad_attr_entry() {
        let mut ix = build();
        let tid = ix.inverted_mut().heap_mut().term_id("karen");
        // A posting beyond every real node, appended in order.
        ix.inverted_mut().heap_mut().list_mut(tid).push(DeweyId::new(DocId(7), vec![1]));
        let entity = DeweyId::new(DocId(0), vec![5, 5]);
        ix.attrs_mut().insert(
            entity.clone(),
            vec![crate::attrstore::AttrEntry {
                path: vec![u32::MAX],
                value: "x".into(),
                source: crate::attrstore::AttrSource::Attribute,
            }],
        );
        let violations = ix.doctor();
        assert!(
            violations.iter().any(
                |v| matches!(v, Violation::PostingUnknownNode { term, .. } if term == "karen")
            ),
            "{violations:?}"
        );
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::AttrEntityNotEntity { entity: e } if *e == entity)),
            "{violations:?}"
        );
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::AttrPathUnresolvable { label: u32::MAX, .. })),
            "{violations:?}"
        );
    }

    #[test]
    fn violations_render_with_context() {
        let v = Violation::UnsortedPostings { term: "karen".into(), position: 3 };
        let s = v.to_string();
        assert!(s.contains("karen") && s.contains('3'), "{s}");
    }
}
