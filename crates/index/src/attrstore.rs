//! The attribute store: per-entity context attributes for DI discovery.
//!
//! For an entity node `e`, `R(e)` is "a subset of text keywords, extracted
//! from attribute nodes of e" (paper Table 2); §2.3 additionally associates
//! with every DI keyword "the XML elements in the path from node e till
//! keyword k" — the *semantics* of the keyword (`<Course: Name: Data
//! Mining>`). This store records, for every entity node, its qualifying
//! attribute entries: the element path from the entity to the attribute, the
//! attribute's text, and whether the source was a true attribute node or a
//! repeating text node.
//!
//! Repeating text nodes are included (flagged [`AttrSource::RepeatingText`])
//! because the paper's own DI examples surface them — `<ip: author: Alok N
//! Choudhary>` comes from an `<author>` list, which repeats in multi-author
//! articles — even though Def 2.3.1 speaks only of attribute nodes. DI
//! extraction filters by source according to its options.

use gks_dewey::DeweyId;

use crate::fasthash::FastMap;

/// Where an attribute entry came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrSource {
    /// A true attribute node (Def 2.1.1) on a repetition-free path.
    Attribute,
    /// A repeating text node (e.g. one `<author>` of several).
    RepeatingText,
}

/// One qualifying attribute of an entity node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrEntry {
    /// Interned labels of the elements from the entity's child down to the
    /// attribute element itself (inclusive), e.g. `[students, student]` or
    /// `[name]`.
    pub path: Vec<u32>,
    /// The attribute's raw text value.
    pub value: String,
    /// Attribute node or repeating text node.
    pub source: AttrSource,
}

/// Map from entity Dewey ids to their qualifying attributes.
#[derive(Debug, Default, Clone)]
pub struct AttrStore {
    map: FastMap<DeweyId, Vec<AttrEntry>>,
}

impl AttrStore {
    /// An empty store.
    pub fn new() -> Self {
        AttrStore::default()
    }

    /// Records the qualifying attributes of entity `e`.
    pub fn insert(&mut self, e: DeweyId, entries: Vec<AttrEntry>) {
        if !entries.is_empty() {
            self.map.insert(e, entries);
        }
    }

    /// `R(e)`: the qualifying attributes of entity `e` (empty for unknown or
    /// attribute-less entities).
    pub fn entries(&self, e: &DeweyId) -> &[AttrEntry] {
        self.map.get(e).map_or(&[], Vec::as_slice)
    }

    /// Number of entities with at least one recorded attribute.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates all `(entity, entries)` pairs (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (&DeweyId, &Vec<AttrEntry>)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gks_dewey::DocId;

    fn d(steps: &[u32]) -> DeweyId {
        DeweyId::new(DocId(0), steps.to_vec())
    }

    #[test]
    fn entries_round_trip() {
        let mut s = AttrStore::new();
        s.insert(
            d(&[0, 1]),
            vec![AttrEntry {
                path: vec![3],
                value: "Data Mining".into(),
                source: AttrSource::Attribute,
            }],
        );
        assert_eq!(s.entries(&d(&[0, 1]))[0].value, "Data Mining");
        assert!(s.entries(&d(&[9])).is_empty());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn empty_entry_lists_not_stored() {
        let mut s = AttrStore::new();
        s.insert(d(&[0]), vec![]);
        assert!(s.is_empty());
    }
}
