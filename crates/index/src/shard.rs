//! Document-granular corpus sharding: splitting a corpus into contiguous
//! document ranges and the manifest that records the split.
//!
//! GKS answers are per-node and no corpus-global statistic enters the
//! potential-flow rank (§5), so a corpus partitioned **by document** yields
//! shards whose local answers merge losslessly: a node's score in shard `i`
//! equals its score in the monolithic index, and the only cross-shard work
//! is remapping each shard-local [`DocId`] back to its global id (the shard
//! knows its documents as `0..doc_count`; globally they are
//! `doc_base..doc_base+doc_count`).
//!
//! The manifest is a line-based text file (the workspace has no JSON
//! parser): a header line, a shard-count line, then one `shard` line per
//! shard carrying the numeric split and per-shard corpus stats followed by
//! the shard's index path (path last, so paths may contain anything except
//! a newline).

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use gks_dewey::DocId;

use crate::builder::GksIndex;
use crate::corpus::Corpus;
use crate::error::IndexError;

/// Magic first line of a shard manifest file.
pub const MANIFEST_HEADER: &str = "gks-shard-manifest v1";

/// One shard of a sharded index: where its self-contained `.gksix` file
/// lives and which contiguous global document range it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEntry {
    /// Path to the shard's index file.
    pub path: PathBuf,
    /// Global [`DocId`] of the shard's first document; the shard itself
    /// numbers its documents from zero.
    pub doc_base: u32,
    /// Number of documents in the shard.
    pub doc_count: u32,
    /// Raw XML bytes of the shard's slice of the corpus.
    pub raw_bytes: u64,
    /// Total nodes in the shard's index.
    pub total_nodes: u64,
    /// Distinct indexed terms in the shard's index.
    pub distinct_terms: u64,
}

/// The record of one corpus split across N self-contained shard indexes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardManifest {
    /// The shards, in global document order (ascending `doc_base`).
    pub shards: Vec<ShardEntry>,
}

impl ShardManifest {
    /// Builds a manifest entry for `index` persisted at `path`, covering
    /// the global document range starting at `doc_base`.
    pub fn entry_for(index: &GksIndex, path: impl Into<PathBuf>, doc_base: u32) -> ShardEntry {
        let stats = index.stats();
        ShardEntry {
            path: path.into(),
            doc_base,
            doc_count: u32::try_from(stats.doc_count).unwrap_or(u32::MAX),
            raw_bytes: stats.raw_bytes,
            total_nodes: stats.total_nodes,
            distinct_terms: stats.distinct_terms,
        }
    }

    /// Renders the manifest in its line-based text format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{MANIFEST_HEADER}");
        let _ = writeln!(out, "shards {}", self.shards.len());
        for s in &self.shards {
            let _ = writeln!(
                out,
                "shard {}\t{}\t{}\t{}\t{}\t{}",
                s.doc_base,
                s.doc_count,
                s.raw_bytes,
                s.total_nodes,
                s.distinct_terms,
                s.path.display()
            );
        }
        out
    }

    /// Parses a manifest from its text format. The inverse of
    /// [`ShardManifest::render`]; shard paths are kept verbatim (see
    /// [`ShardManifest::load`] for relative-path resolution).
    pub fn parse(text: &str) -> Result<ShardManifest, IndexError> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().unwrap_or("");
        if header.trim() != MANIFEST_HEADER {
            return Err(IndexError::Corrupt(format!(
                "not a shard manifest (expected {MANIFEST_HEADER:?}, found {header:?})"
            )));
        }
        let count_line = lines
            .next()
            .ok_or_else(|| IndexError::Corrupt("shard manifest missing shard count".into()))?;
        let declared: usize = count_line
            .strip_prefix("shards ")
            .and_then(|n| n.trim().parse().ok())
            .ok_or_else(|| IndexError::Corrupt(format!("bad shard count line: {count_line:?}")))?;
        let mut shards = Vec::with_capacity(declared);
        for line in lines {
            let body = line.strip_prefix("shard ").ok_or_else(|| {
                IndexError::Corrupt(format!("unexpected manifest line: {line:?}"))
            })?;
            let fields: Vec<&str> = body.splitn(6, '\t').collect();
            if fields.len() != 6 {
                return Err(IndexError::Corrupt(format!(
                    "shard line has {} fields, expected 6: {line:?}",
                    fields.len()
                )));
            }
            let num = |i: usize| -> Result<u64, IndexError> {
                fields[i].trim().parse().map_err(|_| {
                    IndexError::Corrupt(format!("bad number {:?} in {line:?}", fields[i]))
                })
            };
            shards.push(ShardEntry {
                doc_base: u32::try_from(num(0)?).unwrap_or(u32::MAX),
                doc_count: u32::try_from(num(1)?).unwrap_or(u32::MAX),
                raw_bytes: num(2)?,
                total_nodes: num(3)?,
                distinct_terms: num(4)?,
                path: PathBuf::from(fields[5]),
            });
        }
        if shards.len() != declared {
            return Err(IndexError::Corrupt(format!(
                "manifest declares {declared} shards but lists {}",
                shards.len()
            )));
        }
        if shards.is_empty() {
            return Err(IndexError::Corrupt("shard manifest lists no shards".into()));
        }
        let mut expected_base = 0u32;
        for (i, s) in shards.iter().enumerate() {
            if s.doc_base != expected_base {
                return Err(IndexError::Corrupt(format!(
                    "shard {i} has doc_base {} but the previous shards cover {expected_base} \
                     documents",
                    s.doc_base
                )));
            }
            if s.doc_count == 0 {
                return Err(IndexError::Corrupt(format!("shard {i} covers no documents")));
            }
            expected_base = expected_base.saturating_add(s.doc_count);
        }
        Ok(ShardManifest { shards })
    }

    /// Writes the manifest to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), IndexError> {
        fs::write(path.as_ref(), self.render())?;
        Ok(())
    }

    /// Reads and parses a manifest from `path`, resolving relative shard
    /// paths against the manifest's own directory.
    pub fn load(path: impl AsRef<Path>) -> Result<ShardManifest, IndexError> {
        let path = path.as_ref();
        let text = fs::read_to_string(path)?;
        let mut manifest = ShardManifest::parse(&text)?;
        if let Some(dir) = path.parent() {
            for shard in &mut manifest.shards {
                if shard.path.is_relative() {
                    shard.path = dir.join(&shard.path);
                }
            }
        }
        Ok(manifest)
    }

    /// Total documents across all shards.
    pub fn doc_count(&self) -> u64 {
        self.shards.iter().map(|s| u64::from(s.doc_count)).sum()
    }

    /// The global [`DocId`] bases of the shards, in shard order — the
    /// offsets a gather stage adds to shard-local document ids.
    pub fn doc_bases(&self) -> Vec<DocId> {
        self.shards.iter().map(|s| DocId(s.doc_base)).collect()
    }
}

/// Splits a corpus into at most `shards` contiguous document ranges, in
/// global document order. Every returned corpus is non-empty: when the
/// corpus has fewer documents than `shards`, one single-document corpus is
/// returned per document. Sizes differ by at most one document (the first
/// `len % shards` ranges take the extra), so shard `i` starts at the global
/// document id equal to the sum of the earlier range sizes.
pub fn split_corpus(corpus: &Corpus, shards: usize) -> Vec<Corpus> {
    let docs = corpus.docs();
    let shards = shards.clamp(1, docs.len().max(1));
    let base_size = docs.len() / shards;
    let remainder = docs.len() % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0usize;
    for i in 0..shards {
        let size = base_size + usize::from(i < remainder);
        let slice = &docs[start..start + size];
        let mut part = Corpus::new();
        for d in slice {
            part.push(d.name.clone(), d.xml.clone());
        }
        out.push(part);
        start += size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::IndexOptions;

    fn corpus(n: usize) -> Corpus {
        let mut c = Corpus::new();
        for i in 0..n {
            c.push(format!("doc{i}"), format!("<r><a>term{i}</a></r>"));
        }
        c
    }

    #[test]
    fn split_is_contiguous_and_balanced() {
        let c = corpus(7);
        let parts = split_corpus(&c, 3);
        assert_eq!(parts.len(), 3);
        let sizes: Vec<usize> = parts.iter().map(Corpus::len).collect();
        assert_eq!(sizes, vec![3, 2, 2]);
        // Contiguity: concatenating the parts reproduces the corpus order.
        let names: Vec<&str> =
            parts.iter().flat_map(|p| p.docs().iter().map(|d| d.name.as_str())).collect();
        let expected: Vec<String> = (0..7).map(|i| format!("doc{i}")).collect();
        assert_eq!(names, expected.iter().map(String::as_str).collect::<Vec<_>>());
    }

    #[test]
    fn split_never_produces_empty_shards() {
        let c = corpus(2);
        let parts = split_corpus(&c, 5);
        assert_eq!(parts.len(), 2, "more shards than documents collapses to len");
        assert!(parts.iter().all(|p| !p.is_empty()));
        assert_eq!(split_corpus(&c, 0).len(), 1, "zero shards means one");
    }

    #[test]
    fn manifest_round_trips_through_text() {
        let c = corpus(5);
        let parts = split_corpus(&c, 2);
        let mut manifest = ShardManifest::default();
        let mut base = 0u32;
        for (i, part) in parts.iter().enumerate() {
            let ix = GksIndex::build(part, IndexOptions::default()).unwrap();
            manifest
                .shards
                .push(ShardManifest::entry_for(&ix, format!("shard-{i}.gksix"), base));
            base += part.len() as u32;
        }
        assert_eq!(manifest.doc_count(), 5);
        assert_eq!(manifest.doc_bases(), vec![DocId(0), DocId(3)]);
        let text = manifest.render();
        assert!(text.starts_with(MANIFEST_HEADER));
        let parsed = ShardManifest::parse(&text).unwrap();
        assert_eq!(parsed, manifest);
    }

    #[test]
    fn malformed_manifests_are_rejected() {
        assert!(ShardManifest::parse("").is_err(), "empty");
        assert!(ShardManifest::parse("nope\nshards 0\n").is_err(), "bad header");
        assert!(
            ShardManifest::parse(&format!("{MANIFEST_HEADER}\nshards 2\n")).is_err(),
            "count mismatch"
        );
        let gap = format!(
            "{MANIFEST_HEADER}\nshards 2\nshard 0\t2\t9\t9\t9\ta.gksix\n\
             shard 5\t2\t9\t9\t9\tb.gksix\n"
        );
        assert!(ShardManifest::parse(&gap).is_err(), "doc_base gap");
        let empty_shard = format!("{MANIFEST_HEADER}\nshards 1\nshard 0\t0\t9\t9\t9\ta.gksix\n");
        assert!(ShardManifest::parse(&empty_shard).is_err(), "zero-doc shard");
    }

    #[test]
    fn load_resolves_relative_paths() {
        let dir = std::env::temp_dir().join(format!("gks-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = ShardManifest {
            shards: vec![ShardEntry {
                path: PathBuf::from("s0.gksix"),
                doc_base: 0,
                doc_count: 1,
                raw_bytes: 4,
                total_nodes: 2,
                distinct_terms: 1,
            }],
        };
        let path = dir.join("corpus.shards");
        manifest.save(&path).unwrap();
        let loaded = ShardManifest::load(&path).unwrap();
        assert_eq!(loaded.shards[0].path, dir.join("s0.gksix"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
