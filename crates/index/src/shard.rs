//! Document-granular corpus sharding: splitting a corpus into contiguous
//! document ranges and the manifest that records the split.
//!
//! GKS answers are per-node and no corpus-global statistic enters the
//! potential-flow rank (§5), so a corpus partitioned **by document** yields
//! shards whose local answers merge losslessly: a node's score in shard `i`
//! equals its score in the monolithic index, and the only cross-shard work
//! is remapping each shard-local [`DocId`] back to its global id.
//!
//! The manifest is a line-based text file (the workspace has no JSON
//! parser). Format v2 extends the v1 shard list with the state an
//! incremental update path needs:
//!
//! * an **epoch** — bumped by every committed change; the manifest file is
//!   replaced atomically (write-to-temp + rename), so the rename *is* the
//!   commit point and readers only ever observe a whole epoch;
//! * per-shard **ids** (stable across commits), a **kind** (`base` or
//!   `delta`), and the epoch the shard was **born** in;
//! * a **document table**: every live document with its content hash, mtime
//!   and owning `(shard, local id)` — the table's order *is* the global
//!   document numbering, so a gather stage can renumber shard-local hits
//!   into exactly the ids a monolithic rebuild would assign;
//! * **tombstones**: documents deleted (or superseded by a delta copy)
//!   whose postings must be masked out of their owning shard at query time;
//! * the indexing **options** and optional **corpus directory**, so a delta
//!   build five epochs later indexes new documents identically.
//!
//! v1 manifests (shard list only) still parse: ids become ordinals, the
//! epoch is zero, and the document table is empty (which downstream layers
//! treat as "plain base-offset doc numbering, nothing masked").

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use gks_dewey::DocId;

use crate::builder::GksIndex;
use crate::corpus::Corpus;
use crate::error::IndexError;
use crate::options::IndexOptions;

/// Magic first line of a current-format shard manifest file.
pub const MANIFEST_HEADER: &str = "gks-shard-manifest v2";

/// Magic first line of the legacy v1 format (still accepted by
/// [`ShardManifest::parse`]).
pub const MANIFEST_HEADER_V1: &str = "gks-shard-manifest v1";

/// Version-agnostic prefix shared by every manifest format version — what a
/// file-type sniff should match instead of a specific header.
pub const MANIFEST_MAGIC: &str = "gks-shard-manifest v";

/// Sentinel in a shard view's local→global table marking a dead (tombstoned)
/// local document id.
pub const DEAD_DOC: u32 = u32::MAX;

/// Whether a shard is part of the compacted base or an incremental delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardKind {
    /// A compacted base shard.
    #[default]
    Base,
    /// A small incremental shard holding new/changed documents only.
    Delta,
}

impl ShardKind {
    /// The stable manifest spelling of this kind.
    pub fn label(self) -> &'static str {
        match self {
            ShardKind::Base => "base",
            ShardKind::Delta => "delta",
        }
    }

    /// The inverse of [`ShardKind::label`].
    pub fn parse(s: &str) -> Option<ShardKind> {
        match s {
            "base" => Some(ShardKind::Base),
            "delta" => Some(ShardKind::Delta),
            _ => None,
        }
    }
}

/// One shard of a sharded index: where its self-contained `.gksix` file
/// lives and which contiguous global document range it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEntry {
    /// Stable shard identifier, unique within the manifest across commits.
    pub id: u64,
    /// Base or delta.
    pub kind: ShardKind,
    /// The manifest epoch this shard was committed in.
    pub born: u64,
    /// Path to the shard's index file.
    pub path: PathBuf,
    /// Global [`DocId`] of the shard's first document; the shard itself
    /// numbers its documents from zero.
    pub doc_base: u32,
    /// Number of documents in the shard (including any later tombstoned).
    pub doc_count: u32,
    /// Raw XML bytes of the shard's slice of the corpus.
    pub raw_bytes: u64,
    /// Total nodes in the shard's index.
    pub total_nodes: u64,
    /// Distinct indexed terms in the shard's index.
    pub distinct_terms: u64,
}

/// One live document in the manifest's document table. The table's order is
/// the global document numbering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocEntry {
    /// Id of the shard holding the document's current copy.
    pub shard: u64,
    /// The document's id inside that shard's own numbering.
    pub local: u32,
    /// Content hash of the document's XML (see `delta::content_hash`).
    pub hash: u64,
    /// File mtime in ms at index time (0 = unknown; forces re-hash).
    pub mtime_ms: u64,
    /// Document name (file stem).
    pub name: String,
}

/// A dead document: its copy in `shard` must be masked out at query time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tombstone {
    /// Id of the shard holding the dead copy.
    pub shard: u64,
    /// The dead copy's local document id in that shard.
    pub local: u32,
    /// Document name, for diagnostics and referential-integrity checks.
    pub name: String,
}

/// The record of one corpus split across N self-contained shard indexes,
/// plus the incremental-update state described in the [module docs](self).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardManifest {
    /// Commit counter; bumped by every delta commit and compaction.
    pub epoch: u64,
    /// Wall-clock ms of the last commit (0 = unknown) — the numerator of
    /// the `gks_index_freshness_seconds` metric.
    pub committed_ms: u64,
    /// The corpus directory deltas are scanned from, when known. Relative
    /// paths are resolved against the manifest's directory on load.
    pub corpus_dir: Option<PathBuf>,
    /// Indexing options every shard (and every future delta) is built with.
    pub options: IndexOptions,
    /// The shards, in global document order (ascending `doc_base`).
    pub shards: Vec<ShardEntry>,
    /// The live-document table, in global document order. Empty for v1
    /// manifests (downstream layers then use plain base-offset numbering).
    pub docs: Vec<DocEntry>,
    /// Dead document copies to mask at query time.
    pub tombstones: Vec<Tombstone>,
}

/// Per-shard query-time view derived from the manifest: which local
/// documents are dead, and how live locals renumber into global ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardView {
    /// The shard's stable id.
    pub id: u64,
    /// The shard's global document base (full-count tiling).
    pub doc_base: u32,
    /// Sorted local document ids that are tombstoned.
    pub tombstones: Vec<u32>,
    /// `table[local] = global` for live locals, [`DEAD_DOC`] for dead ones;
    /// `None` when the manifest has no document table (v1): numbering is
    /// then the plain `doc_base` offset and nothing is masked.
    pub doc_map: Option<Vec<u32>>,
}

impl ShardManifest {
    /// Builds a manifest entry for `index` persisted at `path`, covering
    /// the global document range starting at `doc_base`. The caller assigns
    /// `id`/`kind`/`born` (they default to `0`/base/`0`).
    pub fn entry_for(index: &GksIndex, path: impl Into<PathBuf>, doc_base: u32) -> ShardEntry {
        let stats = index.stats();
        ShardEntry {
            id: 0,
            kind: ShardKind::Base,
            born: 0,
            path: path.into(),
            doc_base,
            doc_count: u32::try_from(stats.doc_count).unwrap_or(u32::MAX),
            raw_bytes: stats.raw_bytes,
            total_nodes: stats.total_nodes,
            distinct_terms: stats.distinct_terms,
        }
    }

    /// The smallest shard id not yet used by any entry.
    pub fn next_shard_id(&self) -> u64 {
        self.shards.iter().map(|s| s.id.saturating_add(1)).max().unwrap_or(0)
    }

    /// The entry with shard id `id`, if present.
    pub fn shard_by_id(&self, id: u64) -> Option<&ShardEntry> {
        self.shards.iter().find(|s| s.id == id)
    }

    /// Number of delta shards currently carried by the manifest.
    pub fn delta_shard_count(&self) -> usize {
        self.shards.iter().filter(|s| s.kind == ShardKind::Delta).count()
    }

    /// Documents living in delta shards (the compactor's backlog).
    pub fn delta_doc_count(&self) -> u64 {
        let delta_ids: Vec<u64> = self
            .shards
            .iter()
            .filter(|s| s.kind == ShardKind::Delta)
            .map(|s| s.id)
            .collect();
        self.docs.iter().filter(|d| delta_ids.contains(&d.shard)).count() as u64
    }

    /// Renders the manifest in its line-based v2 text format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{MANIFEST_HEADER}");
        let _ = writeln!(out, "epoch {}", self.epoch);
        let _ = writeln!(out, "committed-ms {}", self.committed_ms);
        let a = &self.options.analyzer;
        let _ = writeln!(
            out,
            "options remove_stopwords={} stem={} min_term_len={} attrs_as_elements={} \
             element_names={}",
            u8::from(a.remove_stopwords),
            u8::from(a.stem),
            a.min_term_len,
            u8::from(self.options.xml_attributes_as_elements),
            u8::from(self.options.index_element_names),
        );
        if let Some(dir) = &self.corpus_dir {
            let _ = writeln!(out, "corpus {}", dir.display());
        }
        let _ = writeln!(out, "shards {}", self.shards.len());
        for s in &self.shards {
            let _ = writeln!(
                out,
                "shard {}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                s.id,
                s.kind.label(),
                s.born,
                s.doc_base,
                s.doc_count,
                s.raw_bytes,
                s.total_nodes,
                s.distinct_terms,
                s.path.display()
            );
        }
        let _ = writeln!(out, "docs {}", self.docs.len());
        for d in &self.docs {
            let _ = writeln!(
                out,
                "doc {}\t{}\t{}\t{}\t{}",
                d.shard, d.local, d.hash, d.mtime_ms, d.name
            );
        }
        let _ = writeln!(out, "tombstones {}", self.tombstones.len());
        for t in &self.tombstones {
            let _ = writeln!(out, "tombstone {}\t{}\t{}", t.shard, t.local, t.name);
        }
        out
    }

    /// Parses a manifest from its text format (v2 or legacy v1). The
    /// inverse of [`ShardManifest::render`]; shard paths are kept verbatim
    /// (see [`ShardManifest::load`] for relative-path resolution).
    pub fn parse(text: &str) -> Result<ShardManifest, IndexError> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().unwrap_or("").trim();
        let manifest = match header {
            h if h == MANIFEST_HEADER => parse_v2(lines)?,
            h if h == MANIFEST_HEADER_V1 => parse_v1(lines)?,
            _ => {
                return Err(IndexError::Corrupt(format!(
                    "not a shard manifest (expected {MANIFEST_HEADER:?}, found {header:?})"
                )))
            }
        };
        validate_shard_list(&manifest.shards)?;
        Ok(manifest)
    }

    /// Writes the manifest to `path` **atomically**: the text is written to
    /// a sibling temp file and renamed into place, so a reader (or a crash)
    /// sees either the old manifest or the new one, never a torn write.
    /// The rename is the delta-commit protocol's commit point.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), IndexError> {
        let path = path.as_ref();
        let tmp = sibling_tmp_path(path);
        fs::write(&tmp, self.render())?;
        if let Err(e) = fs::rename(&tmp, path) {
            let _ = fs::remove_file(&tmp);
            return Err(IndexError::Io(e));
        }
        Ok(())
    }

    /// Reads and parses a manifest from `path`, resolving relative shard
    /// (and corpus-directory) paths against the manifest's own directory.
    pub fn load(path: impl AsRef<Path>) -> Result<ShardManifest, IndexError> {
        let path = path.as_ref();
        let text = fs::read_to_string(path)?;
        let mut manifest = ShardManifest::parse(&text)?;
        if let Some(dir) = path.parent() {
            manifest.resolve_paths(dir);
        }
        Ok(manifest)
    }

    /// Resolves relative shard and corpus-directory paths against `dir`.
    pub fn resolve_paths(&mut self, dir: &Path) {
        for shard in &mut self.shards {
            if shard.path.is_relative() {
                shard.path = dir.join(&shard.path);
            }
        }
        if let Some(corpus) = &self.corpus_dir {
            if corpus.is_relative() {
                self.corpus_dir = Some(dir.join(corpus));
            }
        }
    }

    /// Total documents across all shards (including tombstoned copies).
    pub fn doc_count(&self) -> u64 {
        self.shards.iter().map(|s| u64::from(s.doc_count)).sum()
    }

    /// Live documents: the document table's length when present, otherwise
    /// every document (nothing can be tombstoned without a table).
    pub fn live_doc_count(&self) -> u64 {
        if self.docs.is_empty() && self.tombstones.is_empty() {
            self.doc_count()
        } else {
            self.docs.len() as u64
        }
    }

    /// The global [`DocId`] bases of the shards, in shard order — the
    /// offsets a gather stage adds to shard-local document ids.
    pub fn doc_bases(&self) -> Vec<DocId> {
        self.shards.iter().map(|s| DocId(s.doc_base)).collect()
    }

    /// The query-time view of each shard (in shard order): tombstoned local
    /// ids and the local→global renumbering table. See [`ShardView`].
    pub fn shard_views(&self) -> Vec<ShardView> {
        let has_table = !self.docs.is_empty();
        self.shards
            .iter()
            .map(|entry| {
                let mut tombstones: Vec<u32> = self
                    .tombstones
                    .iter()
                    .filter(|t| t.shard == entry.id)
                    .map(|t| t.local)
                    .collect();
                let doc_map = if has_table {
                    let mut table = vec![DEAD_DOC; entry.doc_count as usize];
                    for (global, doc) in self.docs.iter().enumerate() {
                        if doc.shard == entry.id {
                            if let Some(slot) = table.get_mut(doc.local as usize) {
                                *slot = u32::try_from(global).unwrap_or(DEAD_DOC);
                            }
                        }
                    }
                    // Locals absent from the table are dead even without an
                    // explicit tombstone line.
                    for (local, slot) in table.iter().enumerate() {
                        if *slot == DEAD_DOC {
                            tombstones.push(u32::try_from(local).unwrap_or(DEAD_DOC));
                        }
                    }
                    Some(table)
                } else {
                    None
                };
                tombstones.sort_unstable();
                tombstones.dedup();
                ShardView { id: entry.id, doc_base: entry.doc_base, tombstones, doc_map }
            })
            .collect()
    }
}

/// `"<name>.tmp"` next to `path` — same filesystem, so the rename in
/// [`ShardManifest::save`] is atomic.
pub(crate) fn sibling_tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Duplicate-id and range validation shared by both parse paths — the typed
/// errors name the offending entries.
fn validate_shard_list(shards: &[ShardEntry]) -> Result<(), IndexError> {
    if shards.is_empty() {
        return Err(IndexError::Corrupt("shard manifest lists no shards".into()));
    }
    for (i, s) in shards.iter().enumerate() {
        if let Some(first) = shards[..i].iter().find(|p| p.id == s.id) {
            return Err(IndexError::DuplicateShardId {
                id: s.id,
                first: first.path.display().to_string(),
                second: s.path.display().to_string(),
            });
        }
    }
    let mut expected_base = 0u32;
    for s in shards {
        if s.doc_base != expected_base {
            return Err(IndexError::ShardRange {
                shard: s.path.display().to_string(),
                expected_base,
                found_base: s.doc_base,
            });
        }
        if s.doc_count == 0 {
            return Err(IndexError::Corrupt(format!(
                "shard {} covers no documents",
                s.path.display()
            )));
        }
        expected_base = expected_base.saturating_add(s.doc_count);
    }
    Ok(())
}

fn parse_count(line: &str, prefix: &str) -> Result<usize, IndexError> {
    line.strip_prefix(prefix)
        .and_then(|n| n.trim().parse().ok())
        .ok_or_else(|| IndexError::Corrupt(format!("bad count line: {line:?}")))
}

fn parse_v1<'a>(lines: impl Iterator<Item = &'a str>) -> Result<ShardManifest, IndexError> {
    let mut lines = lines;
    let count_line = lines
        .next()
        .ok_or_else(|| IndexError::Corrupt("shard manifest missing shard count".into()))?;
    let declared = parse_count(count_line, "shards ")?;
    let mut shards = Vec::with_capacity(declared);
    for line in lines {
        let body = line
            .strip_prefix("shard ")
            .ok_or_else(|| IndexError::Corrupt(format!("unexpected manifest line: {line:?}")))?;
        let fields: Vec<&str> = body.splitn(6, '\t').collect();
        if fields.len() != 6 {
            return Err(IndexError::Corrupt(format!(
                "shard line has {} fields, expected 6: {line:?}",
                fields.len()
            )));
        }
        let num = |i: usize| parse_num(fields[i], line);
        shards.push(ShardEntry {
            id: shards.len() as u64,
            kind: ShardKind::Base,
            born: 0,
            doc_base: u32::try_from(num(0)?).unwrap_or(u32::MAX),
            doc_count: u32::try_from(num(1)?).unwrap_or(u32::MAX),
            raw_bytes: num(2)?,
            total_nodes: num(3)?,
            distinct_terms: num(4)?,
            path: PathBuf::from(fields[5]),
        });
    }
    if shards.len() != declared {
        return Err(IndexError::Corrupt(format!(
            "manifest declares {declared} shards but lists {}",
            shards.len()
        )));
    }
    Ok(ShardManifest { shards, ..ShardManifest::default() })
}

fn parse_num(field: &str, line: &str) -> Result<u64, IndexError> {
    field
        .trim()
        .parse()
        .map_err(|_| IndexError::Corrupt(format!("bad number {field:?} in {line:?}")))
}

fn parse_v2<'a>(lines: impl Iterator<Item = &'a str>) -> Result<ShardManifest, IndexError> {
    let mut manifest = ShardManifest::default();
    let mut declared_shards: Option<usize> = None;
    let mut declared_docs: Option<usize> = None;
    let mut declared_tombstones: Option<usize> = None;
    for line in lines {
        if let Some(rest) = line.strip_prefix("epoch ") {
            manifest.epoch = parse_num(rest, line)?;
        } else if let Some(rest) = line.strip_prefix("committed-ms ") {
            manifest.committed_ms = parse_num(rest, line)?;
        } else if let Some(rest) = line.strip_prefix("options ") {
            parse_options(rest, &mut manifest.options);
        } else if let Some(rest) = line.strip_prefix("corpus ") {
            manifest.corpus_dir = Some(PathBuf::from(rest.trim()));
        } else if line.starts_with("shards ") {
            declared_shards = Some(parse_count(line, "shards ")?);
        } else if line.starts_with("docs ") {
            declared_docs = Some(parse_count(line, "docs ")?);
        } else if line.starts_with("tombstones ") {
            declared_tombstones = Some(parse_count(line, "tombstones ")?);
        } else if let Some(body) = line.strip_prefix("shard ") {
            let fields: Vec<&str> = body.splitn(9, '\t').collect();
            if fields.len() != 9 {
                return Err(IndexError::Corrupt(format!(
                    "shard line has {} fields, expected 9: {line:?}",
                    fields.len()
                )));
            }
            let num = |i: usize| parse_num(fields[i], line);
            let kind = ShardKind::parse(fields[1].trim()).ok_or_else(|| {
                IndexError::Corrupt(format!("unknown shard kind {:?} in {line:?}", fields[1]))
            })?;
            manifest.shards.push(ShardEntry {
                id: num(0)?,
                kind,
                born: num(2)?,
                doc_base: u32::try_from(num(3)?).unwrap_or(u32::MAX),
                doc_count: u32::try_from(num(4)?).unwrap_or(u32::MAX),
                raw_bytes: num(5)?,
                total_nodes: num(6)?,
                distinct_terms: num(7)?,
                path: PathBuf::from(fields[8]),
            });
        } else if let Some(body) = line.strip_prefix("doc ") {
            let fields: Vec<&str> = body.splitn(5, '\t').collect();
            if fields.len() != 5 {
                return Err(IndexError::Corrupt(format!(
                    "doc line has {} fields, expected 5: {line:?}",
                    fields.len()
                )));
            }
            let num = |i: usize| parse_num(fields[i], line);
            manifest.docs.push(DocEntry {
                shard: num(0)?,
                local: u32::try_from(num(1)?).unwrap_or(u32::MAX),
                hash: num(2)?,
                mtime_ms: num(3)?,
                name: fields[4].to_string(),
            });
        } else if let Some(body) = line.strip_prefix("tombstone ") {
            let fields: Vec<&str> = body.splitn(3, '\t').collect();
            if fields.len() != 3 {
                return Err(IndexError::Corrupt(format!(
                    "tombstone line has {} fields, expected 3: {line:?}",
                    fields.len()
                )));
            }
            let num = |i: usize| parse_num(fields[i], line);
            manifest.tombstones.push(Tombstone {
                shard: num(0)?,
                local: u32::try_from(num(1)?).unwrap_or(u32::MAX),
                name: fields[2].to_string(),
            });
        } else {
            return Err(IndexError::Corrupt(format!("unexpected manifest line: {line:?}")));
        }
    }
    for (label, declared, found) in [
        ("shards", declared_shards, manifest.shards.len()),
        ("docs", declared_docs, manifest.docs.len()),
        ("tombstones", declared_tombstones, manifest.tombstones.len()),
    ] {
        if let Some(declared) = declared {
            if declared != found {
                return Err(IndexError::Corrupt(format!(
                    "manifest declares {declared} {label} but lists {found}"
                )));
            }
        }
    }
    Ok(manifest)
}

/// Parses the `options` line's `key=value` list. Unknown keys are ignored
/// and missing keys keep their defaults, so the line can grow fields.
fn parse_options(rest: &str, options: &mut IndexOptions) {
    for pair in rest.split_whitespace() {
        let Some((key, value)) = pair.split_once('=') else {
            continue;
        };
        match key {
            "remove_stopwords" => options.analyzer.remove_stopwords = value == "1",
            "stem" => options.analyzer.stem = value == "1",
            "min_term_len" => {
                if let Ok(v) = value.parse() {
                    options.analyzer.min_term_len = v;
                }
            }
            "attrs_as_elements" => options.xml_attributes_as_elements = value == "1",
            "element_names" => options.index_element_names = value == "1",
            _ => {}
        }
    }
}

/// Splits a corpus into at most `shards` contiguous document ranges, in
/// global document order. Every returned corpus is non-empty: when the
/// corpus has fewer documents than `shards`, one single-document corpus is
/// returned per document. Sizes differ by at most one document (the first
/// `len % shards` ranges take the extra), so shard `i` starts at the global
/// document id equal to the sum of the earlier range sizes.
pub fn split_corpus(corpus: &Corpus, shards: usize) -> Vec<Corpus> {
    let docs = corpus.docs();
    let shards = shards.clamp(1, docs.len().max(1));
    let base_size = docs.len() / shards;
    let remainder = docs.len() % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0usize;
    for i in 0..shards {
        let size = base_size + usize::from(i < remainder);
        let slice = &docs[start..start + size];
        let mut part = Corpus::new();
        for d in slice {
            part.push(d.name.clone(), d.xml.clone());
        }
        out.push(part);
        start += size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::IndexOptions;

    fn corpus(n: usize) -> Corpus {
        let mut c = Corpus::new();
        for i in 0..n {
            c.push(format!("doc{i}"), format!("<r><a>term{i}</a></r>"));
        }
        c
    }

    #[test]
    fn split_is_contiguous_and_balanced() {
        let c = corpus(7);
        let parts = split_corpus(&c, 3);
        assert_eq!(parts.len(), 3);
        let sizes: Vec<usize> = parts.iter().map(Corpus::len).collect();
        assert_eq!(sizes, vec![3, 2, 2]);
        // Contiguity: concatenating the parts reproduces the corpus order.
        let names: Vec<&str> =
            parts.iter().flat_map(|p| p.docs().iter().map(|d| d.name.as_str())).collect();
        let expected: Vec<String> = (0..7).map(|i| format!("doc{i}")).collect();
        assert_eq!(names, expected.iter().map(String::as_str).collect::<Vec<_>>());
    }

    #[test]
    fn split_never_produces_empty_shards() {
        let c = corpus(2);
        let parts = split_corpus(&c, 5);
        assert_eq!(parts.len(), 2, "more shards than documents collapses to len");
        assert!(parts.iter().all(|p| !p.is_empty()));
        assert_eq!(split_corpus(&c, 0).len(), 1, "zero shards means one");
    }

    #[test]
    fn manifest_round_trips_through_text() {
        let c = corpus(5);
        let parts = split_corpus(&c, 2);
        let mut manifest = ShardManifest {
            epoch: 3,
            committed_ms: 17,
            corpus_dir: Some(PathBuf::from("corpus")),
            ..ShardManifest::default()
        };
        let mut base = 0u32;
        for (i, part) in parts.iter().enumerate() {
            let ix = GksIndex::build(part, IndexOptions::default()).unwrap();
            let mut entry = ShardManifest::entry_for(&ix, format!("shard-{i}.gksix"), base);
            entry.id = i as u64;
            manifest.shards.push(entry);
            for (local, doc) in part.docs().iter().enumerate() {
                manifest.docs.push(DocEntry {
                    shard: i as u64,
                    local: local as u32,
                    hash: 42 + local as u64,
                    mtime_ms: 7,
                    name: doc.name.clone(),
                });
            }
            base += part.len() as u32;
        }
        manifest.tombstones.push(Tombstone { shard: 0, local: 1, name: "doc1".into() });
        assert_eq!(manifest.doc_count(), 5);
        assert_eq!(manifest.doc_bases(), vec![DocId(0), DocId(3)]);
        let text = manifest.render();
        assert!(text.starts_with(MANIFEST_HEADER));
        let parsed = ShardManifest::parse(&text).unwrap();
        assert_eq!(parsed, manifest);
    }

    #[test]
    fn v1_manifests_still_parse() {
        let v1 = format!(
            "{MANIFEST_HEADER_V1}\nshards 2\nshard 0\t2\t9\t9\t9\ta.gksix\n\
             shard 2\t3\t9\t9\t9\tb.gksix\n"
        );
        let parsed = ShardManifest::parse(&v1).unwrap();
        assert_eq!(parsed.epoch, 0);
        assert_eq!(parsed.shards.len(), 2);
        assert_eq!(parsed.shards[0].id, 0);
        assert_eq!(parsed.shards[1].id, 1);
        assert_eq!(parsed.shards[1].kind, ShardKind::Base);
        assert_eq!(parsed.shards[1].doc_base, 2);
        assert!(parsed.docs.is_empty());
        // A v1 manifest has no doc table: views carry no map, no tombstones.
        let views = parsed.shard_views();
        assert!(views.iter().all(|v| v.doc_map.is_none() && v.tombstones.is_empty()));
    }

    #[test]
    fn malformed_manifests_are_rejected() {
        assert!(ShardManifest::parse("").is_err(), "empty");
        assert!(ShardManifest::parse("nope\nshards 0\n").is_err(), "bad header");
        assert!(
            ShardManifest::parse(&format!("{MANIFEST_HEADER_V1}\nshards 2\n")).is_err(),
            "count mismatch"
        );
        let gap = format!(
            "{MANIFEST_HEADER_V1}\nshards 2\nshard 0\t2\t9\t9\t9\ta.gksix\n\
             shard 5\t2\t9\t9\t9\tb.gksix\n"
        );
        assert!(ShardManifest::parse(&gap).is_err(), "doc_base gap");
        let empty_shard = format!("{MANIFEST_HEADER_V1}\nshards 1\nshard 0\t0\t9\t9\t9\ta.gksix\n");
        assert!(ShardManifest::parse(&empty_shard).is_err(), "zero-doc shard");
    }

    #[test]
    fn duplicate_ids_and_bad_ranges_are_typed_errors() {
        let dup = format!(
            "{MANIFEST_HEADER}\nshards 2\n\
             shard 7\tbase\t0\t0\t2\t9\t9\t9\ta.gksix\n\
             shard 7\tbase\t0\t2\t2\t9\t9\t9\tb.gksix\n"
        );
        match ShardManifest::parse(&dup) {
            Err(IndexError::DuplicateShardId { id: 7, first, second }) => {
                assert_eq!(first, "a.gksix");
                assert_eq!(second, "b.gksix");
            }
            other => panic!("expected DuplicateShardId, got {other:?}"),
        }
        let overlap = format!(
            "{MANIFEST_HEADER}\nshards 2\n\
             shard 0\tbase\t0\t0\t2\t9\t9\t9\ta.gksix\n\
             shard 1\tbase\t0\t1\t2\t9\t9\t9\tb.gksix\n"
        );
        match ShardManifest::parse(&overlap) {
            Err(IndexError::ShardRange { shard, expected_base: 2, found_base: 1 }) => {
                assert_eq!(shard, "b.gksix");
            }
            other => panic!("expected ShardRange, got {other:?}"),
        }
        let gap = format!(
            "{MANIFEST_HEADER}\nshards 2\n\
             shard 0\tbase\t0\t0\t2\t9\t9\t9\ta.gksix\n\
             shard 1\tbase\t0\t5\t2\t9\t9\t9\tb.gksix\n"
        );
        assert!(matches!(
            ShardManifest::parse(&gap),
            Err(IndexError::ShardRange { expected_base: 2, found_base: 5, .. })
        ));
    }

    #[test]
    fn shard_views_mask_and_renumber() {
        // Two shards of 2 docs each; doc1 (shard 0, local 1) was deleted
        // and doc3 (shard 1, local 1) was superseded by a delta — here we
        // just drop it from the table to exercise the implicit-dead path.
        let text = format!(
            "{MANIFEST_HEADER}\nepoch 2\nshards 2\n\
             shard 0\tbase\t0\t0\t2\t9\t9\t9\ta.gksix\n\
             shard 1\tbase\t0\t2\t2\t9\t9\t9\tb.gksix\n\
             docs 2\n\
             doc 0\t0\t11\t0\tdoc0\n\
             doc 1\t0\t13\t0\tdoc2\n\
             tombstones 1\n\
             tombstone 0\t1\tdoc1\n"
        );
        let manifest = ShardManifest::parse(&text).unwrap();
        assert_eq!(manifest.live_doc_count(), 2);
        let views = manifest.shard_views();
        assert_eq!(views[0].tombstones, vec![1]);
        assert_eq!(views[0].doc_map, Some(vec![0, DEAD_DOC]));
        // Shard 1 local 1 is absent from the table → implicitly dead.
        assert_eq!(views[1].tombstones, vec![1]);
        assert_eq!(views[1].doc_map, Some(vec![1, DEAD_DOC]));
    }

    #[test]
    fn load_resolves_relative_paths() {
        let dir = std::env::temp_dir().join(format!("gks-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = ShardManifest {
            corpus_dir: Some(PathBuf::from("xmls")),
            shards: vec![ShardEntry {
                id: 0,
                kind: ShardKind::Base,
                born: 0,
                path: PathBuf::from("s0.gksix"),
                doc_base: 0,
                doc_count: 1,
                raw_bytes: 4,
                total_nodes: 2,
                distinct_terms: 1,
            }],
            ..ShardManifest::default()
        };
        let path = dir.join("corpus.shards");
        manifest.save(&path).unwrap();
        let loaded = ShardManifest::load(&path).unwrap();
        assert_eq!(loaded.shards[0].path, dir.join("s0.gksix"));
        assert_eq!(loaded.corpus_dir, Some(dir.join("xmls")));
        std::fs::remove_dir_all(&dir).ok();
    }
}
