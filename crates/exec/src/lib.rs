//! # gks-exec — persistent worker pools and ordered scatter/gather
//!
//! Every fan-out site in the workspace used to pay a thread spawn per unit
//! of work: the sharded `/search` scatter spawned one thread per shard per
//! request, and the parallel index builder spawned one thread per chunk per
//! build. This crate replaces both with a single primitive: a
//! [`WorkerPool`] of named threads spawned **once**, fed through a
//! `Mutex`+`Condvar` job deque (bounded by construction — producers submit
//! exactly as many jobs as they wait for), plus a [`Scatter`] collector
//! that returns results **in submission order** with panics captured as
//! `Err` values instead of poisoned joins.
//!
//! Design rules, enforced by construction:
//!
//! * a worker never holds the queue lock while running a job;
//! * a scatter slot is **always** filled — by the job's result, by the
//!   captured panic message, or (if the pool shuts down before the job
//!   runs) by a drop guard — so [`Scatter::wait`] cannot hang;
//! * waiting on a scatter from *inside* the same pool is a deadlock by
//!   design and must not be done (documented on [`Scatter::wait`]).
//!
//! The locks register with the `gks-trace` lock-order registry under
//! `exec/lib.state` and `exec/lib.slots`, and the crate is covered by
//! `cargo xtask analyze` (lock-order, guard-across-spawn/blocking).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

use gks_trace::lockorder::track;

/// A unit of work accepted by [`WorkerPool::submit`].
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Threads spawned by every [`WorkerPool`] over the process lifetime.
/// Tests use this to prove a request path spawns nothing: the counter must
/// not move while requests are in flight.
static THREADS_SPAWNED: AtomicU64 = AtomicU64::new(0);

/// Total worker threads spawned process-wide by [`WorkerPool`]s. A steady
/// value across a burst of requests proves the fan-out path is spawn-free.
pub fn threads_spawned_total() -> u64 {
    THREADS_SPAWNED.load(Ordering::Relaxed)
}

struct PoolState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    available: Condvar,
}

/// A fixed set of named worker threads draining a shared job deque. Spawned
/// once at construction; [`Drop`] shuts the queue, discards jobs that never
/// started (their [`Scatter`] slots resolve to `Err`), and joins every
/// thread.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("threads", &self.threads.len()).finish()
    }
}

impl WorkerPool {
    /// Spawns `threads` workers (clamped to at least 1) named
    /// `<name>-<i>`. Fails only if the OS refuses a thread; already-spawned
    /// workers are shut down and joined before the error returns.
    pub fn new(name: &str, threads: usize) -> std::io::Result<WorkerPool> {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState { jobs: VecDeque::new(), shutdown: false }),
            available: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(threads.max(1));
        for i in 0..threads.max(1) {
            let worker_shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("{name}-{i}"))
                .spawn(move || worker_loop(&worker_shared));
            match spawned {
                Ok(handle) => {
                    THREADS_SPAWNED.fetch_add(1, Ordering::Relaxed);
                    handles.push(handle);
                }
                Err(e) => {
                    let pool = WorkerPool { shared, threads: handles };
                    drop(pool); // joins the workers that did start
                    return Err(e);
                }
            }
        }
        Ok(WorkerPool { shared, threads: handles })
    }

    /// Enqueues one job. Returns `false` (dropping the job, which resolves
    /// any scatter slot it carries to `Err`) once the pool is shut down.
    pub fn submit(&self, job: Job) -> bool {
        {
            let mut state = track(
                "exec/lib.state",
                self.shared.state.lock().unwrap_or_else(PoisonError::into_inner),
            );
            if state.shutdown {
                return false; // `job` drops here; its slot guard fires
            }
            state.jobs.push_back(job);
        }
        self.shared.available.notify_one();
        true
    }

    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.threads.len()
    }

    /// Jobs queued and not yet picked up by a worker.
    pub fn queued(&self) -> usize {
        let state = track(
            "exec/lib.state",
            self.shared.state.lock().unwrap_or_else(PoisonError::into_inner),
        );
        state.jobs.len()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let abandoned: Vec<Job> = {
            let mut state = track(
                "exec/lib.state",
                self.shared.state.lock().unwrap_or_else(PoisonError::into_inner),
            );
            state.shutdown = true;
            state.jobs.drain(..).collect()
        };
        // Dropped outside the queue lock: a job's drop guard takes the
        // scatter lock, and holding both would put an edge in the lock
        // graph for no reason.
        drop(abandoned);
        self.shared.available.notify_all();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One worker: pop under the lock, run outside it. A panicking job is
/// caught so the worker survives; [`Scatter`] jobs convert the payload to
/// an `Err` before it ever reaches here.
fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = track(
                "exec/lib.state",
                shared.state.lock().unwrap_or_else(PoisonError::into_inner),
            );
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break Some(job);
                }
                if state.shutdown {
                    break None;
                }
                state = state.wait(&shared.available);
            }
        };
        match job {
            Some(job) => {
                // The guard died at the block close above: the job runs
                // with no lock held, so long tasks never serialize the pool.
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
            None => return,
        }
    }
}

struct ScatterState<T> {
    slots: Vec<Option<Result<T, String>>>,
    filled: usize,
}

struct ScatterShared<T> {
    slots: Mutex<ScatterState<T>>,
    done: Condvar,
}

/// An ordered result collector for a fan-out: create one sized to the task
/// count, wrap each task with [`Scatter::task`], submit the wrapped jobs to
/// any [`WorkerPool`] (or several), then [`Scatter::wait`] for the results
/// in submission order. Byte-for-byte a drop-in for the
/// `thread::scope`-and-join pattern, minus the spawns.
pub struct Scatter<T> {
    shared: Arc<ScatterShared<T>>,
    expected: usize,
}

impl<T> std::fmt::Debug for Scatter<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scatter").field("expected", &self.expected).finish()
    }
}

/// Fills one scatter slot exactly once, even if the wrapped job is dropped
/// without running (pool shutdown, submit after shutdown).
struct SlotGuard<T> {
    shared: Arc<ScatterShared<T>>,
    index: usize,
    armed: bool,
}

impl<T> SlotGuard<T> {
    fn fill(&mut self, result: Result<T, String>) {
        if !self.armed {
            return;
        }
        self.armed = false;
        {
            let mut state = track(
                "exec/lib.slots",
                self.shared.slots.lock().unwrap_or_else(PoisonError::into_inner),
            );
            if let Some(slot) = state.slots.get_mut(self.index) {
                if slot.is_none() {
                    *slot = Some(result);
                    state.filled += 1;
                }
            }
        }
        self.shared.done.notify_all();
    }
}

impl<T> Drop for SlotGuard<T> {
    fn drop(&mut self) {
        self.fill(Err("task dropped before running".to_string()));
    }
}

impl<T: Send + 'static> Scatter<T> {
    /// A collector expecting exactly `expected` results.
    pub fn new(expected: usize) -> Scatter<T> {
        Scatter {
            shared: Arc::new(ScatterShared {
                slots: Mutex::new(ScatterState {
                    slots: (0..expected).map(|_| None).collect(),
                    filled: 0,
                }),
                done: Condvar::new(),
            }),
            expected,
        }
    }

    /// Wraps task `index` as a submittable [`Job`]. The slot resolves to
    /// `Ok` with the task's output, or `Err` with the panic message if it
    /// panicked, or `Err` if the job was dropped without running.
    pub fn task<F>(&self, index: usize, f: F) -> Job
    where
        F: FnOnce() -> T + Send + 'static,
    {
        let mut guard = SlotGuard { shared: Arc::clone(&self.shared), index, armed: true };
        Box::new(move || {
            let outcome = catch_unwind(AssertUnwindSafe(f)).map_err(|p| panic_message(&*p));
            guard.fill(outcome);
        })
    }

    /// Blocks until every slot is filled and returns the results in
    /// submission order.
    ///
    /// Must be called from **outside** the pool(s) the tasks were submitted
    /// to: a pool thread waiting on work queued behind it deadlocks.
    pub fn wait(self) -> Vec<Result<T, String>> {
        let mut state = track(
            "exec/lib.slots",
            self.shared.slots.lock().unwrap_or_else(PoisonError::into_inner),
        );
        while state.filled < self.expected {
            state = state.wait(&self.shared.done);
        }
        state
            .slots
            .iter_mut()
            .map(|slot| slot.take().unwrap_or_else(|| Err("slot never filled".to_string())))
            .collect()
    }
}

/// Best-effort text of a panic payload (`&str` and `String` payloads cover
/// every `panic!` in this workspace).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "task panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scatter_returns_results_in_submission_order() {
        let pool = WorkerPool::new("t-order", 4).unwrap();
        let scatter = Scatter::new(16);
        for i in 0..16usize {
            // Reverse-ish completion times: later tasks finish first.
            let delay = (16 - i) % 5;
            pool.submit(scatter.task(i, move || {
                std::thread::sleep(std::time::Duration::from_millis(delay as u64));
                i * 10
            }));
        }
        let results: Vec<usize> = scatter.wait().into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(results, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn panics_are_captured_and_workers_survive() {
        let pool = WorkerPool::new("t-panic", 2).unwrap();
        let scatter = Scatter::new(3);
        pool.submit(scatter.task(0, || 1u32));
        pool.submit(scatter.task(1, || panic!("boom {}", 42)));
        pool.submit(scatter.task(2, || 3u32));
        let results = scatter.wait();
        assert_eq!(results[0], Ok(1));
        assert_eq!(results[1], Err("boom 42".to_string()));
        assert_eq!(results[2], Ok(3));
        // The pool still works after a panic.
        let again = Scatter::new(1);
        pool.submit(again.task(0, || 7u32));
        assert_eq!(again.wait(), vec![Ok(7)]);
    }

    #[test]
    fn shutdown_resolves_unrun_jobs_to_err() {
        let pool = WorkerPool::new("t-shutdown", 1).unwrap();
        drop(pool);
        let pool = WorkerPool::new("t-shutdown2", 1).unwrap();
        let gate = Arc::new(Mutex::new(()));
        let held = gate.lock().unwrap();
        let scatter = Scatter::new(2);
        {
            let gate = Arc::clone(&gate);
            pool.submit(scatter.task(0, move || {
                drop(gate.lock().unwrap_or_else(PoisonError::into_inner));
                1u32
            }));
        }
        // Give the single worker time to start blocking on the gate, then
        // shut the pool down with the second job still queued.
        std::thread::sleep(std::time::Duration::from_millis(20));
        pool.submit(scatter.task(1, || 2u32));
        drop(held);
        drop(pool);
        let results = scatter.wait();
        assert_eq!(results[0], Ok(1));
        // Slot 1 either ran (the worker got to it before shutdown drained
        // the queue) or was dropped; both resolve — wait() cannot hang.
        assert!(results[1] == Ok(2) || results[1].is_err(), "{results:?}");
    }

    #[test]
    fn submit_after_shutdown_reports_false_and_resolves_slot() {
        let pool = WorkerPool::new("t-late", 1).unwrap();
        let shared = Arc::clone(&pool.shared);
        drop(pool);
        let zombie = WorkerPool { shared, threads: Vec::new() };
        let scatter = Scatter::new(1);
        assert!(!zombie.submit(scatter.task(0, || 1u32)));
        assert!(scatter.wait()[0].is_err());
    }

    #[test]
    fn pool_reuse_spawns_nothing() {
        let pool = WorkerPool::new("t-reuse", 2).unwrap();
        let warm = Scatter::new(2);
        pool.submit(warm.task(0, || 0u32));
        pool.submit(warm.task(1, || 0u32));
        warm.wait();
        let before = threads_spawned_total();
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let scatter = Scatter::new(2);
            for i in 0..2 {
                let hits = Arc::clone(&hits);
                pool.submit(scatter.task(i, move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                }));
            }
            scatter.wait();
        }
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(threads_spawned_total(), before, "reuse must not spawn");
    }
}
