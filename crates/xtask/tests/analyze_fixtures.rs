//! End-to-end proof for every analyze rule: each one fires on its
//! fixture crate at the exact expected line, and the clean control stays
//! silent. Fixtures live under `tests/fixtures/crates/` in workspace
//! layout so [`analyze_tree`] walks them exactly as it walks the real
//! tree; they are never compiled.

use std::path::PathBuf;

use xtask::analyze::{analyze_tree, find_cycles, CrateSpec};

fn fixtures_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn spec(name: &'static str) -> CrateSpec {
    CrateSpec {
        name,
        lock_order: true,
        guard_blocking: true,
        guard_spawn: true,
        unbounded_channel: true,
        reactor_nonblocking: true,
    }
}

#[test]
fn deadcycle_fixture_reports_the_ab_ba_cycle() {
    let analysis = analyze_tree(&fixtures_root(), &[spec("deadcycle")]);
    assert_eq!(analysis.locks.len(), 2, "ALPHA and BETA must both be discovered");
    assert_eq!(analysis.unresolved, 0);

    let cycles: Vec<_> = analysis.violations.iter().filter(|v| v.rule == "lock-order").collect();
    assert_eq!(cycles.len(), 1, "exactly one cycle: {:?}", analysis.violations);
    let v = cycles[0];
    assert!(v.path.ends_with("deadcycle/src/lib.rs"), "got {}", v.path);
    // The canonical cycle starts at ALPHA, so the anchoring witness is the
    // ALPHA->BETA edge: BETA's acquisition inside `forward`.
    assert_eq!(v.line, 15, "witness must be BETA's acquisition in forward(): {v:?}");
    assert!(v.message.contains("deadcycle/lib.ALPHA"), "got {}", v.message);
    assert!(v.message.contains("deadcycle/lib.BETA"), "got {}", v.message);

    // Both directed edges are on the graph, each with a concrete witness.
    assert_eq!(analysis.edges.len(), 2, "edges: {:?}", analysis.edges);
    assert!(analysis.violations.iter().all(|v| v.rule == "lock-order"));
}

#[test]
fn guardio_fixture_fires_each_guard_rule_at_the_exact_line() {
    let analysis = analyze_tree(&fixtures_root(), &[spec("guardio")]);
    assert_eq!(analysis.unresolved, 0);

    let mut hits: Vec<(&str, usize)> =
        analysis.violations.iter().map(|v| (v.rule, v.line)).collect();
    hits.sort_unstable();
    assert_eq!(
        hits,
        vec![
            ("no-guard-across-blocking", 16),
            ("no-guard-across-spawn", 22),
            ("no-unbounded-channel", 28),
        ],
        "violations: {:#?}",
        analysis.violations
    );
    for v in &analysis.violations {
        assert!(v.path.ends_with("guardio/src/lib.rs"), "got {}", v.path);
    }
    let io = analysis
        .violations
        .iter()
        .find(|v| v.rule == "no-guard-across-blocking")
        .expect("blocking violation present");
    assert!(io.message.contains("guardio/lib.LOG"), "got {}", io.message);
}

#[test]
fn reactorblock_fixture_flags_blocking_only_inside_the_reactor_file() {
    let analysis = analyze_tree(&fixtures_root(), &[spec("reactorblock")]);
    let mut hits: Vec<(&str, usize)> =
        analysis.violations.iter().map(|v| (v.rule, v.line)).collect();
    hits.sort_unstable();
    assert_eq!(
        hits,
        vec![
            ("no-blocking-in-reactor", 9),
            ("no-blocking-in-reactor", 14),
            ("no-blocking-in-reactor", 19),
        ],
        "violations: {:#?}",
        analysis.violations
    );
    for v in &analysis.violations {
        assert!(
            v.path.ends_with("reactorblock/src/reactor.rs"),
            "the rule is file-scoped; lib.rs blocking must not fire: {v:?}"
        );
        assert!(v.message.contains("reactor"), "got {}", v.message);
    }
}

#[test]
fn clean_fixture_is_silent() {
    let analysis = analyze_tree(&fixtures_root(), &[spec("clean")]);
    assert_eq!(analysis.locks.len(), 2, "the control still declares two locks");
    assert_eq!(analysis.unresolved, 0);
    assert!(
        analysis.violations.is_empty(),
        "the control must not fire any rule: {:#?}",
        analysis.violations
    );
    // Consistent ordering produces the FIRST->SECOND edge — and only it.
    assert_eq!(analysis.edges.len(), 1, "edges: {:?}", analysis.edges);
    assert!(find_cycles(
        &analysis
            .edges
            .iter()
            .map(|e| (e.from.clone(), e.to.clone()))
            .collect::<Vec<_>>()
    )
    .is_empty());
}

#[test]
fn firing_and_control_fixtures_do_not_interfere() {
    // All three crates analyzed together: the union of findings is exactly
    // the union of the per-crate findings (crate-local call graphs must not
    // leak across fixture crates).
    let analysis =
        analyze_tree(&fixtures_root(), &[spec("clean"), spec("deadcycle"), spec("guardio")]);
    assert_eq!(analysis.violations.len(), 4, "violations: {:#?}", analysis.violations);
    assert_eq!(analysis.locks.len(), 5);
}
