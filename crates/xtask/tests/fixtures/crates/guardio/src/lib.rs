//! Fixture: one firing example per guard/channel rule — a guard live
//! across file I/O, a guard live across a spawn, and an unbounded
//! channel. Each must be reported at exactly the line asserted by
//! `tests/analyze_fixtures.rs`.
//!
//! This crate is analyzer input only: it is not a workspace member and is
//! never compiled.

use std::io::Write;
use std::sync::{mpsc, Mutex, PoisonError};

static LOG: Mutex<u64> = Mutex::new(0);

pub fn guard_across_io(out: &mut std::fs::File, payload: &[u8]) {
    let mut count = LOG.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = out.write_all(payload);
    *count += 1;
}

pub fn guard_across_spawn() -> std::thread::JoinHandle<()> {
    let count = LOG.lock().unwrap_or_else(PoisonError::into_inner);
    let handle = std::thread::spawn(|| {});
    drop(count);
    handle
}

pub fn unbounded() -> mpsc::Sender<u64> {
    let (tx, rx) = mpsc::channel();
    drop(rx);
    tx
}
