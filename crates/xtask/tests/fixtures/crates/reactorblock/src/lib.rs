//! Fixture crate for the `no-blocking-in-reactor` rule: blocking calls
//! live in `reactor.rs` (all flagged) and in this file (none flagged —
//! the rule is file-scoped, and no guard is live here).
//!
//! Analyzer input only; never compiled.

mod reactor;

pub fn outside_the_reactor_is_fine() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
