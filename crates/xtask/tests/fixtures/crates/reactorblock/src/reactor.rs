//! Fixture: blocking calls inside a reactor file — every one must be
//! reported by `no-blocking-in-reactor` whether or not a guard is live.
//!
//! Analyzer input only; never compiled.

use std::io::Read;

pub fn poll_loop(listener: &std::net::TcpListener) {
    let (stream, _) = listener.accept().unwrap();
    drop(stream);
}

pub fn backoff() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

pub fn drain(stream: &mut std::net::TcpStream) {
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).unwrap();
}
