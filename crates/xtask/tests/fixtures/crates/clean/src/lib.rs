//! Fixture: the silent control. Same shapes as the firing fixtures —
//! two locks, file I/O, a spawn, a channel — but each written the safe
//! way: consistent acquisition order, guard dropped before blocking,
//! bounded channel. `cargo xtask analyze` must stay completely quiet.
//!
//! This crate is analyzer input only: it is not a workspace member and is
//! never compiled.

use std::io::Write;
use std::sync::{mpsc, Mutex, PoisonError};

static FIRST: Mutex<u64> = Mutex::new(0);
static SECOND: Mutex<u64> = Mutex::new(0);

pub fn ordered() -> u64 {
    let a = FIRST.lock().unwrap_or_else(PoisonError::into_inner);
    let b = SECOND.lock().unwrap_or_else(PoisonError::into_inner);
    *a + *b
}

pub fn ordered_again() -> u64 {
    let a = FIRST.lock().unwrap_or_else(PoisonError::into_inner);
    let b = SECOND.lock().unwrap_or_else(PoisonError::into_inner);
    *a * *b
}

pub fn drop_before_io(out: &mut std::fs::File, payload: &[u8]) {
    let mut count = FIRST.lock().unwrap_or_else(PoisonError::into_inner);
    *count += 1;
    drop(count);
    let _ = out.write_all(payload);
}

pub fn scoped_before_spawn() -> std::thread::JoinHandle<()> {
    {
        let mut count = SECOND.lock().unwrap_or_else(PoisonError::into_inner);
        *count += 1;
    }
    std::thread::spawn(|| {})
}

pub fn bounded() -> mpsc::SyncSender<u64> {
    let (tx, rx) = mpsc::sync_channel(8);
    drop(rx);
    tx
}
