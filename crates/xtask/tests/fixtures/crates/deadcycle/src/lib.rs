//! Fixture: two functions acquire the same pair of locks in opposite
//! orders — the canonical AB/BA deadlock. `cargo xtask analyze` must
//! report exactly one `lock-order` cycle over ALPHA and BETA.
//!
//! This crate is analyzer input only: it is not a workspace member and is
//! never compiled.

use std::sync::{Mutex, PoisonError};

static ALPHA: Mutex<u64> = Mutex::new(0);
static BETA: Mutex<u64> = Mutex::new(0);

pub fn forward() -> u64 {
    let a = ALPHA.lock().unwrap_or_else(PoisonError::into_inner);
    let b = BETA.lock().unwrap_or_else(PoisonError::into_inner);
    *a + *b
}

pub fn backward() -> u64 {
    let b = BETA.lock().unwrap_or_else(PoisonError::into_inner);
    let a = ALPHA.lock().unwrap_or_else(PoisonError::into_inner);
    *a - *b
}
