//! Lightweight Rust source scanning: comment/string stripping and
//! `#[cfg(test)]` region tracking, with no parser dependency.
//!
//! The lint rules operate on a per-line "code view" of each file in which
//! comments and string/char literal *contents* are blanked out (replaced by
//! spaces) so that textual patterns like `.unwrap()` only match real code.
//! Doc-comment lines are recorded separately for the `pub-fn-docs` rule.

/// One source line after stripping, plus classification flags.
#[derive(Debug, Clone)]
pub struct Line {
    /// The line with comments and literal contents blanked.
    pub code: String,
    /// The original line, for diagnostics.
    pub raw: String,
    /// True if the raw line is (part of) a doc comment (`///`, `//!`, or a
    /// `#[doc` attribute).
    pub is_doc: bool,
    /// True if the line falls inside a `#[cfg(test)] mod { .. }` region.
    pub in_test_mod: bool,
}

/// Scans a whole file into classified lines.
pub fn scan_file(source: &str) -> Vec<Line> {
    let stripped = strip(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let code_lines: Vec<&str> = stripped.lines().collect();
    let test_flags = test_mod_flags(&code_lines);
    raw_lines
        .iter()
        .enumerate()
        .map(|(i, raw)| {
            let trimmed = raw.trim_start();
            Line {
                code: code_lines.get(i).copied().unwrap_or("").to_string(),
                raw: (*raw).to_string(),
                is_doc: trimmed.starts_with("///")
                    || trimmed.starts_with("//!")
                    || trimmed.starts_with("#[doc")
                    || trimmed.starts_with("#![doc"),
                in_test_mod: test_flags.get(i).copied().unwrap_or(false),
            }
        })
        .collect()
}

/// Replaces comments and the contents of string/char literals with spaces,
/// preserving line structure.
fn strip(source: &str) -> String {
    #[derive(PartialEq)]
    enum State {
        Normal,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut out = String::with_capacity(source.len());
    let chars: Vec<char> = source.chars().collect();
    let mut state = State::Normal;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Normal => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                }
                '"' => {
                    state = State::Str;
                    out.push('"');
                    i += 1;
                }
                'r' if next == Some('"') || (next == Some('#') && is_raw_string(&chars, i)) => {
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    state = State::RawStr(hashes);
                    for _ in i..=j {
                        out.push(' ');
                    }
                    i = j + 1;
                }
                'b' if next == Some('"') => {
                    state = State::Str;
                    out.push(' ');
                    out.push('"');
                    i += 2;
                }
                'b' if next == Some('\'') => {
                    state = State::Char;
                    out.push(' ');
                    out.push('\'');
                    i += 2;
                }
                '\'' => {
                    // Char literal vs lifetime: a literal is `'x'` or `'\..'`;
                    // a lifetime quote is followed by an identifier with no
                    // closing quote right after one char.
                    if next == Some('\\') || (next.is_some() && chars.get(i + 2) == Some(&'\'')) {
                        state = State::Char;
                        out.push('\'');
                        i += 1;
                    } else {
                        out.push('\'');
                        i += 1;
                    }
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Normal;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::Str => match c {
                '\\' => {
                    out.push(' ');
                    match next {
                        // A string line continuation escapes the newline;
                        // keep it so line numbering stays aligned.
                        Some('\n') => {
                            out.push('\n');
                            i += 2;
                        }
                        Some(_) => {
                            out.push(' ');
                            i += 2;
                        }
                        None => i += 1,
                    }
                }
                '"' => {
                    state = State::Normal;
                    out.push('"');
                    i += 1;
                }
                '\n' => {
                    out.push('\n');
                    i += 1;
                }
                _ => {
                    out.push(' ');
                    i += 1;
                }
            },
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    state = State::Normal;
                    for _ in 0..=hashes {
                        out.push(' ');
                    }
                    i += 1 + hashes as usize;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::Char => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                '\'' => {
                    state = State::Normal;
                    out.push('\'');
                    i += 1;
                }
                _ => {
                    out.push(' ');
                    i += 1;
                }
            },
        }
    }
    out
}

/// Whether `r#...` starting at `chars[i]` really opens a raw string (all
/// hashes then a quote) rather than a raw identifier like `r#try`.
fn is_raw_string(chars: &[char], i: usize) -> bool {
    let mut j = i + 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Whether the quote at `chars[i]` is followed by `hashes` `#` characters.
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Marks the lines belonging to `#[cfg(test)] mod .. { .. }` regions by
/// tracking brace depth in the stripped code view.
fn test_mod_flags(code_lines: &[&str]) -> Vec<bool> {
    let mut flags = vec![false; code_lines.len()];
    let mut pending_cfg_test = false;
    // (depth at which the region closes) for each open test module.
    let mut region_close_depth: Option<i64> = None;
    let mut depth: i64 = 0;
    for (i, line) in code_lines.iter().enumerate() {
        let trimmed = line.trim();
        if region_close_depth.is_none() && trimmed.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        }
        let opens_mod = pending_cfg_test && trimmed.starts_with("mod ");
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if opens_mod && region_close_depth.is_none() {
                        region_close_depth = Some(depth - 1);
                        pending_cfg_test = false;
                    }
                }
                '}' => {
                    depth -= 1;
                    if region_close_depth == Some(depth) {
                        region_close_depth = None;
                        flags[i] = true; // the closing line itself
                    }
                }
                _ => {}
            }
        }
        if region_close_depth.is_some() {
            flags[i] = true;
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings() {
        let src = "let x = \"panic!\"; // panic!\nlet y = 1; /* .unwrap() */\n";
        let lines = scan_file(src);
        assert!(!lines[0].code.contains("panic!"));
        assert!(!lines[1].code.contains(".unwrap()"));
        assert!(lines[0].code.contains("let x"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(s: &'a str) -> char { '\"' }\nlet q = b'\\'';\nlet p = 'x';\n";
        let lines = scan_file(src);
        assert!(lines[0].code.contains("fn f<'a>(s: &'a str)"));
        assert!(!lines[0].code.contains('"'), "{}", lines[0].code);
        assert!(lines[2].code.contains("let p ="));
    }

    #[test]
    fn raw_strings() {
        let src = "let s = r#\"has .unwrap() inside\"#;\nlet t = r\"also .expect(\";\n.unwrap()\n";
        let lines = scan_file(src);
        assert!(!lines[0].code.contains(".unwrap"));
        assert!(!lines[1].code.contains(".expect"));
        assert!(lines[2].code.contains(".unwrap()"));
    }

    #[test]
    fn test_mod_regions() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn b() { y.unwrap(); }\n}\nfn c() {}\n";
        let lines = scan_file(src);
        assert!(!lines[0].in_test_mod);
        assert!(lines[3].in_test_mod);
        assert!(lines[4].in_test_mod);
        assert!(!lines[5].in_test_mod);
    }

    #[test]
    fn string_line_continuation_keeps_line_count() {
        let src = "let s = \"first \\\n    second\";\n/// doc\npub fn f() {}\n";
        let lines = scan_file(src);
        assert_eq!(lines.len(), 4, "escaped newline must not merge lines");
        assert!(lines[2].is_doc);
        assert!(lines[3].code.contains("pub fn f"));
    }

    #[test]
    fn doc_lines() {
        let src = "/// docs\npub fn f() {}\n//! module docs\n";
        let lines = scan_file(src);
        assert!(lines[0].is_doc);
        assert!(!lines[1].is_doc);
        assert!(lines[2].is_doc);
    }
}
