//! A lightweight per-function concurrency model built on the token scanner.
//!
//! The model is deliberately *textual*: it reuses [`crate::scan`]'s stripped
//! code view (comments and string contents blanked, `#[cfg(test)]` regions
//! excluded) and a small tokenizer — no `syn`, no type information. For each
//! crate it records:
//!
//! * **lock declarations** — struct fields, statics, and `let` bindings
//!   whose type (or initializer) is `Mutex<..>` / `RwLock<..>`, identified
//!   as `<crate>/<file-stem>.<name>` (e.g. `server/pool.state`);
//! * **functions** — name, span, parameters (flagging lock-typed ones),
//!   whether the return type hands a guard or a `&Mutex`/`&RwLock` back to
//!   the caller, and an ordered list of **events** inside the body:
//!   acquisitions (`.lock()` / `.read()` / `.write()` with *empty* argument
//!   lists, so `stream.read(&mut buf)` never matches), calls, blocking
//!   operations, and thread spawns, each with a guard live range.
//!
//! Guard liveness is block-scoped: a `let`-bound guard lives until its
//! enclosing block closes (or an `if let` / `while let` body closes, for
//! scrutinee bindings), an unbound acquisition lives to the end of its
//! statement, and `drop(guard)` ends a range early (handled by the rule
//! walk in [`crate::analyze`]). The model's limits are documented in
//! `docs/ANALYSIS.md`.

use std::path::Path;

use crate::scan::{scan_file, Line};

/// One token of the stripped code view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier, keyword, or number literal.
    Ident(String),
    /// A single punctuation character.
    Punct(char),
}

/// A token plus its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based line the token starts on.
    pub line: usize,
}

/// Which method acquired a guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcqMethod {
    /// `Mutex::lock`.
    Lock,
    /// `RwLock::read`.
    Read,
    /// `RwLock::write`.
    Write,
}

impl AcqMethod {
    /// The method name as it appears in source.
    pub fn name(self) -> &'static str {
        match self {
            AcqMethod::Lock => "lock",
            AcqMethod::Read => "read",
            AcqMethod::Write => "write",
        }
    }
}

/// A declared lock: a struct field, static, or local whose type is
/// `Mutex`/`RwLock`.
#[derive(Debug, Clone)]
pub struct LockDecl {
    /// Stable identity: `<crate>/<file-stem>.<name>`.
    pub id: String,
    /// The field/static/local name.
    pub name: String,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based declaration line.
    pub line: usize,
    /// True for `RwLock`, false for `Mutex`.
    pub rw: bool,
}

/// A lock acquisition site inside a function body.
#[derive(Debug, Clone)]
pub struct AcqEvent {
    /// Last identifier of the receiver chain (`self.file.lock()` → `file`).
    pub receiver: String,
    /// Which method fired.
    pub method: AcqMethod,
    /// Token index of the method name (orders events within the body).
    pub idx: usize,
    /// 1-based source line.
    pub line: usize,
    /// `let` binding holding the guard, if any.
    pub binding: Option<String>,
    /// Token index at which the guard dies (block close or statement end).
    pub live_end: usize,
}

/// A call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallEvent {
    /// The called identifier (`lock_shard(..)` / `.get(..)` → `get`).
    pub callee: String,
    /// True when written as a `path::segment` call — those resolve to
    /// std/foreign items in this codebase and are skipped by the
    /// crate-local call graph.
    pub qualified: bool,
    /// The path segment right before the callee, when qualified
    /// (`mpsc::channel` → `mpsc`).
    pub path_prefix: Option<String>,
    /// Identifiers appearing in each top-level argument, in order.
    pub arg_idents: Vec<Vec<String>>,
    /// Token index of the callee identifier.
    pub idx: usize,
    /// 1-based source line.
    pub line: usize,
    /// `let` binding receiving the call result, if any.
    pub binding: Option<String>,
    /// Token index where a guard returned by the callee would die.
    pub live_end: usize,
}

/// A blocking operation (I/O, accept, join, recv, sleep).
#[derive(Debug, Clone)]
pub struct BlockingEvent {
    /// Short description for diagnostics (e.g. `File/stream write_all`).
    pub what: String,
    /// Token index.
    pub idx: usize,
    /// 1-based source line.
    pub line: usize,
}

/// A thread spawn / scope creation site.
#[derive(Debug, Clone)]
pub struct SpawnEvent {
    /// Short description for diagnostics (e.g. `thread::spawn`).
    pub what: String,
    /// Token index.
    pub idx: usize,
    /// 1-based source line.
    pub line: usize,
}

/// Everything the rules need about one event, in body order.
#[derive(Debug, Clone)]
pub enum Event {
    /// A lock acquisition.
    Acq(AcqEvent),
    /// A function/method call.
    Call(CallEvent),
    /// A blocking operation.
    Blocking(BlockingEvent),
    /// A thread spawn.
    Spawn(SpawnEvent),
}

impl Event {
    /// Token index, for ordering.
    pub fn idx(&self) -> usize {
        match self {
            Event::Acq(e) => e.idx,
            Event::Call(e) => e.idx,
            Event::Blocking(e) => e.idx,
            Event::Spawn(e) => e.idx,
        }
    }
}

/// One function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Parameter name (`_` and `self` receivers are skipped).
    pub name: String,
    /// True when the declared type mentions `Mutex<`/`RwLock<`.
    pub is_lock: bool,
}

/// The model of a single function body.
#[derive(Debug, Clone)]
pub struct FnModel {
    /// Function name (methods are recorded by bare name).
    pub name: String,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Parameters, in order.
    pub params: Vec<Param>,
    /// Return type hands a guard to the caller (`MutexGuard`,
    /// `RwLock*Guard`, or the `Tracked` wrapper).
    pub returns_guard: bool,
    /// Return type is a `&Mutex`/`&RwLock` (a lock *reference* accessor).
    pub returns_lock_ref: bool,
    /// Ordered events in the body.
    pub events: Vec<Event>,
}

/// Everything modeled about one source file.
#[derive(Debug, Clone)]
pub struct FileModel {
    /// Workspace-relative path.
    pub path: String,
    /// File stem (`pool` for `pool.rs`), used in lock identities.
    pub stem: String,
    /// Scanned lines (for allowlist matching in the driver).
    pub lines: Vec<Line>,
    /// Locks declared in this file.
    pub decls: Vec<LockDecl>,
    /// Functions defined in this file.
    pub fns: Vec<FnModel>,
}

/// The model of one crate's `src/` tree.
#[derive(Debug, Clone)]
pub struct CrateModel {
    /// Crate directory name under `crates/`.
    pub name: String,
    /// Per-file models, sorted by path.
    pub files: Vec<FileModel>,
}

impl CrateModel {
    /// All lock declarations in the crate.
    pub fn decls(&self) -> impl Iterator<Item = &LockDecl> {
        self.files.iter().flat_map(|f| f.decls.iter())
    }
}

/// Builds the model for `crates/<name>/src` under `root`. Missing crates
/// produce an empty model (the caller reports coverage separately).
pub fn build_crate(root: &Path, name: &str) -> CrateModel {
    let src = root.join("crates").join(name).join("src");
    let mut files = Vec::new();
    for file in crate::lint::rust_files(&src) {
        let rel = file.strip_prefix(root).unwrap_or(&file).to_string_lossy().replace('\\', "/");
        let Ok(text) = std::fs::read_to_string(&file) else {
            continue;
        };
        files.push(build_file(name, &rel, &text));
    }
    CrateModel { name: name.to_string(), files }
}

/// Builds a [`FileModel`] from source text (exposed for tests).
pub fn build_file(krate: &str, rel_path: &str, text: &str) -> FileModel {
    let lines = scan_file(text);
    let stem = Path::new(rel_path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let decls = find_lock_decls(krate, rel_path, &stem, &lines);
    let tokens = tokenize(&lines);
    let fns = find_fns(rel_path, &tokens);
    FileModel { path: rel_path.to_string(), stem, lines, decls, fns }
}

/// Tokenizes the stripped code view, skipping `#[cfg(test)]` regions.
pub fn tokenize(lines: &[Line]) -> Vec<Token> {
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if line.in_test_mod {
            continue;
        }
        let chars: Vec<char> = line.code.chars().collect();
        let mut j = 0;
        while j < chars.len() {
            let c = chars[j];
            if c.is_alphanumeric() || c == '_' {
                let start = j;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let word: String = chars[start..j].iter().collect();
                out.push(Token { tok: Tok::Ident(word), line: i + 1 });
            } else if c.is_whitespace() {
                j += 1;
            } else {
                out.push(Token { tok: Tok::Punct(c), line: i + 1 });
                j += 1;
            }
        }
    }
    out
}

/// True if the token is the identifier `s`.
fn is_ident(t: Option<&Token>, s: &str) -> bool {
    matches!(t, Some(Token { tok: Tok::Ident(w), .. }) if w == s)
}

/// True if the token is the punctuation `c`.
fn is_punct(t: Option<&Token>, c: char) -> bool {
    matches!(t, Some(Token { tok: Tok::Punct(p), .. }) if *p == c)
}

/// Finds lock declarations: statics, struct fields, and `let` locals.
fn find_lock_decls(krate: &str, rel_path: &str, stem: &str, lines: &[Line]) -> Vec<LockDecl> {
    let mut decls = Vec::new();
    let mut depth: i64 = 0;
    // Depth just *inside* each currently-open struct body.
    let mut struct_body_depths: Vec<i64> = Vec::new();
    let mut pending_struct = false;
    for (i, line) in lines.iter().enumerate() {
        if line.in_test_mod {
            continue;
        }
        let code = line.code.as_str();
        let trimmed = code.trim_start();
        let mentions_lock = code.contains("Mutex<") || code.contains("RwLock<");
        let is_static = trimmed.starts_with("static ") || trimmed.starts_with("pub static ");
        let in_struct_body = struct_body_depths.last() == Some(&depth) && code.contains(':');
        // `let` locals initialized straight from a constructor.
        if trimmed.contains("let ")
            && (code.contains("Mutex::new(") || code.contains("RwLock::new("))
        {
            if let Some(name) = let_binding_name(code) {
                decls.push(LockDecl {
                    id: format!("{krate}/{stem}.{name}"),
                    name,
                    path: rel_path.to_string(),
                    line: i + 1,
                    rw: code.contains("RwLock::new("),
                });
            }
        } else if mentions_lock && (is_static || in_struct_body) && !trimmed.starts_with("fn ") {
            if let Some(name) = field_name(code) {
                decls.push(LockDecl {
                    id: format!("{krate}/{stem}.{name}"),
                    name,
                    path: rel_path.to_string(),
                    line: i + 1,
                    rw: code.contains("RwLock<"),
                });
            }
        }
        // Track struct bodies so field lines are only matched inside them.
        if (trimmed.starts_with("struct ")
            || trimmed.starts_with("pub struct ")
            || trimmed.starts_with("pub(crate) struct "))
            && code.contains('{')
        {
            pending_struct = true;
        }
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending_struct {
                        struct_body_depths.push(depth);
                        pending_struct = false;
                    }
                }
                '}' => {
                    if struct_body_depths.last() == Some(&depth) {
                        struct_body_depths.pop();
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        if pending_struct && code.contains(';') {
            pending_struct = false; // tuple struct `struct X(..);`
        }
    }
    // Identical names in one file collapse to one identity; keep the first.
    decls.dedup_by(|a, b| a.name == b.name);
    decls
}

/// `name` from a field/static line `name: Mutex<..>` (first ident before
/// the first `:`).
fn field_name(code: &str) -> Option<String> {
    let before = code.split(':').next()?;
    before
        .split(|c: char| !(c.is_alphanumeric() || c == '_'))
        .filter(|w| !w.is_empty())
        .rfind(|w| !matches!(*w, "pub" | "crate" | "static" | "mut" | "ref"))
        .map(str::to_string)
}

/// Binding name from a `let` line: first lowercase-ish ident after `let`
/// (skipping `mut` and constructor patterns like `Ok(` / `Some(`).
fn let_binding_name(code: &str) -> Option<String> {
    let pos = code.find("let ")?;
    let after = &code[pos + 4..];
    let stop = after.find('=').unwrap_or(after.len());
    after[..stop]
        .split(|c: char| !(c.is_alphanumeric() || c == '_'))
        .filter(|w| !w.is_empty())
        .find(|w| {
            *w != "mut" && !w.chars().next().is_some_and(|c| c.is_uppercase() || c.is_numeric())
        })
        .map(str::to_string)
}

/// Keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "in", "as", "loop", "else", "let", "fn", "move",
    "impl", "where", "dyn", "ref", "mut", "box", "await", "unsafe",
];

/// Splits the token stream into functions and models each body.
fn find_fns(rel_path: &str, tokens: &[Token]) -> Vec<FnModel> {
    // Precompute the matching close index for every `{`.
    let mut close_of = vec![usize::MAX; tokens.len()];
    let mut stack = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        match t.tok {
            Tok::Punct('{') => stack.push(i),
            Tok::Punct('}') => {
                if let Some(open) = stack.pop() {
                    close_of[open] = i;
                }
            }
            _ => {}
        }
    }

    let mut fns = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_ident(tokens.get(i), "fn") {
            if let Some(Token { tok: Tok::Ident(name), line }) = tokens.get(i + 1) {
                // Find the body `{` (or a `;` for trait declarations),
                // tracking parens and angle brackets in the header.
                let mut j = i + 2;
                let mut paren: i64 = 0;
                let mut body_open = None;
                while let Some(t) = tokens.get(j) {
                    match t.tok {
                        Tok::Punct('(') => paren += 1,
                        Tok::Punct(')') => paren -= 1,
                        Tok::Punct('{') if paren == 0 => {
                            body_open = Some(j);
                            break;
                        }
                        Tok::Punct(';') if paren == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(open) = body_open {
                    let close = close_of[open];
                    if close != usize::MAX {
                        let (params, returns_guard, returns_lock_ref) =
                            parse_header(&tokens[i..open]);
                        let events = model_body(tokens, open, close, &close_of);
                        fns.push(FnModel {
                            name: name.clone(),
                            path: rel_path.to_string(),
                            line: *line,
                            params,
                            returns_guard,
                            returns_lock_ref,
                            events,
                        });
                        // Continue *inside* the body too: nested fns are
                        // rare, and their events would otherwise vanish.
                        i += 2;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    fns
}

/// Parses a header slice `[fn .. {` exclusive) into params and return
/// classification.
fn parse_header(header: &[Token]) -> (Vec<Param>, bool, bool) {
    // Locate the parameter list: first `(` at angle-depth 0 after the name.
    let mut angle: i64 = 0;
    let mut params_open = None;
    for (k, t) in header.iter().enumerate().skip(2) {
        match t.tok {
            Tok::Punct('<') => angle += 1,
            // `->` in a generic bound (`Fn() -> T`) is not a closer.
            Tok::Punct('>')
                if !matches!(
                    header.get(k.wrapping_sub(1)),
                    Some(Token { tok: Tok::Punct('-'), .. })
                ) =>
            {
                angle -= 1;
            }
            Tok::Punct('(') if angle == 0 => {
                params_open = Some(k);
                break;
            }
            _ => {}
        }
    }
    let Some(open) = params_open else {
        return (Vec::new(), false, false);
    };
    // Split the param list at top-level commas.
    let mut depth: i64 = 0;
    let mut end = header.len();
    let mut arg_start = open + 1;
    let mut params = Vec::new();
    let mut k = open;
    while k < header.len() {
        match header[k].tok {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    push_param(&header[arg_start..k], &mut params);
                    end = k;
                    break;
                }
            }
            Tok::Punct(',') if depth == 1 => {
                push_param(&header[arg_start..k], &mut params);
                arg_start = k + 1;
            }
            _ => {}
        }
        k += 1;
    }
    // Classify the return type (tokens after the param list).
    let ret = &header[end..];
    let guard_names = ["MutexGuard", "RwLockReadGuard", "RwLockWriteGuard", "Tracked"];
    let returns_guard = ret
        .iter()
        .any(|t| matches!(&t.tok, Tok::Ident(w) if guard_names.contains(&w.as_str())));
    let returns_lock_ref = !returns_guard
        && ret
            .iter()
            .any(|t| matches!(&t.tok, Tok::Ident(w) if w == "Mutex" || w == "RwLock"));
    (params, returns_guard, returns_lock_ref)
}

/// Records one parameter from its token slice.
fn push_param(slice: &[Token], params: &mut Vec<Param>) {
    if slice.is_empty() || slice.iter().any(|t| matches!(&t.tok, Tok::Ident(w) if w == "self")) {
        return;
    }
    let name = slice.iter().find_map(|t| match &t.tok {
        Tok::Ident(w) if w != "mut" && w != "ref" => Some(w.clone()),
        _ => None,
    });
    let Some(name) = name else { return };
    let is_lock = slice
        .iter()
        .any(|t| matches!(&t.tok, Tok::Ident(w) if w == "Mutex" || w == "RwLock"));
    params.push(Param { name, is_lock });
}

/// Blocking method patterns: `.name(` — `true` requires empty args.
const BLOCKING_METHODS: &[(&str, bool, &str)] = &[
    ("accept", true, "TcpListener::accept"),
    ("join", true, "JoinHandle::join"),
    ("recv", true, "channel recv"),
    ("recv_timeout", false, "channel recv_timeout"),
    ("write_all", false, "File/stream write_all"),
    ("read_exact", false, "stream read_exact"),
    ("read_to_end", false, "stream read_to_end"),
    ("read_to_string", false, "stream read_to_string"),
    ("flush", true, "File/stream flush"),
    ("sync_all", true, "File sync_all"),
    ("write_to", false, "response write to socket"),
];

/// Blocking path patterns: `a::b`.
const BLOCKING_PATHS: &[(&str, &str, &str)] = &[
    ("thread", "sleep", "thread::sleep"),
    ("fs", "read", "fs::read"),
    ("fs", "write", "fs::write"),
    ("fs", "read_to_string", "fs::read_to_string"),
    ("File", "open", "File::open"),
    ("File", "create", "File::create"),
    ("TcpStream", "connect", "TcpStream::connect"),
    ("TcpStream", "connect_timeout", "TcpStream::connect_timeout"),
    ("UdpSocket", "bind", "UdpSocket::bind"),
];

/// Crate-local helpers that read/write sockets; called unqualified.
const BLOCKING_LOCAL_FNS: &[(&str, &str)] = &[("read_request", "read_request (socket read)")];

/// Models one function body into an ordered event list.
fn model_body(tokens: &[Token], open: usize, close: usize, close_of: &[usize]) -> Vec<Event> {
    let mut events: Vec<Event> = Vec::new();
    // Pending `let` binding: (name, depth, saw a guard-relevant `=` yet).
    let mut binding: Option<String> = None;
    let mut binding_depth: i64 = 0;
    // Once an `if let`/`while let` body opens, the binding's live range is
    // that block; for plain `let` it is the enclosing block.
    let mut depth: i64 = 0;
    // Enclosing block close index at each depth (stack of `{` indexes).
    let mut block_close: Vec<usize> = vec![close];

    let mut i = open + 1;
    while i < close {
        let t = &tokens[i];
        match &t.tok {
            Tok::Punct('{') => {
                depth += 1;
                let c = close_of.get(i).copied().unwrap_or(close).min(close);
                block_close.push(c);
                // An `{` before the `;` closes an `if let`/`while let`
                // condition: the binding lives exactly for this block.
                if let Some(name) = binding.take() {
                    retarget_binding(&mut events, &name, c);
                }
            }
            Tok::Punct('}') => {
                depth -= 1;
                block_close.pop();
            }
            Tok::Punct(';') => {
                if binding.is_some() && depth == binding_depth {
                    binding = None;
                }
                // Unbound acquisitions die at their statement end.
                for e in &mut events {
                    if let Event::Acq(a) = e {
                        if a.binding.is_none() && a.live_end == usize::MAX && a.idx < i {
                            a.live_end = i;
                        }
                    }
                    if let Event::Call(c) = e {
                        if c.binding.is_none() && c.live_end == usize::MAX && c.idx < i {
                            c.live_end = i;
                        }
                    }
                }
            }
            Tok::Ident(w) if w == "let" => {
                binding = let_name_from_tokens(&tokens[i + 1..close.min(i + 12)]);
                binding_depth = depth;
            }
            Tok::Ident(w) if w == "fn" => {
                // Nested fn: skip its header so params don't read as calls;
                // its body is modeled separately by `find_fns`.
            }
            Tok::Ident(w) => {
                let next_is_open = is_punct(tokens.get(i + 1), '(');
                let prev_dot = is_punct(tokens.get(i.wrapping_sub(1)), '.');
                let prev_colon = is_punct(tokens.get(i.wrapping_sub(1)), ':');
                if next_is_open && prev_dot && matches!(w.as_str(), "lock" | "read" | "write") {
                    // Acquisition requires an *empty* argument list.
                    if is_punct(tokens.get(i + 2), ')') {
                        let method = match w.as_str() {
                            "lock" => AcqMethod::Lock,
                            "read" => AcqMethod::Read,
                            _ => AcqMethod::Write,
                        };
                        let receiver = receiver_ident(tokens, i - 1);
                        let live_end = match &binding {
                            Some(_) => *block_close.last().unwrap_or(&close),
                            None => usize::MAX, // patched at the next `;`
                        };
                        events.push(Event::Acq(AcqEvent {
                            receiver,
                            method,
                            idx: i,
                            line: t.line,
                            binding: binding.clone(),
                            live_end,
                        }));
                        i += 3;
                        continue;
                    }
                }
                // Blocking methods.
                if next_is_open && prev_dot {
                    for (name, needs_empty, what) in BLOCKING_METHODS {
                        if w == name && (!needs_empty || is_punct(tokens.get(i + 2), ')')) {
                            events.push(Event::Blocking(BlockingEvent {
                                what: (*what).to_string(),
                                idx: i,
                                line: t.line,
                            }));
                        }
                    }
                }
                // Blocking paths and spawns (`a :: b`).
                if next_is_open && prev_colon && is_punct(tokens.get(i.wrapping_sub(2)), ':') {
                    if let Some(Token { tok: Tok::Ident(prefix), .. }) =
                        tokens.get(i.wrapping_sub(3))
                    {
                        for (pre, name, what) in BLOCKING_PATHS {
                            if prefix == pre && w == name {
                                events.push(Event::Blocking(BlockingEvent {
                                    what: (*what).to_string(),
                                    idx: i,
                                    line: t.line,
                                }));
                            }
                        }
                        if (prefix == "thread" && (w == "spawn" || w == "scope"))
                            || (w == "spawn" && prefix == "Builder")
                        {
                            events.push(Event::Spawn(SpawnEvent {
                                what: format!("{prefix}::{w}"),
                                idx: i,
                                line: t.line,
                            }));
                        }
                    }
                }
                // `.spawn(` — scoped or builder spawns.
                if next_is_open && prev_dot && w == "spawn" {
                    events.push(Event::Spawn(SpawnEvent {
                        what: ".spawn".to_string(),
                        idx: i,
                        line: t.line,
                    }));
                }
                if next_is_open && !prev_dot {
                    for (name, what) in BLOCKING_LOCAL_FNS {
                        if w == name {
                            events.push(Event::Blocking(BlockingEvent {
                                what: (*what).to_string(),
                                idx: i,
                                line: t.line,
                            }));
                        }
                    }
                }
                // Generic call event (for the crate-local call graph).
                if next_is_open && !CALL_KEYWORDS.contains(&w.as_str()) {
                    let (arg_idents, after) = parse_args(tokens, i + 1, close);
                    let path_prefix = if prev_colon {
                        match tokens.get(i.wrapping_sub(3)) {
                            Some(Token { tok: Tok::Ident(p), .. }) => Some(p.clone()),
                            _ => None,
                        }
                    } else {
                        None
                    };
                    let live_end = match &binding {
                        Some(_) => *block_close.last().unwrap_or(&close),
                        None => usize::MAX,
                    };
                    events.push(Event::Call(CallEvent {
                        callee: w.clone(),
                        qualified: prev_colon,
                        path_prefix,
                        arg_idents,
                        idx: i,
                        line: t.line,
                        binding: binding.clone(),
                        live_end,
                    }));
                    let _ = after;
                }
            }
            _ => {}
        }
        i += 1;
    }
    // Events still unpatched at the body close die there.
    for e in &mut events {
        match e {
            Event::Acq(a) if a.live_end == usize::MAX => a.live_end = close,
            Event::Call(c) if c.live_end == usize::MAX => c.live_end = close,
            _ => {}
        }
    }
    events.sort_by_key(Event::idx);
    events
}

/// Rewrites the live range of events bound to `name` (used when an
/// `if let`/`while let` body turns out to scope the binding).
fn retarget_binding(events: &mut [Event], name: &str, live_end: usize) {
    for e in events.iter_mut().rev() {
        match e {
            Event::Acq(a) if a.binding.as_deref() == Some(name) => a.live_end = live_end,
            Event::Call(c) if c.binding.as_deref() == Some(name) => c.live_end = live_end,
            _ => {}
        }
    }
}

/// Binding name from the tokens after `let`: first non-`mut`, non-pattern
/// identifier (skips `Ok` / `Some` constructors by case).
fn let_name_from_tokens(tokens: &[Token]) -> Option<String> {
    for t in tokens {
        match &t.tok {
            Tok::Punct('=') => return None,
            Tok::Ident(w) => {
                if w == "mut" || w == "ref" {
                    continue;
                }
                if w.chars().next().is_some_and(|c| c.is_uppercase() || c.is_numeric()) {
                    continue; // `Ok(..)` / `Some(..)` pattern constructor
                }
                return Some(w.clone());
            }
            _ => {}
        }
    }
    None
}

/// Walks backwards from the `.` before a lock method to the last receiver
/// field (`self.shards[i].loaded.read()` → `loaded`).
fn receiver_ident(tokens: &[Token], dot_idx: usize) -> String {
    let mut k = dot_idx; // tokens[k] is the `.`
    loop {
        if k == 0 {
            return String::new();
        }
        k -= 1;
        match &tokens[k].tok {
            Tok::Ident(w) if w != "self" => return w.clone(),
            Tok::Ident(_) => return String::new(), // bare `self.lock()`
            Tok::Punct(']') | Tok::Punct(')') => {
                // Skip the bracket group, then expect the field before it.
                let closer = if tokens[k].tok == Tok::Punct(']') {
                    (']', '[')
                } else {
                    (')', '(')
                };
                let mut depth = 1;
                while depth > 0 && k > 0 {
                    k -= 1;
                    match &tokens[k].tok {
                        Tok::Punct(c) if *c == closer.0 => depth += 1,
                        Tok::Punct(c) if *c == closer.1 => depth -= 1,
                        _ => {}
                    }
                }
            }
            Tok::Punct('.') => {}
            _ => return String::new(),
        }
    }
}

/// Splits a call's argument tokens at top-level commas, collecting the
/// identifiers in each argument. Returns the idents and the index just
/// past the closing `)`.
fn parse_args(tokens: &[Token], open: usize, limit: usize) -> (Vec<Vec<String>>, usize) {
    let mut args = Vec::new();
    let mut cur: Vec<String> = Vec::new();
    let mut depth: i64 = 0;
    let mut k = open;
    let mut any = false;
    while k < limit {
        match &tokens[k].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => {
                depth += 1;
            }
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    if any || !cur.is_empty() {
                        args.push(std::mem::take(&mut cur));
                    }
                    return (args, k + 1);
                }
            }
            Tok::Punct(',') if depth == 1 => {
                args.push(std::mem::take(&mut cur));
                any = true;
            }
            Tok::Ident(w) => {
                any = true;
                cur.push(w.clone());
            }
            _ => {}
        }
        k += 1;
    }
    (args, limit)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        build_file("t", "crates/t/src/lib.rs", src)
    }

    #[test]
    fn finds_field_static_and_local_decls() {
        let src = "\
static RING: Mutex<Vec<u32>> = Mutex::new(Vec::new());
pub struct S {
    state: Mutex<u32>,
    loaded: RwLock<u8>,
}
fn f() {
    let results = std::sync::Mutex::new(Vec::<u32>::new());
}
fn lock(m: &Mutex<u32>) -> MutexGuard<'_, u32> { m.lock().unwrap() }
";
        let m = model(src);
        let ids: Vec<&str> = m.decls.iter().map(|d| d.id.as_str()).collect();
        assert_eq!(ids, vec!["t/lib.RING", "t/lib.state", "t/lib.loaded", "t/lib.results"]);
        assert!(m.decls[2].rw);
    }

    #[test]
    fn fn_params_and_guard_returns() {
        let src = "\
fn lock<T>(m: &Mutex<State<T>>) -> MutexGuard<'_, State<T>> { m.lock().unwrap() }
fn shard_for(&self, key: &str) -> &Mutex<Shard> { &self.shards[0] }
fn plain(x: u32) -> u32 { x }
";
        let m = model(src);
        assert_eq!(m.fns.len(), 3);
        assert!(m.fns[0].returns_guard);
        assert!(m.fns[0].params[0].is_lock);
        assert!(m.fns[1].returns_lock_ref);
        assert!(!m.fns[2].returns_guard && !m.fns[2].params[0].is_lock);
    }

    #[test]
    fn acquisition_receiver_and_liveness() {
        let src = "\
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn f(&self) {
        let g = self.a.lock().unwrap();
        let h = self.b.lock().unwrap();
        drop(g);
    }
    fn temp(&self) {
        self.a.lock().unwrap().checked_add(1);
        other();
    }
}
";
        let m = model(src);
        let f = m.fns.iter().find(|f| f.name == "f").unwrap();
        let acqs: Vec<&AcqEvent> = f
            .events
            .iter()
            .filter_map(|e| if let Event::Acq(a) = e { Some(a) } else { None })
            .collect();
        assert_eq!(acqs.len(), 2);
        assert_eq!(acqs[0].receiver, "a");
        assert_eq!(acqs[0].binding.as_deref(), Some("g"));
        assert_eq!(acqs[1].receiver, "b");
        // Both live to the block close (drop() is handled in the rule walk).
        assert_eq!(acqs[0].live_end, acqs[1].live_end);

        let temp = m.fns.iter().find(|f| f.name == "temp").unwrap();
        let ta: Vec<&AcqEvent> = temp
            .events
            .iter()
            .filter_map(|e| if let Event::Acq(a) = e { Some(a) } else { None })
            .collect();
        assert_eq!(ta.len(), 1);
        assert!(ta[0].binding.is_none());
        // Statement-scoped: dies before `other()` is called.
        let call = temp
            .events
            .iter()
            .find_map(|e| match e {
                Event::Call(c) if c.callee == "other" => Some(c.idx),
                _ => None,
            })
            .unwrap();
        assert!(ta[0].live_end < call);
    }

    #[test]
    fn if_let_guard_scopes_to_its_body() {
        let src = "\
struct S { m: Mutex<Vec<u32>> }
impl S {
    fn f(&self) {
        if let Ok(mut samples) = self.m.lock() {
            samples.push(1);
        }
        after();
    }
}
";
        let m = model(src);
        let f = &m.fns[0];
        let acq = f
            .events
            .iter()
            .find_map(|e| if let Event::Acq(a) = e { Some(a) } else { None })
            .unwrap();
        assert_eq!(acq.binding.as_deref(), Some("samples"));
        let after = f
            .events
            .iter()
            .find_map(|e| match e {
                Event::Call(c) if c.callee == "after" => Some(c.idx),
                _ => None,
            })
            .unwrap();
        assert!(acq.live_end < after, "if-let guard must die with its body");
    }

    #[test]
    fn multiline_chain_receiver() {
        let src = "\
struct S { loaded: RwLock<u32> }
impl S {
    fn f(&self, idx: usize) {
        let slot = self.shards[idx]
            .loaded
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        use_it(&slot);
    }
}
";
        let m = model(src);
        let acq = m.fns[0]
            .events
            .iter()
            .find_map(|e| if let Event::Acq(a) = e { Some(a) } else { None })
            .unwrap();
        assert_eq!(acq.receiver, "loaded");
        assert_eq!(acq.method, AcqMethod::Read);
        assert_eq!(acq.line, 6);
    }

    #[test]
    fn io_reads_with_args_are_not_acquisitions() {
        let src = "\
fn f(stream: &mut TcpStream, buf: &mut [u8]) {
    stream.read(buf).unwrap();
    stream.write(buf).unwrap();
}
";
        let m = model(src);
        assert!(m.fns[0].events.iter().all(|e| !matches!(e, Event::Acq(_))));
    }

    #[test]
    fn blocking_and_spawn_events() {
        let src = "\
fn f(stream: &mut TcpStream) {
    stream.write_all(b\"x\").unwrap();
    let h = std::thread::spawn(|| {});
    h.join().unwrap();
    std::thread::scope(|s| { s.spawn(|| {}); });
}
";
        let m = model(src);
        let whats: Vec<String> = m.fns[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Blocking(b) => Some(b.what.clone()),
                Event::Spawn(s) => Some(s.what.clone()),
                _ => None,
            })
            .collect();
        assert!(whats.iter().any(|w| w.contains("write_all")));
        assert!(whats.iter().any(|w| w.contains("join")));
        assert!(whats.iter().any(|w| w == "thread::spawn"));
        assert!(whats.iter().any(|w| w == "thread::scope"));
        assert!(whats.iter().any(|w| w == ".spawn"));
    }

    #[test]
    fn call_args_collect_idents() {
        let src = "\
fn f(&self) {
    lock(&self.state);
    lock_shard(self.shard_for(&key));
}
";
        let m = model(src);
        let calls: Vec<&CallEvent> = m.fns[0]
            .events
            .iter()
            .filter_map(|e| {
                if let Event::Call(c) = e {
                    Some(c)
                } else {
                    None
                }
            })
            .collect();
        let lock = calls.iter().find(|c| c.callee == "lock").unwrap();
        assert_eq!(lock.arg_idents, vec![vec!["self".to_string(), "state".to_string()]]);
        let shard = calls.iter().find(|c| c.callee == "lock_shard").unwrap();
        assert!(shard.arg_idents[0].contains(&"shard_for".to_string()));
    }

    #[test]
    fn test_mod_bodies_are_excluded() {
        let src = "\
struct S { m: Mutex<u32> }
#[cfg(test)]
mod tests {
    fn t(&self) { let g = self.m.lock().unwrap(); }
}
";
        let m = model(src);
        assert!(m.fns.is_empty());
    }
}
