//! `cargo xtask` — workspace automation for the GKS repo.
//!
//! Subcommands:
//!
//! * `lint` — run the GKS-specific lint rules over the workspace sources
//!   (see `docs/ANALYSIS.md`). Exits nonzero on violations.
//! * `analyze` — run the concurrency analysis (lock-order graph, guard
//!   lifetime rules) over the lock-bearing crates. Exits nonzero on
//!   violations; `--format json` emits a machine-readable report for CI.
//!
//! The driver is dependency-free by design: it must run in the offline
//! build container and stay fast enough to sit in front of every CI job.

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::{analyze, lint};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let verbose = args.iter().any(|a| a == "--verbose" || a == "-v");
    match args.first().map(String::as_str) {
        Some("lint") => {
            if args.iter().any(|a| a == "--crates") {
                lint::print_coverage();
                return ExitCode::SUCCESS;
            }
            if args.iter().any(|a| a == "--check-stale") {
                return lint::run_check_stale(&workspace_root());
            }
            lint::run(&workspace_root(), verbose)
        }
        Some("analyze") => {
            if args.iter().any(|a| a == "--crates") {
                analyze::print_coverage();
                return ExitCode::SUCCESS;
            }
            let format = match args.iter().position(|a| a == "--format") {
                Some(i) => match args.get(i + 1).map(String::as_str) {
                    Some("json") => analyze::OutputFormat::Json,
                    Some("text") => analyze::OutputFormat::Text,
                    other => {
                        eprintln!(
                            "unknown analyze format {:?}; expected `text` or `json`",
                            other.unwrap_or("<missing>")
                        );
                        return ExitCode::FAILURE;
                    }
                },
                None => analyze::OutputFormat::Text,
            };
            analyze::run(&workspace_root(), format, verbose)
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown xtask subcommand `{other}`\n");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: cargo xtask <command>\n\
         \n\
         commands:\n\
           lint [--verbose]      run the GKS lint rules (no-panic, no-truncating-cast,\n\
                                 pub-fn-docs, no-process-exit, no-raw-timing,\n\
                                 no-eager-decode-in-open) over the workspace;\n\
                                 allowlist in crates/xtask/lint-allow.toml\n\
           lint --crates         print which crates each lint rule covers and exit\n\
           lint --check-stale    fail if any allowlist entry no longer matches a\n\
                                 source line\n\
           analyze [--verbose]   run the concurrency analysis (lock-order,\n\
                                 no-guard-across-blocking, no-guard-across-spawn,\n\
                                 no-unbounded-channel) over the lock-bearing crates\n\
           analyze --format json emit the analyze report as one JSON object\n\
           analyze --crates      print which crates each analyze rule covers and exit\n\
           help                  show this message"
    );
}

/// The workspace root, resolved from this crate's manifest directory so the
/// driver works from any cwd.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    match manifest.parent().and_then(|p| p.parent()) {
        Some(root) => root.to_path_buf(),
        // CARGO_MANIFEST_DIR is `<root>/crates/xtask`; a rootless path can
        // only mean a broken checkout, where cwd is the best fallback.
        None => PathBuf::from("."),
    }
}
