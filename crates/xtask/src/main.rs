//! `cargo xtask` — workspace automation for the GKS repo.
//!
//! Subcommands:
//!
//! * `lint` — run the GKS-specific lint rules over the workspace sources
//!   (see [`lint`] and `docs/ANALYSIS.md`). Exits nonzero on violations.
//!
//! The driver is dependency-free by design: it must run in the offline
//! build container and stay fast enough to sit in front of every CI job.

// Not an engine library crate: unwrap/expect on deterministic, known-good
// data is acceptable here. The hard panic-free rule is scoped to the
// engine crates and enforced by `cargo xtask lint` (see docs/ANALYSIS.md).
#![allow(clippy::unwrap_used, clippy::expect_used)]

mod allow;
mod lint;
mod scan;

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            if args.iter().any(|a| a == "--crates") {
                lint::print_coverage();
                return ExitCode::SUCCESS;
            }
            let verbose = args.iter().any(|a| a == "--verbose" || a == "-v");
            lint::run(&workspace_root(), verbose)
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown xtask subcommand `{other}`\n");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: cargo xtask <command>\n\
         \n\
         commands:\n\
           lint [--verbose]   run the GKS lint rules (no-panic, no-truncating-cast,\n\
                              pub-fn-docs, no-process-exit) over the workspace;\n\
                              allowlist lives in crates/xtask/lint-allow.toml\n\
           lint --crates      print which crates each rule covers and exit\n\
           help               show this message"
    );
}

/// The workspace root, resolved from this crate's manifest directory so the
/// driver works from any cwd.
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/xtask has a workspace root two levels up")
        .to_path_buf()
}
