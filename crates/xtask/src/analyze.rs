//! Concurrency rules over the per-function model (`cargo xtask analyze`).
//!
//! Rules (ids as they appear in diagnostics and `lint-allow.toml`):
//!
//! * `lock-order` — build the static lock-acquisition graph (edge `A → B`
//!   whenever a guard on `A` is live while `B` is acquired, directly or one
//!   call level down); any cycle is a potential deadlock.
//! * `no-guard-across-blocking` — a live `Mutex`/`RwLock` guard across
//!   `TcpStream`/`File` I/O, `accept`, a blocking channel `recv`, or
//!   `JoinHandle::join`. A worker parked on I/O while holding a shard or
//!   pool guard stalls every other worker that needs it.
//! * `no-guard-across-spawn` — a guard live across `thread::spawn` /
//!   `thread::scope` at a scatter site; the child's lifetime is unbounded
//!   from the guard's point of view.
//! * `no-unbounded-channel` — `mpsc::channel()` in the serving crate; the
//!   admission-controlled pool must stay bounded (`sync_channel` or the
//!   `BoundedQueue` are fine).
//! * `no-blocking-in-reactor` — any blocking operation in a `*reactor.rs`
//!   file, guard or no guard. The reactor thread owns every connection;
//!   one blocking call stalls all of them, so its event loop must stay
//!   readiness-driven (the poll wait itself lives in `poller.rs`, outside
//!   this rule's file scope, deliberately).
//!
//! The model is textual (see [`crate::model`]): method calls resolve to
//! crate-local functions only when the bare name is unique in the crate,
//! inlining goes exactly one level deep, and acquisitions of the *same*
//! lock identity never form an edge (sharded locks share one identity).
//! `docs/ANALYSIS.md` documents the limits and how to read a cycle report.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::process::ExitCode;

use crate::allow::Allowlist;
use crate::model::{build_crate, CallEvent, CrateModel, Event, FnModel, LockDecl};
use crate::Violation;

/// Which rules run for one crate.
#[derive(Debug, Clone, Copy)]
pub struct CrateSpec {
    /// Crate directory name under `crates/`.
    pub name: &'static str,
    /// Contribute acquisitions to the global lock-order graph.
    pub lock_order: bool,
    /// Enforce `no-guard-across-blocking`.
    pub guard_blocking: bool,
    /// Enforce `no-guard-across-spawn`.
    pub guard_spawn: bool,
    /// Enforce `no-unbounded-channel`.
    pub unbounded_channel: bool,
    /// Enforce `no-blocking-in-reactor` (files ending `reactor.rs`).
    pub reactor_nonblocking: bool,
}

/// The production crate set: every crate that declares or touches a lock.
pub const DEFAULT_SPECS: &[CrateSpec] = &[
    CrateSpec {
        name: "core",
        lock_order: true,
        guard_blocking: false,
        guard_spawn: false,
        unbounded_channel: false,
        reactor_nonblocking: false,
    },
    CrateSpec {
        name: "exec",
        lock_order: true,
        guard_blocking: false,
        guard_spawn: false,
        unbounded_channel: false,
        reactor_nonblocking: false,
    },
    CrateSpec {
        name: "index",
        lock_order: true,
        guard_blocking: false,
        guard_spawn: true,
        unbounded_channel: false,
        reactor_nonblocking: false,
    },
    CrateSpec {
        name: "server",
        lock_order: true,
        guard_blocking: true,
        guard_spawn: true,
        unbounded_channel: true,
        reactor_nonblocking: true,
    },
    CrateSpec {
        name: "trace",
        lock_order: true,
        guard_blocking: false,
        guard_spawn: false,
        unbounded_channel: false,
        reactor_nonblocking: false,
    },
];

/// Whether one analyze rule is enabled for a crate spec.
type RuleFlag = fn(&CrateSpec) -> bool;

/// Prints which crates each analyze rule covers (`cargo xtask analyze
/// --crates`); CI greps this like it greps `lint --crates`.
pub fn print_coverage() {
    let rules: [(&str, RuleFlag); 5] = [
        ("lock-order", |s| s.lock_order),
        ("no-guard-across-blocking", |s| s.guard_blocking),
        ("no-guard-across-spawn", |s| s.guard_spawn),
        ("no-unbounded-channel", |s| s.unbounded_channel),
        ("no-blocking-in-reactor", |s| s.reactor_nonblocking),
    ];
    for (rule, enabled) in rules {
        let crates: Vec<&str> =
            DEFAULT_SPECS.iter().filter(|s| enabled(s)).map(|s| s.name).collect();
        println!("{rule}: {}", crates.join(" "));
    }
}

/// One observed lock-order edge with its first witness site.
#[derive(Debug, Clone)]
pub struct EdgeSite {
    /// Holding this lock …
    pub from: String,
    /// … while acquiring this one.
    pub to: String,
    /// Workspace-relative path of the witness.
    pub path: String,
    /// 1-based line of the witness acquisition/call.
    pub line: usize,
    /// Function the witness sits in (`via callee` for inlined edges).
    pub context: String,
}

/// Everything one analysis pass produced.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Rule violations, sorted by (path, line).
    pub violations: Vec<Violation>,
    /// Lock declarations discovered.
    pub locks: Vec<LockDecl>,
    /// Lock-order edges with witness sites.
    pub edges: Vec<EdgeSite>,
    /// Functions modeled.
    pub functions: usize,
    /// Files scanned.
    pub files: usize,
    /// Acquisitions that could not be resolved to a declared lock.
    pub unresolved: usize,
}

/// A per-callee effect summary used for one level of inlining.
#[derive(Debug, Clone, Default)]
struct FnSummary {
    /// Locks acquired directly, as `Resolved(id)` or `Param(index)`.
    acqs: Vec<LockRef>,
    /// First blocking operation in the body, if any.
    blocking: Option<String>,
    /// First spawn in the body, if any.
    spawn: Option<String>,
    /// Whether the return type hands a guard to the caller.
    returns_guard: bool,
    /// Index into the crate's file list (for single-decl fallback).
    file: usize,
}

/// A lock reference before call-site resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
enum LockRef {
    /// A declared lock identity.
    Resolved(String),
    /// The callee's n-th parameter (a `&Mutex`/`&RwLock`).
    Param(usize),
}

/// Runs the analysis over `specs` under `root` (no allowlist filtering —
/// the CLI driver applies it; tests call this directly).
pub fn analyze_tree(root: &Path, specs: &[CrateSpec]) -> Analysis {
    let models: Vec<(CrateSpec, CrateModel)> =
        specs.iter().map(|s| (*s, build_crate(root, s.name))).collect();
    let mut out = Analysis::default();
    let mut edges: BTreeMap<(String, String), EdgeSite> = BTreeMap::new();

    for (spec, model) in &models {
        out.files += model.files.len();
        out.locks.extend(model.decls().cloned());
        let decls: Vec<&LockDecl> = model.decls().collect();
        let summaries = summarize(model, &decls);
        for (fi, file) in model.files.iter().enumerate() {
            for f in &file.fns {
                out.functions += 1;
                walk_fn(spec, model, &decls, &summaries, fi, f, &mut edges, &mut out);
            }
        }
    }

    let edge_pairs: Vec<(String, String)> =
        edges.keys().map(|(a, b)| (a.clone(), b.clone())).collect();
    for cycle in find_cycles(&edge_pairs) {
        let mut parts = Vec::new();
        for w in cycle.windows(2) {
            if let Some(site) = edges.get(&(w[0].clone(), w[1].clone())) {
                parts.push(format!(
                    "{} -> {} at {}:{} ({})",
                    site.from, site.to, site.path, site.line, site.context
                ));
            }
        }
        let anchor =
            cycle.windows(2).find_map(|w| edges.get(&(w[0].clone(), w[1].clone()))).cloned();
        let (path, line) = anchor.map(|s| (s.path, s.line)).unwrap_or_default();
        out.violations.push(Violation {
            path,
            line,
            rule: "lock-order",
            message: format!(
                "potential deadlock: lock-order cycle {}; every thread must \
                 acquire these locks in one consistent order [{}]",
                cycle.join(" -> "),
                parts.join("; ")
            ),
        });
    }

    out.edges = edges.into_values().collect();
    out.violations
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}

/// Builds per-function summaries for one crate. Names that appear more
/// than once are marked ambiguous and never resolved at call sites.
fn summarize<'m>(
    model: &'m CrateModel,
    decls: &[&LockDecl],
) -> BTreeMap<&'m str, Option<FnSummary>> {
    let mut summaries: BTreeMap<&str, Option<FnSummary>> = BTreeMap::new();
    // First pass: direct effects only.
    for (fi, file) in model.files.iter().enumerate() {
        for f in &file.fns {
            let mut s =
                FnSummary { returns_guard: f.returns_guard, file: fi, ..FnSummary::default() };
            for e in &f.events {
                match e {
                    Event::Acq(a) => {
                        if let Some(r) = resolve_receiver(&a.receiver, f, fi, model, decls) {
                            s.acqs.push(r);
                        }
                    }
                    Event::Blocking(b) if s.blocking.is_none() => {
                        s.blocking = Some(b.what.clone());
                    }
                    Event::Spawn(sp) if s.spawn.is_none() => s.spawn = Some(sp.what.clone()),
                    _ => {}
                }
            }
            match summaries.entry(f.name.as_str()) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(Some(s));
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    o.insert(None); // ambiguous name: never resolve
                }
            }
        }
    }
    // Second pass: fold in locks obtained through guard-returning helpers
    // (`let state = lock(&self.state)`) so callers one level up see them.
    let mut extra: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for file in &model.files {
        for f in &file.fns {
            let mut locks = Vec::new();
            for e in &f.events {
                if let Event::Call(c) = e {
                    if c.qualified {
                        continue;
                    }
                    if let Some(Some(callee)) = summaries.get(c.callee.as_str()) {
                        if callee.returns_guard {
                            locks.extend(resolve_call_locks(callee, c, model, decls));
                        }
                    }
                }
            }
            if !locks.is_empty() {
                extra.entry(f.name.clone()).or_default().extend(locks);
            }
        }
    }
    for (name, locks) in extra {
        if let Some(Some(s)) = summaries.get_mut(name.as_str()) {
            for l in locks {
                let r = LockRef::Resolved(l);
                if !s.acqs.contains(&r) {
                    s.acqs.push(r);
                }
            }
        }
    }
    summaries
}

/// Resolves an acquisition receiver to a lock, in priority order: a decl
/// in the same file, a crate-unique decl, a lock-typed parameter of the
/// enclosing function, then the same-file single-decl fallback.
fn resolve_receiver(
    receiver: &str,
    f: &FnModel,
    file_idx: usize,
    model: &CrateModel,
    decls: &[&LockDecl],
) -> Option<LockRef> {
    let file = &model.files[file_idx];
    if let Some(d) = file.decls.iter().find(|d| d.name == receiver) {
        return Some(LockRef::Resolved(d.id.clone()));
    }
    let crate_matches: Vec<&&LockDecl> = decls.iter().filter(|d| d.name == receiver).collect();
    if crate_matches.len() == 1 {
        return Some(LockRef::Resolved(crate_matches[0].id.clone()));
    }
    if let Some(i) = f.params.iter().position(|p| p.is_lock && p.name == receiver) {
        return Some(LockRef::Param(i));
    }
    if file.decls.len() == 1 {
        return Some(LockRef::Resolved(file.decls[0].id.clone()));
    }
    None
}

/// Resolves a callee's acquisitions for one call site: `Resolved` ids pass
/// through; `Param(i)` binds via the i-th argument's identifiers, falling
/// back to the callee file's single declaration.
fn resolve_call_locks(
    callee: &FnSummary,
    call: &CallEvent,
    model: &CrateModel,
    decls: &[&LockDecl],
) -> Vec<String> {
    let mut out = Vec::new();
    for acq in &callee.acqs {
        match acq {
            LockRef::Resolved(id) => out.push(id.clone()),
            LockRef::Param(i) => {
                let by_arg = call.arg_idents.get(*i).and_then(|idents| {
                    idents.iter().find_map(|w| {
                        let matches: Vec<&&LockDecl> =
                            decls.iter().filter(|d| &d.name == w).collect();
                        (matches.len() == 1).then(|| matches[0].id.clone())
                    })
                });
                if let Some(id) = by_arg {
                    out.push(id);
                } else if let Some(file) = model.files.get(callee.file) {
                    if file.decls.len() == 1 {
                        out.push(file.decls[0].id.clone());
                    }
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// A guard currently live during the event walk.
#[derive(Debug, Clone)]
struct LiveGuard {
    lock: String,
    binding: Option<String>,
    live_end: usize,
}

/// Walks one function's events, recording edges and rule violations.
#[allow(clippy::too_many_arguments)]
fn walk_fn(
    spec: &CrateSpec,
    model: &CrateModel,
    decls: &[&LockDecl],
    summaries: &BTreeMap<&str, Option<FnSummary>>,
    file_idx: usize,
    f: &FnModel,
    edges: &mut BTreeMap<(String, String), EdgeSite>,
    out: &mut Analysis,
) {
    let path = &model.files[file_idx].path;
    let in_reactor = spec.reactor_nonblocking && path.ends_with("reactor.rs");
    let mut live: Vec<LiveGuard> = Vec::new();
    for e in &f.events {
        live.retain(|g| g.live_end > e.idx());
        match e {
            Event::Acq(a) => {
                match resolve_receiver(&a.receiver, f, file_idx, model, decls) {
                    Some(LockRef::Resolved(lock)) => {
                        if spec.lock_order {
                            for g in &live {
                                record_edge(edges, &g.lock, &lock, path, a.line, &f.name);
                            }
                        }
                        live.push(LiveGuard {
                            lock,
                            binding: a.binding.clone(),
                            live_end: a.live_end,
                        });
                    }
                    Some(LockRef::Param(_)) => {} // accounted at call sites
                    None => out.unresolved += 1,
                }
            }
            Event::Call(c) => {
                // `drop(guard)` ends a live range early.
                if c.callee == "drop" && !c.qualified && c.arg_idents.len() == 1 {
                    if let Some(name) = c.arg_idents[0].first() {
                        live.retain(|g| g.binding.as_deref() != Some(name.as_str()));
                    }
                    continue;
                }
                if spec.unbounded_channel
                    && c.callee == "channel"
                    && c.path_prefix.as_deref() == Some("mpsc")
                    && c.arg_idents.is_empty()
                {
                    out.violations.push(Violation {
                        path: path.clone(),
                        line: c.line,
                        rule: "no-unbounded-channel",
                        message: format!(
                            "`mpsc::channel()` in fn `{}` — an unbounded queue defeats \
                             the admission-controlled pool; use `mpsc::sync_channel` \
                             or `BoundedQueue`",
                            f.name
                        ),
                    });
                }
                if c.qualified {
                    continue;
                }
                let Some(Some(callee)) = summaries.get(c.callee.as_str()) else {
                    continue;
                };
                let callee_locks = resolve_call_locks(callee, c, model, decls);
                if spec.lock_order {
                    for g in &live {
                        for l in &callee_locks {
                            record_edge(
                                edges,
                                &g.lock,
                                l,
                                path,
                                c.line,
                                &format!("{} via {}", f.name, c.callee),
                            );
                        }
                    }
                }
                if in_reactor {
                    if let Some(what) = &callee.blocking {
                        out.violations.push(reactor_violation(
                            path,
                            c.line,
                            &f.name,
                            &format!("{what} (via `{}`)", c.callee),
                        ));
                    }
                }
                if !live.is_empty() {
                    if spec.guard_blocking {
                        if let Some(what) = &callee.blocking {
                            out.violations.push(blocking_violation(
                                path,
                                c.line,
                                &f.name,
                                &live,
                                &format!("{what} (via `{}`)", c.callee),
                            ));
                        }
                    }
                    if spec.guard_spawn {
                        if let Some(what) = &callee.spawn {
                            out.violations.push(spawn_violation(
                                path,
                                c.line,
                                &f.name,
                                &live,
                                &format!("{what} (via `{}`)", c.callee),
                            ));
                        }
                    }
                }
                if callee.returns_guard {
                    // The helper's acquisition happens at this call site;
                    // the returned guard lives in the caller's scope.
                    for l in callee_locks {
                        live.push(LiveGuard {
                            lock: l,
                            binding: c.binding.clone(),
                            live_end: c.live_end,
                        });
                    }
                }
            }
            Event::Blocking(b) => {
                if in_reactor {
                    out.violations.push(reactor_violation(path, b.line, &f.name, &b.what));
                }
                if spec.guard_blocking && !live.is_empty() {
                    out.violations.push(blocking_violation(path, b.line, &f.name, &live, &b.what));
                }
            }
            Event::Spawn(s) => {
                if spec.guard_spawn && !live.is_empty() {
                    out.violations.push(spawn_violation(path, s.line, &f.name, &live, &s.what));
                }
            }
        }
    }
}

/// Formats a `no-guard-across-blocking` violation.
fn blocking_violation(
    path: &str,
    line: usize,
    fn_name: &str,
    live: &[LiveGuard],
    what: &str,
) -> Violation {
    Violation {
        path: path.to_string(),
        line,
        rule: "no-guard-across-blocking",
        message: format!(
            "guard on {} held across blocking {what} in fn `{fn_name}` — \
             drop the guard (or clone what it protects) before blocking",
            held_list(live)
        ),
    }
}

/// Formats a `no-blocking-in-reactor` violation.
fn reactor_violation(path: &str, line: usize, fn_name: &str, what: &str) -> Violation {
    Violation {
        path: path.to_string(),
        line,
        rule: "no-blocking-in-reactor",
        message: format!(
            "blocking {what} in reactor fn `{fn_name}` — the reactor thread owns \
             every connection, so one blocking call stalls all of them; hand the \
             work to a worker or use a readiness-driven (WouldBlock) call"
        ),
    }
}

/// Formats a `no-guard-across-spawn` violation.
fn spawn_violation(
    path: &str,
    line: usize,
    fn_name: &str,
    live: &[LiveGuard],
    what: &str,
) -> Violation {
    Violation {
        path: path.to_string(),
        line,
        rule: "no-guard-across-spawn",
        message: format!(
            "guard on {} live across {what} in fn `{fn_name}` — the spawned \
             thread's lifetime is unbounded while the lock stays held",
            held_list(live)
        ),
    }
}

/// Renders the live-guard set for a diagnostic.
fn held_list(live: &[LiveGuard]) -> String {
    let names: BTreeSet<&str> = live.iter().map(|g| g.lock.as_str()).collect();
    names.into_iter().collect::<Vec<_>>().join(", ")
}

/// Records the first witness of an edge; self-edges are skipped (sharded
/// locks share one identity, and re-acquiring the same mutex is caught by
/// the debug-build registry instead).
fn record_edge(
    edges: &mut BTreeMap<(String, String), EdgeSite>,
    from: &str,
    to: &str,
    path: &str,
    line: usize,
    context: &str,
) {
    if from == to {
        return;
    }
    edges.entry((from.to_string(), to.to_string())).or_insert_with(|| EdgeSite {
        from: from.to_string(),
        to: to.to_string(),
        path: path.to_string(),
        line,
        context: context.to_string(),
    });
}

/// Finds cycles in a directed edge list. Returns one canonical cycle per
/// strongly connected component of size ≥ 2, as a node path whose first
/// and last elements are equal (`a -> b -> a` is `["a","b","a"]`), with
/// the smallest node first for determinism.
pub fn find_cycles(edges: &[(String, String)]) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for (a, b) in edges {
        adj.entry(a).or_default().insert(b);
        nodes.insert(a);
        nodes.insert(b);
    }
    let sccs = tarjan(&nodes, &adj);
    let mut cycles = Vec::new();
    for scc in sccs {
        if scc.len() < 2 {
            continue;
        }
        let inside: BTreeSet<&str> = scc.iter().copied().collect();
        let start = *scc.iter().min().expect("non-empty SCC");
        // DFS within the SCC from `start` back to itself.
        if let Some(path) = cycle_path(start, &inside, &adj) {
            cycles.push(path.into_iter().map(str::to_string).collect());
        }
    }
    cycles
}

/// Iterative Tarjan SCC over string nodes.
fn tarjan<'a>(
    nodes: &BTreeSet<&'a str>,
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
) -> Vec<Vec<&'a str>> {
    #[derive(Default, Clone)]
    struct NodeState {
        index: Option<usize>,
        lowlink: usize,
        on_stack: bool,
    }
    let mut state: BTreeMap<&str, NodeState> = BTreeMap::new();
    let mut stack: Vec<&str> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<&str>> = Vec::new();
    let empty = BTreeSet::new();

    for &root in nodes {
        if state.get(root).and_then(|s| s.index).is_some() {
            continue;
        }
        // Explicit DFS stack: (node, neighbor iterator position).
        let mut dfs: Vec<(&str, Vec<&str>, usize)> = Vec::new();
        let neigh: Vec<&str> = adj.get(root).unwrap_or(&empty).iter().copied().collect();
        state.entry(root).or_default().index = Some(next_index);
        state.entry(root).or_default().lowlink = next_index;
        state.entry(root).or_default().on_stack = true;
        stack.push(root);
        next_index += 1;
        dfs.push((root, neigh, 0));
        while let Some((v, neighbors, mut pos)) = dfs.pop() {
            let mut descended = false;
            while pos < neighbors.len() {
                let w = neighbors[pos];
                pos += 1;
                let w_state = state.entry(w).or_default().clone();
                match w_state.index {
                    None => {
                        state.entry(w).or_default().index = Some(next_index);
                        state.entry(w).or_default().lowlink = next_index;
                        state.entry(w).or_default().on_stack = true;
                        stack.push(w);
                        next_index += 1;
                        let wn: Vec<&str> = adj.get(w).unwrap_or(&empty).iter().copied().collect();
                        dfs.push((v, neighbors, pos));
                        dfs.push((w, wn, 0));
                        descended = true;
                        break;
                    }
                    Some(wi) if w_state.on_stack => {
                        let vl = state.entry(v).or_default().lowlink;
                        state.entry(v).or_default().lowlink = vl.min(wi);
                    }
                    _ => {}
                }
            }
            if descended {
                continue;
            }
            // v is finished: pop an SCC if v is a root.
            let v_state = state.entry(v).or_default().clone();
            if Some(v_state.lowlink) == v_state.index {
                let mut scc = Vec::new();
                while let Some(w) = stack.pop() {
                    state.entry(w).or_default().on_stack = false;
                    scc.push(w);
                    if w == v {
                        break;
                    }
                }
                scc.sort_unstable();
                sccs.push(scc);
            }
            // Propagate lowlink to the parent.
            if let Some((p, _, _)) = dfs.last() {
                let pl = state.entry(p).or_default().lowlink;
                let vl = state.entry(v).or_default().lowlink;
                if vl < pl {
                    state.entry(p).or_default().lowlink = vl;
                }
            }
        }
    }
    sccs
}

/// A concrete cycle path from `start` back to itself within `inside`.
fn cycle_path<'a>(
    start: &'a str,
    inside: &BTreeSet<&'a str>,
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
) -> Option<Vec<&'a str>> {
    let mut path = vec![start];
    let mut visited: BTreeSet<&str> = BTreeSet::new();
    visited.insert(start);
    loop {
        let cur = *path.last()?;
        let next = adj
            .get(cur)?
            .iter()
            .filter(|n| inside.contains(*n))
            .find(|n| **n == start || !visited.contains(*n))?;
        if *next == start {
            path.push(start);
            return Some(path);
        }
        visited.insert(next);
        path.push(next);
    }
}

/// Output format for the CLI driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// `path:line: [rule] message` lines plus a summary on stderr.
    Text,
    /// A single JSON object on stdout (for CI artifact upload).
    Json,
}

/// CLI entry point: analyze the production crate set under `root`, filter
/// through `lint-allow.toml`, and report. Exits nonzero on violations.
pub fn run(root: &Path, format: OutputFormat, verbose: bool) -> ExitCode {
    let allow_path = root.join("crates/xtask/lint-allow.toml");
    let allowlist = Allowlist::load(&allow_path);
    if !allowlist.errors.is_empty() {
        eprintln!("error: malformed {}:", allow_path.display());
        for e in &allowlist.errors {
            eprintln!("  {e}");
        }
        return ExitCode::FAILURE;
    }

    let analysis = analyze_tree(root, DEFAULT_SPECS);

    // Allowlist filtering needs the flagged line's text; re-read lazily.
    let mut line_cache: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut kept = Vec::new();
    let mut suppressed = 0usize;
    for v in &analysis.violations {
        let lines = line_cache.entry(v.path.clone()).or_insert_with(|| {
            std::fs::read_to_string(root.join(&v.path))
                .map(|t| t.lines().map(str::to_string).collect())
                .unwrap_or_default()
        });
        let raw = lines.get(v.line.saturating_sub(1)).map(String::as_str).unwrap_or("");
        match allowlist.matches(v.rule, &v.path, raw, raw) {
            Some(_) => suppressed += 1,
            None => kept.push(v.clone()),
        }
    }

    match format {
        OutputFormat::Text => {
            for v in &kept {
                println!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.message);
            }
            if verbose {
                for d in &analysis.locks {
                    eprintln!("lock: {} ({}:{})", d.id, d.path, d.line);
                }
                for e in &analysis.edges {
                    eprintln!(
                        "edge: {} -> {} at {}:{} ({})",
                        e.from, e.to, e.path, e.line, e.context
                    );
                }
            }
            eprintln!(
                "xtask analyze: {} file(s), {} fn(s), {} lock(s), {} edge(s), \
                 {} violation(s), {} suppressed by allowlist, {} unresolved acquisition(s)",
                analysis.files,
                analysis.functions,
                analysis.locks.len(),
                analysis.edges.len(),
                kept.len(),
                suppressed,
                analysis.unresolved,
            );
        }
        OutputFormat::Json => {
            let mut out = String::from("{\"tool\":\"xtask-analyze\",\"violations\":[");
            for (i, v) in kept.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"path\":{},\"line\":{},\"rule\":{},\"message\":{}}}",
                    json_str(&v.path),
                    v.line,
                    json_str(v.rule),
                    json_str(&v.message)
                ));
            }
            out.push_str("],\"locks\":[");
            for (i, d) in analysis.locks.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json_str(&d.id));
            }
            out.push_str(&format!(
                "],\"summary\":{{\"files\":{},\"functions\":{},\"locks\":{},\"edges\":{},\
                 \"violations\":{},\"suppressed\":{},\"unresolved\":{}}}}}",
                analysis.files,
                analysis.functions,
                analysis.locks.len(),
                analysis.edges.len(),
                kept.len(),
                suppressed,
                analysis.unresolved,
            ));
            println!("{out}");
        }
    }

    if kept.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(a: &str, b: &str) -> (String, String) {
        (a.to_string(), b.to_string())
    }

    #[test]
    fn two_cycle_detected() {
        let cycles = find_cycles(&[e("a", "b"), e("b", "a")]);
        assert_eq!(cycles, vec![vec!["a".to_string(), "b".to_string(), "a".to_string()]]);
    }

    #[test]
    fn three_cycle_detected() {
        let cycles = find_cycles(&[e("b", "c"), e("c", "a"), e("a", "b")]);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].first(), cycles[0].last());
        assert_eq!(cycles[0].len(), 4);
        assert_eq!(cycles[0][0], "a");
    }

    #[test]
    fn dag_has_no_cycles() {
        let cycles = find_cycles(&[e("a", "b"), e("b", "c"), e("a", "c")]);
        assert!(cycles.is_empty());
    }

    #[test]
    fn disjoint_cycles_both_reported() {
        let cycles = find_cycles(&[e("a", "b"), e("b", "a"), e("x", "y"), e("y", "x")]);
        assert_eq!(cycles.len(), 2);
    }

    #[test]
    fn diamond_with_back_edge_is_one_cycle() {
        // a -> b -> d, a -> c -> d, d -> a: one SCC containing all four.
        let cycles =
            find_cycles(&[e("a", "b"), e("b", "d"), e("a", "c"), e("c", "d"), e("d", "a")]);
        assert_eq!(cycles.len(), 1);
        let c = &cycles[0];
        assert_eq!(c.first(), c.last());
        assert_eq!(c[0], "a");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
