//! Parser for `crates/xtask/lint-allow.toml`, the lint allowlist.
//!
//! The file is a sequence of `[[allow]]` tables with string keys. A tiny
//! hand-rolled parser keeps the driver dependency-free; the accepted
//! subset is exactly what the file uses:
//!
//! ```toml
//! [[allow]]
//! rule = "no-panic"
//! path = "crates/dewey/src/codec.rs"
//! pattern = ".expect(\"pushed above\")"   # optional line substring
//! reason = "why this site is exempt"      # required, non-empty
//! ```

use std::path::Path;

/// One allowlist entry.
#[derive(Debug, Clone, Default)]
pub struct AllowEntry {
    /// Rule id the entry applies to (e.g. `no-panic`).
    pub rule: String,
    /// Workspace-relative path suffix the entry applies to.
    pub path: String,
    /// Optional substring the flagged line must contain; empty matches any
    /// line in the file.
    pub pattern: String,
    /// Human explanation — required so every exemption is justified.
    pub reason: String,
    /// Line in the allowlist file, for diagnostics.
    pub defined_at: usize,
}

/// Parse result: entries plus any config errors (which fail the lint run).
#[derive(Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
    pub errors: Vec<String>,
}

impl Allowlist {
    /// Loads the allowlist, treating a missing file as empty.
    pub fn load(path: &Path) -> Allowlist {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::parse(&text),
            Err(_) => Allowlist::default(),
        }
    }

    /// Parses the TOML subset described in the module docs.
    pub fn parse(text: &str) -> Allowlist {
        let mut list = Allowlist::default();
        let mut current: Option<AllowEntry> = None;
        for (idx, raw_line) in text.lines().enumerate() {
            let line = strip_toml_comment(raw_line);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                list.push(current.take(), idx + 1);
                current = Some(AllowEntry { defined_at: idx + 1, ..AllowEntry::default() });
                continue;
            }
            if line.starts_with('[') {
                list.errors.push(format!("line {}: unknown table `{line}`", idx + 1));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                list.errors.push(format!("line {}: expected `key = \"value\"`", idx + 1));
                continue;
            };
            let Some(value) = parse_toml_string(value.trim()) else {
                list.errors.push(format!(
                    "line {}: value for `{}` must be a double-quoted string",
                    idx + 1,
                    key.trim()
                ));
                continue;
            };
            let Some(entry) = current.as_mut() else {
                list.errors.push(format!("line {}: key outside any [[allow]] table", idx + 1));
                continue;
            };
            match key.trim() {
                "rule" => entry.rule = value,
                "path" => entry.path = value,
                "pattern" => entry.pattern = value,
                "reason" => entry.reason = value,
                other => list.errors.push(format!("line {}: unknown key `{other}`", idx + 1)),
            }
        }
        let end = text.lines().count();
        list.push(current.take(), end);
        list
    }

    fn push(&mut self, entry: Option<AllowEntry>, at: usize) {
        let Some(entry) = entry else { return };
        if entry.rule.is_empty() {
            self.errors.push(format!("entry ending at line {at}: missing `rule`"));
        } else if entry.path.is_empty() {
            self.errors.push(format!("entry ending at line {at}: missing `path`"));
        } else if entry.reason.trim().is_empty() {
            self.errors.push(format!(
                "entry ending at line {at}: `reason` is required — every exemption must be justified"
            ));
        } else {
            self.entries.push(entry);
        }
    }

    /// Returns the index of the first entry matching a violation, if any.
    pub fn matches(
        &self,
        rule: &str,
        path: &str,
        line_code: &str,
        line_raw: &str,
    ) -> Option<usize> {
        self.entries.iter().position(|e| {
            e.rule == rule
                && (path == e.path || path.ends_with(&e.path))
                && (e.pattern.is_empty()
                    || line_code.contains(&e.pattern)
                    || line_raw.contains(&e.pattern))
        })
    }
}

/// Strips a `#` comment, respecting `"` strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

/// Parses a double-quoted TOML basic string with `\"` and `\\` escapes.
fn parse_toml_string(value: &str) -> Option<String> {
    let inner = value.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                other => {
                    out.push('\\');
                    out.push(other);
                }
            }
        } else if c == '"' {
            return None; // unescaped quote mid-string: malformed
        } else {
            out.push(c);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_rejects_missing_reason() {
        let text = r#"
# comment
[[allow]]
rule = "no-panic"
path = "crates/dewey/src/codec.rs"
pattern = ".expect(\"x\")"
reason = "bounded above"

[[allow]]
rule = "no-panic"
path = "crates/core/src/engine.rs"
"#;
        let list = Allowlist::parse(text);
        assert_eq!(list.entries.len(), 1);
        assert_eq!(list.errors.len(), 1, "{:?}", list.errors);
        assert_eq!(list.entries[0].pattern, ".expect(\"x\")");
    }

    #[test]
    fn matching_by_suffix_and_pattern() {
        let mut list = Allowlist::default();
        list.entries.push(AllowEntry {
            rule: "no-panic".into(),
            path: "crates/dewey/src/codec.rs".into(),
            pattern: ".expect(".into(),
            reason: "r".into(),
            defined_at: 1,
        });
        assert!(list
            .matches("no-panic", "crates/dewey/src/codec.rs", "x.expect(msg)", "")
            .is_some());
        assert!(list
            .matches("no-panic", "crates/dewey/src/codec.rs", "x.unwrap()", "")
            .is_none());
        assert!(list
            .matches("no-truncating-cast", "crates/dewey/src/codec.rs", "x.expect(m)", "")
            .is_none());
    }
}
