//! The GKS-specific lint rules and the driver loop.
//!
//! Rules (ids as they appear in diagnostics and `lint-allow.toml`):
//!
//! * `no-panic` — library crates (`xml`, `dewey`, `text`, `index`, `core`)
//!   must not call `.unwrap()` / `.expect(..)` / `panic!` / `unreachable!` /
//!   `todo!` / `unimplemented!` outside `#[cfg(test)]` modules. A single
//!   out-of-order Dewey id silently corrupts SLCA/ELCA answers, so library
//!   code must surface corruption as typed errors, not process aborts.
//! * `no-truncating-cast` — in the Dewey-bearing crates (`dewey`, `index`,
//!   `core`), `as u8` / `as u16` / `as i8` / `as i16` casts on lines that
//!   mention Dewey component identifiers (step/doc/label/ordinal/depth) are
//!   flagged unless the value is visibly masked on the same line; a
//!   truncated step reorders posting lists without any error.
//! * `pub-fn-docs` — every `pub fn` in `gks-core` and `gks-index` carries a
//!   doc comment. These two crates are the API surface later PRs refactor
//!   against.
//! * `no-process-exit` — `std::process::exit` is reserved for the `cli`
//!   crate; a library that exits the process cannot be embedded in a
//!   server.
//! * `no-raw-timing` — `cli`, `core`, and `server` must not call
//!   `Instant::now()` directly: timing routed through `gks-trace` spans lands in the
//!   aggregated histograms, the trace ring, and the logs, while a raw
//!   stopwatch is invisible to every sink. The few genuinely out-of-band
//!   sites (the accept-loop deadline anchor, the client-side loadgen
//!   harness) are allowlisted with reasons.
//! * `no-eager-decode-in-open` — the index open path (`persist.rs`,
//!   `postings.rs` in `gks-index`) must not slurp shard files with
//!   `fs::read` / `read_to_string` / `read_to_end`: format-v3 opens are
//!   O(dictionary) because the file is served off an mmap and posting
//!   blocks decode lazily, and one eager read would silently regress every
//!   shard open back to O(file).
//!
//! Tests, benches, `datagen`, the offline dependency shims, and this driver
//! itself are exempt by construction (they are not in the scanned set).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use crate::allow::Allowlist;
use crate::scan::{scan_file, Line};
use crate::Violation;

/// Crates whose `src/` must be panic-free. The server joins the list: a
/// panicking worker thread silently shrinks the pool, and the tracer (which
/// runs inside every instrumented call) must never take a request down.
const PANIC_FREE: &[&str] = &["xml", "dewey", "text", "index", "core", "server", "trace"];
/// Crates checked for truncating casts on Dewey component types. The server
/// is deliberately absent: its sources mention `doctor`, which the `doc`
/// marker would false-positive on, and it never manipulates raw Dewey steps.
const CAST_CHECKED: &[&str] = &["dewey", "index", "core"];
/// Crates whose public functions must be documented.
const DOC_REQUIRED: &[&str] = &["core", "index", "server", "trace"];
/// Crates scanned for `process::exit` (everything buildable except `cli`).
const EXIT_CHECKED: &[&str] = &[
    "xml",
    "dewey",
    "text",
    "index",
    "core",
    "baselines",
    "datagen",
    "bench",
    "server",
    "trace",
];
/// Crates where wall-clock reads must flow through `gks-trace`.
const TIMING_CHECKED: &[&str] = &["cli", "core", "server"];
/// Crates whose index open path must stay eager-read free.
const EAGER_DECODE_CHECKED: &[&str] = &["index"];
/// The open-path files within those crates: everything between a `.gksix`
/// path and a searchable index. Other `gks-index` files (the corpus
/// scanner, the delta planner) legitimately read source XML.
const OPEN_PATH_FILES: &[&str] = &["src/persist.rs", "src/postings.rs"];

/// Prints which crates each rule covers (`cargo xtask lint --crates`), one
/// `rule: crate crate …` line per rule. CI greps this to assert new crates
/// actually joined the scanned set instead of trusting the docs.
pub fn print_coverage() {
    for (rule, crates) in [
        ("no-panic", PANIC_FREE),
        ("no-truncating-cast", CAST_CHECKED),
        ("pub-fn-docs", DOC_REQUIRED),
        ("no-process-exit", EXIT_CHECKED),
        ("no-raw-timing", TIMING_CHECKED),
        ("no-eager-decode-in-open", EAGER_DECODE_CHECKED),
    ] {
        println!("{rule}: {}", crates.join(" "));
    }
}

/// Runs every rule; returns the process exit code.
pub fn run(root: &Path, verbose: bool) -> ExitCode {
    let allow_path = root.join("crates/xtask/lint-allow.toml");
    let allowlist = Allowlist::load(&allow_path);
    if !allowlist.errors.is_empty() {
        eprintln!("error: malformed {}:", allow_path.display());
        for e in &allowlist.errors {
            eprintln!("  {e}");
        }
        return ExitCode::FAILURE;
    }

    let mut violations = Vec::new();
    let mut allowed = vec![0usize; allowlist.entries.len()];
    let mut files_scanned = 0usize;

    for krate in crate_union() {
        let src = root.join("crates").join(krate).join("src");
        for file in rust_files(&src) {
            files_scanned += 1;
            let rel = file.strip_prefix(root).unwrap_or(&file).to_string_lossy().replace('\\', "/");
            let Ok(text) = std::fs::read_to_string(&file) else {
                violations.push(Violation {
                    path: rel,
                    line: 0,
                    rule: "io",
                    message: "unreadable source file".into(),
                });
                continue;
            };
            let lines = scan_file(&text);
            let mut file_violations = Vec::new();
            if PANIC_FREE.contains(&krate) {
                check_no_panic(&rel, &lines, &mut file_violations);
            }
            if CAST_CHECKED.contains(&krate) {
                check_truncating_casts(&rel, &lines, &mut file_violations);
            }
            if DOC_REQUIRED.contains(&krate) {
                check_pub_fn_docs(&rel, &lines, &mut file_violations);
            }
            if EXIT_CHECKED.contains(&krate) {
                check_process_exit(&rel, &lines, &mut file_violations);
            }
            if TIMING_CHECKED.contains(&krate) {
                check_raw_timing(&rel, &lines, &mut file_violations);
            }
            if EAGER_DECODE_CHECKED.contains(&krate) {
                check_eager_decode(&rel, &lines, &mut file_violations);
            }
            for v in file_violations {
                let (code, raw) = lines
                    .get(v.line.saturating_sub(1))
                    .map(|l| (l.code.as_str(), l.raw.as_str()))
                    .unwrap_or(("", ""));
                match allowlist.matches(v.rule, &v.path, code, raw) {
                    Some(i) => allowed[i] += 1,
                    None => violations.push(v),
                }
            }
        }
    }

    violations.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    for v in &violations {
        println!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.message);
    }

    // Entries for the analyze rules are invisible to this pass; only
    // lint-rule entries can meaningfully be "unused" here (the analyze
    // driver and `--check-stale` keep the rest honest).
    let lint_rules = [
        "no-panic",
        "no-truncating-cast",
        "pub-fn-docs",
        "no-process-exit",
        "no-raw-timing",
        "no-eager-decode-in-open",
    ];
    let mut unused = 0usize;
    for (entry, hits) in allowlist.entries.iter().zip(&allowed) {
        if !lint_rules.contains(&entry.rule.as_str()) {
            continue;
        }
        if *hits == 0 {
            unused += 1;
            eprintln!(
                "warning: unused allowlist entry (line {}): rule={} path={} pattern={:?}",
                entry.defined_at, entry.rule, entry.path, entry.pattern
            );
        } else if verbose {
            eprintln!("allow: {} x{} {} ({})", entry.rule, hits, entry.path, entry.reason);
        }
    }

    let suppressed: usize = allowed.iter().sum();
    eprintln!(
        "xtask lint: {} file(s) scanned, {} violation(s), {} suppressed by allowlist ({} entries, {} unused)",
        files_scanned,
        violations.len(),
        suppressed,
        allowlist.entries.len(),
        unused,
    );
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Every crate any rule applies to.
fn crate_union() -> Vec<&'static str> {
    let mut all: Vec<&'static str> = PANIC_FREE
        .iter()
        .chain(CAST_CHECKED)
        .chain(DOC_REQUIRED)
        .chain(EXIT_CHECKED)
        .chain(TIMING_CHECKED)
        .copied()
        .collect();
    all.sort_unstable();
    all.dedup();
    all
}

/// Checks that every `lint-allow.toml` entry still matches a source line
/// (`cargo xtask lint --check-stale`): the named file must exist in the
/// scanned tree, and a non-empty `pattern` must still appear in it. Stale
/// entries fail the run so the allowlist cannot outlive the code it
/// excuses.
pub fn run_check_stale(root: &Path) -> ExitCode {
    let allow_path = root.join("crates/xtask/lint-allow.toml");
    let allowlist = Allowlist::load(&allow_path);
    if !allowlist.errors.is_empty() {
        eprintln!("error: malformed {}:", allow_path.display());
        for e in &allowlist.errors {
            eprintln!("  {e}");
        }
        return ExitCode::FAILURE;
    }

    // Every file any rule could scan (the lint crates cover the analyze
    // crates, so one union suffices).
    let mut sources: Vec<(String, String)> = Vec::new();
    for krate in crate_union() {
        let src = root.join("crates").join(krate).join("src");
        for file in rust_files(&src) {
            let rel = file.strip_prefix(root).unwrap_or(&file).to_string_lossy().replace('\\', "/");
            if let Ok(text) = std::fs::read_to_string(&file) {
                sources.push((rel, text));
            }
        }
    }

    let mut stale = 0usize;
    for entry in &allowlist.entries {
        let matching: Vec<&(String, String)> = sources
            .iter()
            .filter(|(rel, _)| rel == &entry.path || rel.ends_with(&entry.path))
            .collect();
        let ok = if matching.is_empty() {
            false
        } else if entry.pattern.is_empty() {
            true // whole-file entries only require the file to exist
        } else {
            matching
                .iter()
                .any(|(_, text)| text.lines().any(|l| l.contains(&entry.pattern)))
        };
        if !ok {
            stale += 1;
            eprintln!(
                "stale allowlist entry (line {}): rule={} path={} pattern={:?} — {}",
                entry.defined_at,
                entry.rule,
                entry.path,
                entry.pattern,
                if matching.is_empty() {
                    "no scanned file matches the path"
                } else {
                    "pattern no longer appears in the file"
                }
            );
        }
    }
    eprintln!(
        "xtask lint --check-stale: {} entr{} checked, {} stale",
        allowlist.entries.len(),
        if allowlist.entries.len() == 1 {
            "y"
        } else {
            "ies"
        },
        stale,
    );
    if stale == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Recursively collects `.rs` files under `dir`, sorted for stable output.
pub fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

const PANIC_PATTERNS: &[(&str, &str)] = &[
    (".unwrap()", "`.unwrap()` in library crate — return a typed error instead"),
    (".expect(", "`.expect(..)` in library crate — return a typed error instead"),
    ("panic!", "`panic!` in library crate — return a typed error instead"),
    (
        "unreachable!",
        "`unreachable!` in library crate — make the state unrepresentable or return an error",
    ),
    ("todo!", "`todo!` in library crate"),
    ("unimplemented!", "`unimplemented!` in library crate"),
];

fn check_no_panic(path: &str, lines: &[Line], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        if line.in_test_mod {
            continue;
        }
        for (pattern, message) in PANIC_PATTERNS {
            for start in match_indices_outside_idents(&line.code, pattern) {
                // Bang macros must be actual invocations — `panic!(..)`,
                // `unreachable!{..}` — not prefixes of longer macro names.
                if pattern.ends_with('!') {
                    let rest = &line.code[start + pattern.len()..];
                    if !(rest.starts_with('(') || rest.starts_with('[') || rest.starts_with('{')) {
                        continue;
                    }
                }
                out.push(Violation {
                    path: path.to_string(),
                    line: i + 1,
                    rule: "no-panic",
                    message: (*message).to_string(),
                });
                break; // one diagnostic per pattern per line
            }
        }
    }
}

/// Identifiers that mark a line as handling Dewey components.
const DEWEY_MARKERS: &[&str] = &["step", "doc", "dewey", "label", "ordinal", "depth"];
const NARROW_CASTS: &[&str] = &["as u8", "as u16", "as i8", "as i16"];

fn check_truncating_casts(path: &str, lines: &[Line], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        if line.in_test_mod {
            continue;
        }
        let lower = line.code.to_lowercase();
        if !DEWEY_MARKERS.iter().any(|m| lower.contains(m)) {
            continue;
        }
        for cast in NARROW_CASTS {
            if let Some(pos) = find_cast(&line.code, cast) {
                // A visible mask on the same line bounds the value; that is
                // the idiomatic LEB128 pattern and is not a truncation bug.
                let before = &line.code[..pos];
                if before.contains("& 0x") || before.contains("&0x") {
                    continue;
                }
                out.push(Violation {
                    path: path.to_string(),
                    line: i + 1,
                    rule: "no-truncating-cast",
                    message: format!(
                        "`{cast}` on a line handling Dewey components — a truncated \
                         step/doc id reorders posting lists silently; use `try_from` \
                         or widen the type"
                    ),
                });
            }
        }
    }
}

fn check_pub_fn_docs(path: &str, lines: &[Line], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        if line.in_test_mod {
            continue;
        }
        let trimmed = line.code.trim_start();
        let is_pub_fn = ["pub fn ", "pub const fn ", "pub unsafe fn ", "pub async fn "]
            .iter()
            .any(|p| trimmed.starts_with(p));
        if !is_pub_fn {
            continue;
        }
        // Walk upward over attributes and blank lines to the nearest
        // substantive line; it must be a doc comment.
        let mut j = i;
        let mut documented = false;
        while j > 0 {
            j -= 1;
            let above = &lines[j];
            let t = above.raw.trim_start();
            if above.is_doc {
                documented = true;
                break;
            }
            if t.starts_with("#[") || t.starts_with("#!") || t.ends_with(']') && t.starts_with(')')
            {
                continue; // attribute (possibly the tail of a multi-line one)
            }
            if t.is_empty() {
                break; // blank line separates any docs from the item
            }
            break;
        }
        if !documented {
            let name = fn_name(trimmed);
            out.push(Violation {
                path: path.to_string(),
                line: i + 1,
                rule: "pub-fn-docs",
                message: format!(
                    "public function `{name}` has no doc comment — gks-core/gks-index \
                     are the API surface; document contract and errors"
                ),
            });
        }
    }
}

fn check_process_exit(path: &str, lines: &[Line], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        if line.in_test_mod {
            continue;
        }
        if line.code.contains("process::exit") {
            out.push(Violation {
                path: path.to_string(),
                line: i + 1,
                rule: "no-process-exit",
                message: "`std::process::exit` outside the cli crate — return an error \
                          and let the caller decide"
                    .to_string(),
            });
        }
    }
}

fn check_raw_timing(path: &str, lines: &[Line], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        if line.in_test_mod {
            continue;
        }
        if line.code.contains("Instant::now") {
            out.push(Violation {
                path: path.to_string(),
                line: i + 1,
                rule: "no-raw-timing",
                message: "`Instant::now()` outside gks-trace — open a `gks_trace::span` \
                          (or read `Span::elapsed_micros`) so the measurement reaches \
                          the histograms, the trace ring, and the logs"
                    .to_string(),
            });
        }
    }
}

/// Whole-file reads that would drag a shard open back to O(file).
const EAGER_READ_PATTERNS: &[&str] = &["fs::read(", "fs::read_to_string(", "read_to_end("];

fn check_eager_decode(path: &str, lines: &[Line], out: &mut Vec<Violation>) {
    if !OPEN_PATH_FILES.iter().any(|f| path.ends_with(f)) {
        return;
    }
    for (i, line) in lines.iter().enumerate() {
        if line.in_test_mod {
            continue;
        }
        for pattern in EAGER_READ_PATTERNS {
            if line.code.contains(pattern) {
                out.push(Violation {
                    path: path.to_string(),
                    line: i + 1,
                    rule: "no-eager-decode-in-open",
                    message: format!(
                        "`{}` in the index open path — a format-v3 open must stay \
                         O(dictionary): serve the file off the mmap and let posting \
                         blocks decode lazily",
                        pattern.trim_end_matches('(')
                    ),
                });
                break; // one diagnostic per line
            }
        }
    }
}

/// Extracts the function name from a `pub fn ...` line for diagnostics.
fn fn_name(decl: &str) -> &str {
    let after = decl
        .trim_start_matches("pub ")
        .trim_start_matches("const ")
        .trim_start_matches("unsafe ")
        .trim_start_matches("async ")
        .trim_start_matches("fn ");
    let end = after.find(|c: char| !(c.is_alphanumeric() || c == '_')).unwrap_or(after.len());
    &after[..end]
}

/// Occurrences of `needle` in `haystack` that are not part of a longer
/// identifier (so `panic!` does not match `is_panicking!`, and `.unwrap()`
/// does not match `.unwrap_or()` because the needle includes punctuation).
fn match_indices_outside_idents(haystack: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let first_is_ident = needle.chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
    for (pos, _) in haystack.match_indices(needle) {
        if first_is_ident {
            let before = haystack[..pos].chars().next_back();
            if before.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                continue; // rejects `my_panic!`-style longer identifiers
            }
        }
        out.push(pos);
    }
    out
}

/// Finds a narrowing cast, requiring a word boundary after the type name so
/// `as u8` does not match `as u80` (not a real type, but be strict).
fn find_cast(code: &str, cast: &str) -> Option<usize> {
    for (pos, _) in code.match_indices(cast) {
        let after = code[pos + cast.len()..].chars().next();
        if after.is_none_or(|c| !(c.is_alphanumeric() || c == '_')) {
            return Some(pos);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_file;

    fn run_rule(
        src: &str,
        rule: fn(&str, &[Line], &mut Vec<Violation>),
    ) -> Vec<(usize, &'static str)> {
        let lines = scan_file(src);
        let mut out = Vec::new();
        rule("test.rs", &lines, &mut out);
        out.into_iter().map(|v| (v.line, v.rule)).collect()
    }

    #[test]
    fn no_panic_flags_real_sites_only() {
        let src = "\
fn a() { x.unwrap(); }
fn b() { x.unwrap_or(0); }
fn c() { x.expect(\"boom\"); }
// x.unwrap() in a comment
let s = \"panic!\";
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); }
}
";
        let hits = run_rule(src, check_no_panic);
        assert_eq!(hits, vec![(1, "no-panic"), (3, "no-panic")]);
    }

    #[test]
    fn truncating_cast_needs_dewey_marker_and_no_mask() {
        let src = "\
let a = step as u16;
let b = value as u16;
let c = (step & 0x7f) as u8;
let d = doc_id.0 as i16;
";
        let hits = run_rule(src, check_truncating_casts);
        assert_eq!(hits, vec![(1, "no-truncating-cast"), (4, "no-truncating-cast")]);
    }

    #[test]
    fn pub_fn_docs_checks_attributes_and_blanks() {
        let src = "\
/// Documented.
pub fn good() {}

/// Documented through an attribute.
#[inline]
pub fn good_attr() {}

pub fn bad() {}

fn private_ok() {}
";
        let hits = run_rule(src, check_pub_fn_docs);
        assert_eq!(hits, vec![(8, "pub-fn-docs")]);
    }

    #[test]
    fn process_exit_flagged() {
        let src = "fn f() { std::process::exit(2); }\n";
        let hits = run_rule(src, check_process_exit);
        assert_eq!(hits, vec![(1, "no-process-exit")]);
    }

    #[test]
    fn eager_decode_fires_in_open_path_files_only() {
        // The firing fixture: every forbidden whole-file read, in a file on
        // the open path.
        let src = "\
fn load(path: &Path) { let bytes = fs::read(path); }
fn load2(path: &Path) { let text = fs::read_to_string(path); }
fn load3(mut f: File) { f.read_to_end(&mut buf); }
fn ok(map: &Mmap) { let dict = &map.as_slice()[off..]; }
#[cfg(test)]
mod tests {
    fn t(path: &Path) { let bytes = fs::read(path); }
}
";
        let lines = scan_file(src);
        let mut out = Vec::new();
        check_eager_decode("crates/index/src/persist.rs", &lines, &mut out);
        let hits: Vec<(usize, &str)> = out.iter().map(|v| (v.line, v.rule)).collect();
        assert_eq!(
            hits,
            vec![
                (1, "no-eager-decode-in-open"),
                (2, "no-eager-decode-in-open"),
                (3, "no-eager-decode-in-open"),
            ]
        );
        // The same source outside the open path is none of this rule's
        // business (the delta planner reads corpus XML with fs::read).
        let mut elsewhere = Vec::new();
        check_eager_decode("crates/index/src/delta.rs", &lines, &mut elsewhere);
        assert!(elsewhere.is_empty());
    }

    #[test]
    fn raw_timing_flagged_outside_tests_only() {
        let src = "\
fn f() { let t = Instant::now(); }
fn g() { let span = gks_trace::span(SpanKind::Parse); }
// Instant::now() in a comment
#[cfg(test)]
mod tests {
    fn t() { let t = Instant::now(); }
}
";
        let hits = run_rule(src, check_raw_timing);
        assert_eq!(hits, vec![(1, "no-raw-timing")]);
    }
}
