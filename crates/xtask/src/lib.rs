//! Workspace automation library for the GKS repo.
//!
//! The binary (`cargo xtask`) is a thin dispatcher over this library so the
//! integration tests can drive the lint and analysis passes directly against
//! fixture trees. Everything here is dependency-free by design: it must run
//! in the offline build container and stay fast enough to sit in front of
//! every CI job.
//!
//! Modules:
//!
//! * [`scan`] — comment/string stripping and `#[cfg(test)]` region tracking.
//! * [`allow`] — the `lint-allow.toml` escape hatch shared by every rule.
//! * [`lint`] — line-level source rules (`cargo xtask lint`).
//! * [`model`] — the per-function concurrency model (locks, guards, calls).
//! * [`analyze`] — concurrency rules over the model (`cargo xtask analyze`).

// Not an engine library crate: unwrap/expect on deterministic, known-good
// data is acceptable here. The hard panic-free rule is scoped to the
// engine crates and enforced by `cargo xtask lint` (see docs/ANALYSIS.md).
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod allow;
pub mod analyze;
pub mod lint;
pub mod model;
pub mod scan;

/// A single diagnostic, shared by the lint and analyze passes.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number (0 when the whole file is the problem).
    pub line: usize,
    /// Rule id as it appears in diagnostics and `lint-allow.toml`.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}
