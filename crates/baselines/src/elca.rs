//! Exclusive LCA (ELCA) computation, XRank semantics.
//!
//! A node `v` is an ELCA iff, after *excluding* every occurrence that lies
//! inside a descendant which itself contains all keywords (a CA node), `v`
//! still contains at least one occurrence of every keyword. "An ELCA set of
//! nodes is a superset of the SLCA nodes" (paper §1).
//!
//! Algorithm: (1) aggregate keyword masks into all ancestors of all postings
//! (the CA map); (2) every posting is then *attributed* to its lowest CA
//! ancestor — occurrences below a CA never leak past it; (3) ELCA = CA nodes
//! whose attributed (exclusive) mask is full.

use gks_dewey::DeweyId;
use gks_index::fasthash::{FastMap, FastSet};

/// Computes the ELCA set from document-ordered posting lists (one per
/// keyword). Returns nodes in document order. Empty when any list is empty
/// (AND-semantics).
pub fn elca(lists: &[Vec<DeweyId>]) -> Vec<DeweyId> {
    let n = lists.len();
    if n == 0 || n > 64 || lists.iter().any(Vec::is_empty) {
        return Vec::new();
    }
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };

    // 1. CA map: full masks for every ancestor of every posting.
    let mut masks: FastMap<DeweyId, u64> = FastMap::default();
    for (kw, list) in lists.iter().enumerate() {
        let bit = 1u64 << kw;
        for id in list {
            let mut node = id.clone();
            loop {
                let m = masks.entry(node.clone()).or_insert(0);
                if *m & bit != 0 {
                    break;
                }
                *m |= bit;
                match node.parent() {
                    Some(p) => node = p,
                    None => break,
                }
            }
        }
    }
    let ca_set: FastSet<DeweyId> =
        masks.iter().filter(|(_, m)| **m == full).map(|(d, _)| d.clone()).collect();
    if ca_set.is_empty() {
        return Vec::new();
    }

    // 2. Attribute each posting to its lowest CA ancestor-or-self.
    let mut excl: FastMap<DeweyId, u64> = FastMap::default();
    for (kw, list) in lists.iter().enumerate() {
        let bit = 1u64 << kw;
        for id in list {
            let mut node = Some(id.clone());
            while let Some(v) = node {
                if ca_set.contains(&v) {
                    *excl.entry(v).or_insert(0) |= bit;
                    break;
                }
                node = v.parent();
            }
        }
    }

    // 3. ELCA = CA nodes with a full exclusive mask.
    let mut out: Vec<DeweyId> =
        excl.into_iter().filter(|(_, m)| *m == full).map(|(d, _)| d).collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slca::slca_ca_map;
    use gks_dewey::DocId;

    fn d(steps: &[u32]) -> DeweyId {
        DeweyId::new(DocId(0), steps.to_vec())
    }

    #[test]
    fn elca_is_superset_of_slca() {
        // x1 = [0] has its own {k0,k1} plus a nested x2 = [0,9] with both.
        let lists = vec![vec![d(&[0, 0]), d(&[0, 9, 0])], vec![d(&[0, 1]), d(&[0, 9, 1])]];
        let e = elca(&lists);
        let s = slca_ca_map(&lists);
        assert_eq!(s, vec![d(&[0, 9])]);
        assert_eq!(e, vec![d(&[0]), d(&[0, 9])], "x1 has exclusive witnesses");
        for v in &s {
            assert!(e.contains(v), "ELCA ⊇ SLCA");
        }
    }

    #[test]
    fn ancestor_without_exclusive_witness_is_not_elca() {
        // Root's only occurrences are inside the CA child [0].
        let lists = vec![vec![d(&[0, 0])], vec![d(&[0, 1])]];
        assert_eq!(elca(&lists), vec![d(&[0])]);
    }

    #[test]
    fn occurrences_inside_non_ca_children_count_for_ancestor() {
        // Root has k0 in child [0] and k1 in child [1]; neither child is CA,
        // so the root is the single ELCA.
        let lists = vec![vec![d(&[0, 0])], vec![d(&[1, 0])]];
        assert_eq!(elca(&lists), vec![d(&[])]);
    }

    #[test]
    fn and_semantics() {
        assert!(elca(&[vec![d(&[0])], vec![]]).is_empty());
        assert!(elca(&[]).is_empty());
    }

    #[test]
    fn partial_mask_leaks_past_non_ca_node() {
        // [0] contains k0 only (not CA); its occurrence must still witness
        // the root together with k1 elsewhere.
        let lists = vec![vec![d(&[0, 0, 0])], vec![d(&[1])]];
        assert_eq!(elca(&lists), vec![d(&[])]);
    }

    #[test]
    fn chain_of_cas_attribution() {
        // CA chain: root ⊃ [0] ⊃ [0,0], each with both keywords directly.
        let lists = vec![
            vec![d(&[0, 0, 0]), d(&[0, 1]), d(&[1])],
            vec![d(&[0, 0, 1]), d(&[0, 2]), d(&[2])],
        ];
        // [0,0] is CA+ELCA; [0] has exclusive {k0@[0,1], k1@[0,2]} → ELCA;
        // root has exclusive {k0@[1], k1@[2]} → ELCA.
        assert_eq!(elca(&lists), vec![d(&[]), d(&[0]), d(&[0, 0])]);
    }
}
