//! The naive exponential route to GKS semantics (paper §4, Lemma 3).
//!
//! "A naive approach would be to create all the keyword subsets (of size
//! ≥ s) for query Q, and for each of these keyword subsets, identify the LCA
//! nodes. … this approach results in an exponential number of sub-queries."
//! This module implements exactly that strawman so the benchmark harness can
//! demonstrate the blow-up against GKS's single-pass method.

use gks_dewey::DeweyId;

use crate::slca::{remove_ancestors, slca_ca_map};

/// Result of a naive run, including the cost accounting the Lemma 3
/// experiment reports.
#[derive(Debug, Clone)]
pub struct NaiveOutcome {
    /// Union of the per-subset SLCA sets, ancestors removed, document order.
    pub nodes: Vec<DeweyId>,
    /// Number of sub-queries executed: Σ_{i=s}^{n} (n choose i).
    pub subqueries: u64,
}

/// Runs SLCA once per keyword subset of size ≥ `s` and unions the results.
///
/// `lists` are the per-keyword posting lists. Subsets containing a keyword
/// with an empty list produce NULL under AND-semantics and are skipped by
/// SLCA itself; they are still *counted* — the naive approach cannot know in
/// advance.
pub fn naive_gks(lists: &[Vec<DeweyId>], s: usize) -> NaiveOutcome {
    let n = lists.len();
    let s = s.clamp(1, n.max(1));
    let mut nodes: Vec<DeweyId> = Vec::new();
    let mut subqueries = 0u64;
    if n == 0 || n > 24 {
        // 2^24 subsets is already far past the point the experiment makes;
        // refuse quietly rather than hang.
        return NaiveOutcome { nodes, subqueries };
    }
    let mut subset_lists: Vec<Vec<DeweyId>> = Vec::with_capacity(n);
    for mask in 1u32..(1u32 << n) {
        if (mask.count_ones() as usize) < s {
            continue;
        }
        subqueries += 1;
        subset_lists.clear();
        for (i, list) in lists.iter().enumerate() {
            if mask & (1 << i) != 0 {
                subset_lists.push(list.clone());
            }
        }
        nodes.extend(slca_ca_map(&subset_lists));
    }
    nodes.sort_unstable();
    nodes.dedup();
    NaiveOutcome { nodes: remove_ancestors(nodes), subqueries }
}

/// The number of sub-queries the naive approach needs: Σ_{i=s}^{n} C(n, i).
pub fn subquery_count(n: usize, s: usize) -> u64 {
    (s..=n).map(|i| binomial(n, i)).sum()
}

fn binomial(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u64 = 1;
    for i in 0..k {
        acc = acc * (n - i) as u64 / (i + 1) as u64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use gks_dewey::DocId;

    fn d(steps: &[u32]) -> DeweyId {
        DeweyId::new(DocId(0), steps.to_vec())
    }

    #[test]
    fn subquery_counts_match_lemma3() {
        // Lemma 3: for s = n/2 the count exceeds 2^(n/2).
        assert_eq!(subquery_count(4, 1), 15); // 2^4 - 1
        assert_eq!(subquery_count(4, 2), 11);
        assert_eq!(subquery_count(8, 4), 163);
        for n in [4usize, 8, 12, 16] {
            let s = n / 2;
            assert!(subquery_count(n, s) as f64 >= 2f64.powi((n / 2) as i32));
        }
    }

    #[test]
    fn naive_counts_executed_subqueries() {
        let lists = vec![vec![d(&[0])], vec![d(&[1])], vec![d(&[2])]];
        let out = naive_gks(&lists, 2);
        assert_eq!(out.subqueries, subquery_count(3, 2));
    }

    #[test]
    fn naive_finds_partial_match_nodes() {
        // k0,k1 live under [0]; k2 lives under [5] alone. SLCA of the full
        // query is the root; the subset {k0,k1} exposes [0].
        let lists = vec![vec![d(&[0, 0])], vec![d(&[0, 1])], vec![d(&[5, 0])]];
        let out = naive_gks(&lists, 2);
        assert!(out.nodes.contains(&d(&[0])), "{:?}", out.nodes);
    }

    #[test]
    fn naive_with_s_one_includes_single_keyword_nodes() {
        let lists = vec![vec![d(&[0, 0])], vec![d(&[1, 0])]];
        let out = naive_gks(&lists, 1);
        assert!(out.nodes.contains(&d(&[0, 0])));
        assert!(out.nodes.contains(&d(&[1, 0])));
        assert_eq!(out.subqueries, 3);
    }

    #[test]
    fn oversized_query_is_refused() {
        let lists: Vec<Vec<DeweyId>> = (0..25).map(|i| vec![d(&[i])]).collect();
        let out = naive_gks(&lists, 1);
        assert_eq!(out.subqueries, 0);
        assert!(out.nodes.is_empty());
    }
}
