//! DOM-based ground truth for property and integration tests.
//!
//! Independently of the index and the search engine, the oracle walks a
//! document tree and computes, for every element node, the exact set of
//! query keywords contained in its subtree — using the same Dewey ordinal
//! assignment, text analysis, and phrase (co-occurrence within one text
//! element) semantics as the indexer. Tests then check GKS responses against
//! these masks.

use gks_core::query::{Keyword, Query};
use gks_dewey::{DeweyId, DocId};
use gks_index::fasthash::{FastMap, FastSet};
use gks_index::{Corpus, IndexOptions};
use gks_text::Analyzer;
use gks_xml::{Document, Node};

/// Exact matched-keyword masks for every element node of a corpus.
#[derive(Debug)]
pub struct GroundTruth {
    /// Subtree keyword mask per node.
    pub masks: FastMap<DeweyId, u64>,
    /// Number of query keywords.
    pub n_keywords: usize,
}

impl GroundTruth {
    /// Computes ground truth for `query` over `corpus` under the same
    /// options the index was built with.
    pub fn compute(corpus: &Corpus, query: &Query, options: &IndexOptions) -> GroundTruth {
        let analyzer = Analyzer::new(options.analyzer_options());
        let keywords = query.normalized(&analyzer);
        let mut masks: FastMap<DeweyId, u64> = FastMap::default();
        for (i, doc) in corpus.docs().iter().enumerate() {
            let parsed = Document::parse(&doc.xml).expect("oracle corpus must be well-formed");
            walk(
                parsed.root(),
                DeweyId::root(DocId(i as u32)),
                &analyzer,
                &keywords,
                options,
                &mut masks,
            );
        }
        GroundTruth { masks, n_keywords: keywords.len() }
    }

    /// Nodes whose subtree contains at least `s` distinct keywords, document
    /// order.
    pub fn qualifying(&self, s: usize) -> Vec<DeweyId> {
        let mut out: Vec<DeweyId> = self
            .masks
            .iter()
            .filter(|(_, m)| m.count_ones() as usize >= s)
            .map(|(d, _)| d.clone())
            .collect();
        out.sort_unstable();
        out
    }

    /// The mask of one node (0 for unknown nodes).
    pub fn mask(&self, node: &DeweyId) -> u64 {
        self.masks.get(node).copied().unwrap_or(0)
    }
}

/// Returns the subtree mask of `node`, filling `masks` for it and all
/// descendants.
fn walk(
    node: &Node,
    dewey: DeweyId,
    analyzer: &Analyzer,
    keywords: &[Keyword],
    options: &IndexOptions,
    masks: &mut FastMap<DeweyId, u64>,
) -> u64 {
    let mut mask = 0u64;

    // Element-name keyword.
    if options.index_element_names {
        if let Some(term) = analyzer.normalize_term(node.name()) {
            mask |= match_units(keywords, &[term]);
        }
    }

    // Direct text of this element, as one co-occurrence unit.
    let own_text: String = node
        .children()
        .iter()
        .filter(|c| !c.is_element())
        .map(|c| c.text())
        .collect::<Vec<_>>()
        .join(" ");
    let own_terms = analyzer.analyze(&own_text);
    if !own_terms.is_empty() {
        mask |= match_units(keywords, &own_terms);
    }

    let mut ordinal = 0u32;
    // Synthetic XML-attribute children come first, as in the indexer.
    if options.xml_attributes_as_elements {
        for (name, value) in node.attributes() {
            let child_dewey = dewey.child(ordinal);
            ordinal += 1;
            let mut child_mask = 0u64;
            if options.index_element_names {
                if let Some(term) = analyzer.normalize_term(name) {
                    child_mask |= match_units(keywords, &[term]);
                }
            }
            let terms = analyzer.analyze(value);
            if !terms.is_empty() {
                child_mask |= match_units(keywords, &terms);
            }
            masks.insert(child_dewey, child_mask);
            mask |= child_mask;
        }
    }
    for child in node.children() {
        if child.is_element() {
            let child_dewey = dewey.child(ordinal);
            ordinal += 1;
            mask |= walk(child, child_dewey, analyzer, keywords, options, masks);
        }
    }

    masks.insert(dewey, mask);
    mask
}

/// Bit mask of keywords whose terms all appear in `unit_terms`.
fn match_units(keywords: &[Keyword], unit_terms: &[String]) -> u64 {
    let set: FastSet<&str> = unit_terms.iter().map(String::as_str).collect();
    let mut mask = 0u64;
    for (i, kw) in keywords.iter().enumerate() {
        if !kw.terms().is_empty() && kw.terms().iter().all(|t| set.contains(t.as_str())) {
            mask |= 1 << i;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use gks_core::search::{search, SearchOptions};
    use gks_index::GksIndex;

    const XML: &str = r#"<dblp>
        <article><title>Keyword Search</title>
            <author>Peter Buneman</author><author>Wenfei Fan</author></article>
        <article><title>Other Work</title><author>Peter Chen</author></article>
    </dblp>"#;

    fn setup(q: &str) -> (Corpus, GksIndex, Query, GroundTruth) {
        let corpus = Corpus::from_named_strs([("d", XML)]).unwrap();
        let options = IndexOptions::default();
        let ix = GksIndex::build(&corpus, options.clone()).unwrap();
        let query = Query::parse(q).unwrap();
        let gt = GroundTruth::compute(&corpus, &query, &options);
        (corpus, ix, query, gt)
    }

    #[test]
    fn masks_match_engine_hits() {
        let (_c, ix, q, gt) = setup(r#""Peter Buneman" "Wenfei Fan" search"#);
        let r = search(&ix, &q, SearchOptions::with_s(1)).unwrap();
        assert!(!r.hits().is_empty());
        for hit in r.hits() {
            assert_eq!(hit.keyword_mask, gt.mask(&hit.node), "mask for {}", hit.node);
        }
    }

    #[test]
    fn phrase_requires_same_text_unit() {
        // "Peter Fan" never co-occurs in one text node even though both
        // terms exist in the document.
        let (_c, _ix, _q, gt) = setup(r#""Peter Fan""#);
        let root = DeweyId::root(DocId(0));
        assert_eq!(gt.mask(&root), 0);
    }

    #[test]
    fn qualifying_is_upward_closed() {
        let (_c, _ix, _q, gt) = setup("peter buneman fan");
        for node in gt.qualifying(2) {
            if let Some(parent) = node.parent() {
                assert!(
                    gt.mask(&parent).count_ones() >= gt.mask(&node).count_ones(),
                    "parent mask shrank at {node}"
                );
            }
        }
    }
}
