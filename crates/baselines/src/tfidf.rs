//! XSEarch-style TF-IDF scoring (Cohen et al., VLDB 2003) — the IR-flavoured
//! ranking baseline of the paper's §3 ("XSEarch computes the node rank based
//! on TF-IDF").
//!
//! Posting lists are node-deduplicated (a node contains a term or it does
//! not), so term frequency is binary and the score of a result node reduces
//! to the summed inverse document frequency of the query terms it matches:
//! `score(v) = Σ_{matched terms t} ln(1 + N / df(t))` with `N` the corpus
//! node count and `df(t)` the posting-list length. Rare terms dominate —
//! the exact opposite philosophy of GKS's structure-driven potential flow,
//! which is what the ablation experiment contrasts.

use gks_core::query::Keyword;
use gks_core::search::{Hit, Response};
use gks_index::GksIndex;

/// Inverse document frequency of one term within the index.
pub fn idf(index: &GksIndex, term: &str) -> f64 {
    let n = index.stats().total_nodes.max(1) as f64;
    let df = index.postings(term).len().max(1) as f64;
    (1.0 + n / df).ln()
}

/// TF-IDF score of one hit: summed idf of the matched keywords' terms.
pub fn score_hit(index: &GksIndex, hit: &Hit, keywords: &[Keyword]) -> f64 {
    keywords
        .iter()
        .enumerate()
        .filter(|(i, _)| hit.keyword_mask & (1 << *i) != 0)
        .flat_map(|(_, k)| k.terms())
        .map(|t| idf(index, t))
        .sum()
}

/// Scores every hit of a response (same order as `response.hits()`).
pub fn score_response(index: &GksIndex, response: &Response) -> Vec<f64> {
    response
        .hits()
        .iter()
        .map(|h| score_hit(index, h, response.keywords()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gks_core::query::Query;
    use gks_core::search::{search, SearchOptions};
    use gks_index::{Corpus, IndexOptions};

    fn index_of(xml: &str) -> GksIndex {
        let corpus = Corpus::from_named_strs([("t", xml)]).unwrap();
        GksIndex::build(&corpus, IndexOptions::default()).unwrap()
    }

    #[test]
    fn rare_terms_outweigh_common_ones() {
        let ix = index_of("<r><a>common rare</a><b>common</b><c>common</c><d>common</d></r>");
        assert!(idf(&ix, "rare") > idf(&ix, "common"));
        assert!(idf(&ix, "absent") >= idf(&ix, "rare"), "df floor of 1");
    }

    #[test]
    fn hits_matching_rarer_keywords_score_higher() {
        // Distinct leaf labels keep the tree entity-free, so the hits stay
        // at <x> (common+rare) and <y> (common only).
        let ix = index_of("<r><x><w1>common</w1><w2>rare</w2></x><y><w3>common</w3></y></r>");
        let q = Query::parse("common rare").unwrap();
        let r = search(&ix, &q, SearchOptions::with_s(1)).unwrap();
        let scores = score_response(&ix, &r);
        let both = r.hits().iter().position(|h| h.keyword_count == 2).expect("a two-keyword hit");
        let common_only = r
            .hits()
            .iter()
            .position(|h| h.matched_keywords(r.keywords()) == vec!["common"])
            .expect("a common-only hit");
        assert!(scores[both] > scores[common_only]);
        // The gap is idf(rare), which exceeds idf(common) — rare terms
        // dominate the scheme.
        let gap = scores[both] - scores[common_only];
        assert!(gap > scores[common_only], "gap {gap} vs {}", scores[common_only]);
    }

    #[test]
    fn unmatched_hits_score_zero() {
        let ix = index_of("<r><w>alpha</w></r>");
        let q = Query::parse("alpha").unwrap();
        let r = search(&ix, &q, SearchOptions::with_s(1)).unwrap();
        let mut hit = r.hits()[0].clone();
        hit.keyword_mask = 0;
        assert_eq!(score_hit(&ix, &hit, r.keywords()), 0.0);
    }
}
