//! Stack-based SLCA over the merged posting list — the third classical
//! algorithm family (single sequential pass, Dewey stack), cross-checked
//! against [`crate::slca`]'s CA-map and indexed-lookup implementations.
//!
//! The merged list is consumed in document order while a stack maintains the
//! current root-to-node chain of *interesting* nodes (entries and LCAs of
//! adjacent entries). Each frame accumulates the keyword mask of its
//! subtree; when a frame is popped with a full mask and no SLCA emitted
//! below it, it is the deepest full node of its region — an SLCA. The
//! `emitted` flag propagates upward to suppress ancestors.

use gks_core::merge::merge_posting_lists;
use gks_dewey::DeweyId;

struct Frame {
    dewey: DeweyId,
    mask: u64,
    emitted_below: bool,
}

/// Computes the SLCA set from per-keyword posting lists via the stack
/// algorithm. Same contract as [`crate::slca::slca_ca_map`].
pub fn slca_stack(lists: &[Vec<DeweyId>]) -> Vec<DeweyId> {
    let n = lists.len();
    if n == 0 || n > 64 || lists.iter().any(Vec::is_empty) {
        return Vec::new();
    }
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let sl = merge_posting_lists(lists.to_vec());

    let mut stack: Vec<Frame> = Vec::new();
    let mut out: Vec<DeweyId> = Vec::new();

    // Folds the top frame away, emitting if it is a deepest full node, and
    // carries its state toward `towards` (the next entry's Dewey id, or None
    // at the end of input).
    fn pop_and_fold(
        stack: &mut Vec<Frame>,
        towards: Option<&DeweyId>,
        full: u64,
        out: &mut Vec<DeweyId>,
    ) {
        let mut f = stack.pop().expect("pop on non-empty stack");
        if f.mask == full && !f.emitted_below {
            out.push(f.dewey.clone());
            f.emitted_below = true;
        }
        let lca = towards.and_then(|t| f.dewey.common_prefix(t));
        match (stack.last_mut(), lca) {
            (Some(top), Some(l)) if top.dewey == l => {
                top.mask |= f.mask;
                top.emitted_below |= f.emitted_below;
            }
            (Some(top), Some(l)) if top.dewey.is_ancestor_of(&l) => {
                // A fresh branching point strictly between top and f.
                stack.push(Frame { dewey: l, mask: f.mask, emitted_below: f.emitted_below });
            }
            (Some(top), Some(_)) => {
                // top is deeper than the branching point; it will be popped
                // next — let the state ride along.
                top.mask |= f.mask;
                top.emitted_below |= f.emitted_below;
            }
            (Some(top), None) => {
                // End of input (or cross-document): fold the chain upward.
                top.mask |= f.mask;
                top.emitted_below |= f.emitted_below;
            }
            (None, Some(l)) => {
                stack.push(Frame { dewey: l, mask: f.mask, emitted_below: f.emitted_below });
            }
            (None, None) => {}
        }
    }

    for (dewey, kw) in &sl {
        // Unwind frames that do not contain the new entry.
        while let Some(top) = stack.last() {
            if top.dewey.is_ancestor_or_self(dewey) {
                break;
            }
            // Cross-document entries share no ancestor: flush completely.
            let towards = if top.dewey.doc() == dewey.doc() {
                Some(dewey)
            } else {
                None
            };
            pop_and_fold(&mut stack, towards, full, &mut out);
        }
        match stack.last_mut() {
            Some(top) if top.dewey == *dewey => top.mask |= 1 << kw,
            _ => stack.push(Frame { dewey: dewey.clone(), mask: 1 << kw, emitted_below: false }),
        }
    }
    while !stack.is_empty() {
        pop_and_fold(&mut stack, None, full, &mut out);
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slca::slca_ca_map;
    use gks_dewey::DocId;

    fn d(steps: &[u32]) -> DeweyId {
        DeweyId::new(DocId(0), steps.to_vec())
    }

    fn both(lists: &[Vec<DeweyId>]) -> Vec<DeweyId> {
        let a = slca_ca_map(lists);
        let b = slca_stack(lists);
        assert_eq!(a, b, "stack SLCA must agree with the CA map");
        a
    }

    #[test]
    fn agrees_on_basic_cases() {
        assert_eq!(both(&[vec![d(&[0, 0]), d(&[1, 0])], vec![d(&[0, 1])]]), vec![d(&[0])]);
        assert_eq!(both(&[vec![d(&[0, 1]), d(&[0, 2, 0])], vec![d(&[0, 2, 1])]]), vec![d(&[0, 2])]);
        assert_eq!(
            both(&[vec![d(&[0, 0]), d(&[5, 0])], vec![d(&[0, 1]), d(&[5, 1])]]),
            vec![d(&[0]), d(&[5])]
        );
    }

    #[test]
    fn nested_full_regions_keep_only_the_deepest() {
        // Root, [0] and [0,0] all contain both keywords; only [0,0] and the
        // second region [1] are SLCAs.
        let lists = vec![
            vec![d(&[0, 0, 0]), d(&[0, 1]), d(&[1, 0])],
            vec![d(&[0, 0, 1]), d(&[0, 2]), d(&[1, 1])],
        ];
        assert_eq!(both(&lists), vec![d(&[0, 0]), d(&[1])]);
    }

    #[test]
    fn cross_document_regions() {
        let lists = vec![
            vec![DeweyId::new(DocId(0), vec![0]), DeweyId::new(DocId(1), vec![0])],
            vec![DeweyId::new(DocId(0), vec![1]), DeweyId::new(DocId(1), vec![1])],
        ];
        assert_eq!(both(&lists), vec![DeweyId::root(DocId(0)), DeweyId::root(DocId(1))]);
    }

    #[test]
    fn and_semantics_and_single_list() {
        assert!(both(&[vec![d(&[0])], vec![]]).is_empty());
        assert_eq!(both(&[vec![d(&[0]), d(&[0, 1]), d(&[2])]]), vec![d(&[0, 1]), d(&[2])]);
    }

    #[test]
    fn same_node_all_keywords() {
        assert_eq!(both(&[vec![d(&[0, 3])], vec![d(&[0, 3])]]), vec![d(&[0, 3])]);
    }
}
