//! LCA-family baselines for GKS.
//!
//! The paper positions GKS against the classical AND-semantics algorithms
//! (§3, Table 1, Table 7) and against the naive way of achieving GKS
//! semantics with them (Lemma 3). This crate implements:
//!
//! * [`slca`] — Smallest LCA (Xu & Papakonstantinou 2005): the deepest nodes
//!   containing *all* query keywords; two algorithms — a CA-map scan and the
//!   Indexed Lookup Eager method — cross-checked against each other;
//! * [`elca`] — Exclusive LCA (XRank): nodes containing all keywords after
//!   excluding occurrences inside descendants that themselves contain all
//!   keywords;
//! * [`naive`] — the Lemma 3 strawman: GKS semantics via one SLCA query per
//!   keyword subset of size ≥ s (exponentially many sub-queries);
//! * [`oracle`] — a DOM-based ground-truth: exact matched-keyword sets for
//!   every node of a document, used by integration and property tests;
//! * [`xrank`] / [`tfidf`] — the §3 ranking baselines (XRank's ElemRank with
//!   proximity decay; XSEarch's TF-IDF), used by the ranking ablation.

// Not an engine library crate: unwrap/expect on deterministic, known-good
// data is acceptable here. The hard panic-free rule is scoped to the
// engine crates and enforced by `cargo xtask lint` (see docs/ANALYSIS.md).
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod elca;
pub mod naive;
pub mod oracle;
pub mod slca;
pub mod slca_stack;
pub mod tfidf;
pub mod xrank;

use gks_core::postlist::keyword_postings;
use gks_core::query::Query;
use gks_dewey::DeweyId;
use gks_index::GksIndex;

/// Resolves a query to per-keyword posting lists using the same
/// normalization as GKS search, so baselines and GKS see identical inputs.
pub fn query_posting_lists(index: &GksIndex, query: &Query) -> Vec<Vec<DeweyId>> {
    query
        .normalized(index.analyzer())
        .iter()
        .map(|k| keyword_postings(index, k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gks_index::{Corpus, IndexOptions};

    #[test]
    fn posting_lists_match_core_normalization() {
        let xml = "<r><a>Databases</a><b>databases</b></r>";
        let corpus = Corpus::from_named_strs([("t", xml)]).unwrap();
        let ix = GksIndex::build(&corpus, IndexOptions::default()).unwrap();
        let q = Query::parse("Databases").unwrap();
        let lists = query_posting_lists(&ix, &q);
        assert_eq!(lists.len(), 1);
        assert_eq!(lists[0].len(), 2, "case and stemming normalized");
    }
}
