//! Smallest LCA (SLCA) computation.
//!
//! "An SLCA node contains all the query keywords in its sub-tree and there is
//! no node in its sub-tree which contains all the keywords" (paper §1).
//! AND-semantics: an empty posting list for any keyword makes the result
//! NULL — exactly the failure mode GKS is designed to escape.
//!
//! Two independent algorithms are provided and cross-checked in tests:
//!
//! * [`slca_ca_map`] — aggregate every posting's keyword bit into all of its
//!   ancestors (O(Σ|Si|·d) hash updates), take the nodes with a full mask
//!   (the *common ancestors*, CA), and keep those with no CA descendant.
//! * [`slca_indexed_lookup`] — the Indexed Lookup Eager idea of Xu &
//!   Papakonstantinou: for each occurrence in the shortest list, the deepest
//!   common ancestor with each other list is reached through the closest
//!   (predecessor/successor) occurrence; the SLCA candidate is the
//!   shallowest of those per-list LCAs; finally remove ancestors.

use gks_dewey::DeweyId;
use gks_index::fasthash::FastMap;

/// SLCA via the CA-map method. `lists` are document-ordered posting lists,
/// one per keyword. Returns SLCA nodes in document order.
pub fn slca_ca_map(lists: &[Vec<DeweyId>]) -> Vec<DeweyId> {
    let Some(full) = full_mask(lists.len()) else {
        return Vec::new();
    };
    if lists.iter().any(Vec::is_empty) {
        return Vec::new(); // AND-semantics
    }
    let mut masks: FastMap<DeweyId, u64> = FastMap::default();
    for (kw, list) in lists.iter().enumerate() {
        let bit = 1u64 << kw;
        for id in list {
            let mut node = id.clone();
            loop {
                let m = masks.entry(node.clone()).or_insert(0);
                if *m & bit != 0 {
                    break; // this ancestor chain already has the bit
                }
                *m |= bit;
                match node.parent() {
                    Some(p) => node = p,
                    None => break,
                }
            }
        }
    }
    let mut cas: Vec<DeweyId> =
        masks.into_iter().filter(|(_, m)| *m == full).map(|(d, _)| d).collect();
    cas.sort_unstable();
    remove_ancestors(cas)
}

/// SLCA via Indexed Lookup Eager. Same contract as [`slca_ca_map`].
pub fn slca_indexed_lookup(lists: &[Vec<DeweyId>]) -> Vec<DeweyId> {
    if lists.is_empty() || lists.iter().any(Vec::is_empty) {
        return Vec::new();
    }
    if lists.len() == 1 {
        // Every occurrence is its own SLCA candidate; keep the deepest ones.
        return remove_ancestors({
            let mut v = lists[0].clone();
            v.sort_unstable();
            v.dedup();
            v
        });
    }
    let shortest = lists
        .iter()
        .enumerate()
        .min_by_key(|(_, l)| l.len())
        .map(|(i, _)| i)
        .expect("non-empty lists");

    let mut candidates: Vec<DeweyId> = Vec::new();
    'outer: for u in &lists[shortest] {
        // The deepest ancestor of u containing an element of every list is
        // the shallowest of the per-list deepest common ancestors.
        let mut best: Option<DeweyId> = None; // shallowest so far
        for (i, list) in lists.iter().enumerate() {
            if i == shortest {
                continue;
            }
            let Some(a) = deepest_lca_with_list(u, list) else {
                continue 'outer;
            };
            best = Some(match best {
                None => a,
                Some(b) if a.depth() < b.depth() => a,
                Some(b) => b,
            });
        }
        if let Some(c) = best {
            candidates.push(c);
        }
    }
    candidates.sort_unstable();
    candidates.dedup();
    remove_ancestors(candidates)
}

/// The deepest ancestor of `u` whose subtree contains an element of `list`:
/// reached through u's closest neighbours in the sorted list.
fn deepest_lca_with_list(u: &DeweyId, list: &[DeweyId]) -> Option<DeweyId> {
    let pos = list.partition_point(|x| x < u);
    let mut best: Option<DeweyId> = None;
    for neighbour in [pos.checked_sub(1).map(|p| &list[p]), list.get(pos)].into_iter().flatten() {
        if let Some(lca) = u.common_prefix(neighbour) {
            best = Some(match best {
                None => lca,
                Some(b) if lca.depth() > b.depth() => lca,
                Some(b) => b,
            });
        }
    }
    best
}

/// Keeps only nodes with no descendant in the set. `nodes` must be sorted.
pub(crate) fn remove_ancestors(nodes: Vec<DeweyId>) -> Vec<DeweyId> {
    let mut out: Vec<DeweyId> = Vec::with_capacity(nodes.len());
    for node in nodes {
        // In sorted order a descendant follows its ancestor immediately
        // (possibly after other descendants); compare with the previous kept
        // node is not enough — compare with the NEXT element instead, so
        // walk backwards: drop previous kept nodes that contain this one.
        while let Some(last) = out.last() {
            if last.is_ancestor_of(&node) {
                out.pop();
            } else {
                break;
            }
        }
        out.push(node);
    }
    out
}

fn full_mask(n: usize) -> Option<u64> {
    match n {
        0 => None,
        64 => Some(u64::MAX),
        n if n > 64 => None,
        n => Some((1u64 << n) - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gks_dewey::DocId;

    fn d(steps: &[u32]) -> DeweyId {
        DeweyId::new(DocId(0), steps.to_vec())
    }

    fn both(lists: &[Vec<DeweyId>]) -> Vec<DeweyId> {
        let a = slca_ca_map(lists);
        let b = slca_indexed_lookup(lists);
        assert_eq!(a, b, "the two SLCA algorithms must agree");
        a
    }

    #[test]
    fn basic_slca() {
        // Keywords under a common parent [0]; root also contains both.
        let lists = vec![vec![d(&[0, 0]), d(&[1, 0])], vec![d(&[0, 1])]];
        assert_eq!(both(&lists), vec![d(&[0])]);
    }

    #[test]
    fn nested_slca_keeps_deepest() {
        // [0] and [0,2] both contain {k0, k1}; SLCA is the deeper [0,2].
        let lists = vec![vec![d(&[0, 1]), d(&[0, 2, 0])], vec![d(&[0, 2, 1])]];
        assert_eq!(both(&lists), vec![d(&[0, 2])]);
    }

    #[test]
    fn multiple_independent_slcas() {
        let lists = vec![vec![d(&[0, 0]), d(&[5, 0])], vec![d(&[0, 1]), d(&[5, 1])]];
        assert_eq!(both(&lists), vec![d(&[0]), d(&[5])]);
    }

    #[test]
    fn and_semantics_null_on_missing_keyword() {
        let lists = vec![vec![d(&[0])], vec![]];
        assert!(both(&lists).is_empty());
        assert!(both(&[]).is_empty());
    }

    #[test]
    fn cross_document_occurrences() {
        let lists = vec![
            vec![DeweyId::new(DocId(0), vec![0]), DeweyId::new(DocId(1), vec![0])],
            vec![DeweyId::new(DocId(1), vec![1])],
        ];
        // Only document 1 contains both keywords.
        assert_eq!(both(&lists), vec![DeweyId::root(DocId(1))]);
    }

    #[test]
    fn same_node_for_all_keywords() {
        let lists = vec![vec![d(&[0, 3])], vec![d(&[0, 3])]];
        assert_eq!(both(&lists), vec![d(&[0, 3])]);
    }

    #[test]
    fn single_keyword_slca_is_each_deepest_occurrence() {
        let lists = vec![vec![d(&[0]), d(&[0, 1]), d(&[2])]];
        // [0] is an ancestor of [0,1] — removed.
        assert_eq!(both(&lists), vec![d(&[0, 1]), d(&[2])]);
    }

    #[test]
    fn remove_ancestors_chain() {
        let v = vec![d(&[]), d(&[0]), d(&[0, 0]), d(&[1])];
        assert_eq!(remove_ancestors(v), vec![d(&[0, 0]), d(&[1])]);
    }
}
