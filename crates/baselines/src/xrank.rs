//! XRank-style ranking (Guo et al., SIGMOD 2003) — the LCA-world ranking
//! baseline the paper positions itself against in §3 ("XRank takes into
//! account the keyword proximity in the XML nodes").
//!
//! Two components, simplified to document trees without hyperlinks:
//!
//! * **ElemRank** — a PageRank-flavoured importance score propagated along
//!   containment edges in both directions:
//!   `e(v) = (1−d_f−d_b)/N + d_f·e(parent)/children(parent) + d_b·Σ_c e(c)`,
//!   computed by power iteration over the node table.
//! * **Decayed result ranking** — a result node scores, per query keyword,
//!   the best `ElemRank(occurrence) · decay^(depth(occurrence)−depth(v))`
//!   over its occurrences, summed over keywords.
//!
//! GKS rejects this family because it "works by using aggregated statistical
//! information for the entire XML repository" over a *fixed* keyword set
//! (§5); the ablation experiment quantifies the difference.

use gks_dewey::DeweyId;
use gks_index::fasthash::FastMap;
use gks_index::GksIndex;

/// ElemRank scores for every element node of an index.
#[derive(Debug)]
pub struct ElemRank {
    scores: FastMap<DeweyId, f64>,
}

/// Parameters of the ElemRank iteration.
#[derive(Debug, Clone, Copy)]
pub struct ElemRankParams {
    /// Forward (parent → child) damping, the paper's `d1`.
    pub forward: f64,
    /// Backward (child → parent) damping.
    pub backward: f64,
    /// Power-iteration rounds (the tree diameter bounds useful work).
    pub iterations: usize,
}

impl Default for ElemRankParams {
    fn default() -> Self {
        ElemRankParams { forward: 0.35, backward: 0.25, iterations: 30 }
    }
}

impl ElemRank {
    /// Computes ElemRank over all nodes of the index.
    pub fn compute(index: &GksIndex, params: ElemRankParams) -> ElemRank {
        let table = index.node_table();
        let n = table.len().max(1);
        let base = (1.0 - params.forward - params.backward) / n as f64;

        // Node list + parent pointers (as indices) for fast iteration.
        let nodes: Vec<&DeweyId> = table.iter().map(|(d, _)| d).collect();
        let pos: FastMap<&DeweyId, usize> =
            nodes.iter().enumerate().map(|(i, d)| (*d, i)).collect();
        let parent: Vec<Option<usize>> =
            nodes.iter().map(|d| d.parent().and_then(|p| pos.get(&&p).copied())).collect();
        let child_count: Vec<f64> = nodes
            .iter()
            .map(|d| f64::from(table.child_count(d).unwrap_or(1).max(1)))
            .collect();

        let mut score = vec![1.0 / n as f64; nodes.len()];
        let mut next = vec![0.0f64; nodes.len()];
        for _ in 0..params.iterations {
            next.fill(base);
            for i in 0..nodes.len() {
                if let Some(p) = parent[i] {
                    // Forward: parent's score splits over its children.
                    next[i] += params.forward * score[p] / child_count[p];
                    // Backward: child's score flows to the parent.
                    next[p] += params.backward * score[i];
                }
            }
            std::mem::swap(&mut score, &mut next);
        }
        let scores =
            nodes.into_iter().cloned().zip(score.iter().copied()).collect::<FastMap<_, _>>();
        ElemRank { scores }
    }

    /// The score of one node (0 for unknown nodes).
    pub fn score(&self, node: &DeweyId) -> f64 {
        self.scores.get(node).copied().unwrap_or(0.0)
    }

    /// Number of scored nodes.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True when nothing was scored.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }
}

/// Ranks result nodes XRank-style: per keyword, the best decayed ElemRank of
/// an occurrence inside the node; summed over keywords. `lists` are the
/// per-keyword posting lists; `decay` ∈ (0, 1].
pub fn rank_results(
    elem_rank: &ElemRank,
    results: &[DeweyId],
    lists: &[Vec<DeweyId>],
    decay: f64,
) -> Vec<f64> {
    results
        .iter()
        .map(|v| {
            let ub = v.subtree_upper_bound();
            lists
                .iter()
                .map(|list| {
                    // Occurrences inside v form a contiguous sorted range.
                    let lo = list.partition_point(|x| x < v);
                    list[lo..]
                        .iter()
                        .take_while(|x| **x < ub)
                        .map(|occ| {
                            let dist = (occ.depth() - v.depth()) as i32;
                            elem_rank.score(occ) * decay.powi(dist)
                        })
                        .fold(0.0f64, f64::max)
                })
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_posting_lists;
    use gks_core::query::Query;
    use gks_dewey::DocId;
    use gks_index::{Corpus, IndexOptions};

    fn index_of(xml: &str) -> GksIndex {
        let corpus = Corpus::from_named_strs([("t", xml)]).unwrap();
        GksIndex::build(&corpus, IndexOptions::default()).unwrap()
    }

    fn d(steps: &[u32]) -> DeweyId {
        DeweyId::new(DocId(0), steps.to_vec())
    }

    #[test]
    fn elemrank_mass_is_conserved_approximately() {
        let ix = index_of("<r><a><w>x</w><w>y</w></a><b><w>z</w></b></r>");
        let er = ElemRank::compute(&ix, ElemRankParams::default());
        assert_eq!(er.len(), ix.node_table().len());
        let total: f64 = ix.node_table().iter().map(|(dw, _)| er.score(dw)).sum();
        // The walk leaks a little mass at the root/leaf boundaries; it must
        // stay in the same ballpark as a distribution.
        assert!(total > 0.3 && total < 1.5, "total mass {total}");
        for (dw, _) in ix.node_table().iter() {
            assert!(er.score(dw) > 0.0, "{dw} has no score");
        }
    }

    #[test]
    fn hub_nodes_score_higher_than_leaves() {
        // A root with many children accumulates backward flow.
        let ix = index_of("<r><w>a1</w><w>a2</w><w>a3</w><w>a4</w><w>a5</w></r>");
        let er = ElemRank::compute(&ix, ElemRankParams::default());
        let root = er.score(&d(&[]));
        let leaf = er.score(&d(&[0]));
        assert!(root > leaf, "root {root} vs leaf {leaf}");
    }

    #[test]
    fn decay_prefers_shallow_occurrences() {
        // Same keyword once shallow, once deep; the shallow result node must
        // outrank the deep-occurrence one.
        let ix = index_of(
            "<r><shallow><w>needle</w></shallow>\
             <deep><l1><l2><l3><w>needle</w></l3></l2></l1></deep></r>",
        );
        let er = ElemRank::compute(&ix, ElemRankParams::default());
        let q = Query::parse("needle").unwrap();
        let lists = query_posting_lists(&ix, &q);
        let results = vec![d(&[0]), d(&[1])]; // <shallow>, <deep>
        let scores = rank_results(&er, &results, &lists, 0.5);
        assert!(scores[0] > scores[1], "shallow {} should beat deep {}", scores[0], scores[1]);
    }

    #[test]
    fn results_without_occurrences_score_zero() {
        let ix = index_of("<r><a><w>needle</w></a><b><w>other</w></b></r>");
        let er = ElemRank::compute(&ix, ElemRankParams::default());
        let q = Query::parse("needle").unwrap();
        let lists = query_posting_lists(&ix, &q);
        let scores = rank_results(&er, &[d(&[1])], &lists, 0.8);
        assert_eq!(scores, vec![0.0]);
    }
}
